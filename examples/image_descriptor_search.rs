//! Image-descriptor search: in-memory comparison of the data-series indexes
//! against the high-dimensional methods (HNSW, IMI, FLANN, SRS, QALSH) on
//! SIFT-like vectors.
//!
//! This mirrors the paper's Sift25GB in-memory experiment (Figure 3 m–r):
//! HNSW dominates pure query throughput at high accuracy, but the
//! data-series indexes reach MAP = 1 and win once index-building time must
//! be amortized over a small workload.
//!
//! ```text
//! cargo run --release --example image_descriptor_search
//! ```

use std::time::Instant;

use hydra::prelude::*;

fn main() {
    let data = hydra::data::sift_like(6_000, 128, 3);
    let workload = hydra::data::noisy_queries(&data, 15, &[0.05, 0.15], 4);
    let truth = hydra::data::ground_truth(&data, &workload, 100);

    println!("sift-like dataset: {} vectors of dimension {}", data.len(), data.series_len());
    println!(
        "{:<10} {:>8} {:>8} {:>14} {:>16}",
        "method", "MAP", "recall", "queries/min", "query time (s)"
    );

    let methods = hydra::build_all_methods(&data, true, 9);

    for method in &methods {
        let params = if method.capabilities().delta_epsilon_approximate {
            SearchParams::delta_epsilon(100, 0.99, 1.0)
        } else {
            SearchParams::ng(100, 50)
        };
        let start = Instant::now();
        let report = hydra::eval::run_workload(method.as_ref(), &workload, &truth, &params);
        let query_time = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>14.0} {:>16.2}",
            method.name(),
            report.accuracy.map,
            report.accuracy.avg_recall,
            report.queries_per_minute,
            query_time,
        );
    }

    println!(
        "\nExpected shape (paper, Figure 3): HNSW and FLANN lead the pure-query\n\
         throughput race; DSTree / iSAX2+ / VA+file are the only methods that\n\
         reach MAP = 1; IMI's accuracy is capped by its compressed codes."
    );
}
