//! Seismic-monitoring scenario: disk-resident index over seismograph-like
//! series, comparing DSTree and iSAX2+ under an accuracy target.
//!
//! The paper's Seismic100GB dataset contains 100 million earthquake
//! recordings; analysts search it for recordings similar to a new event.
//! This example reproduces the workflow at laptop scale with the
//! seismic-like generator and the simulated disk layer, reporting the
//! random-I/O and data-accessed measures the paper uses for its on-disk
//! comparison (Figure 6).
//!
//! ```text
//! cargo run --release --example seismic_monitoring
//! ```

use hydra::prelude::*;

fn main() {
    // Seismograph-like series: correlated background noise plus transient
    // bursts. The on-disk storage configuration gives the buffer pool far
    // less capacity than the dataset, as in the paper's 75 GB RAM / 250 GB
    // data setup.
    let data = hydra::data::seismic_like(8_000, 256, 7);
    let workload = hydra::data::noisy_queries(&data, 15, &[0.1, 0.25, 0.5], 11);
    let truth = hydra::data::ground_truth(&data, &workload, 10);

    let dstree = DsTree::build(
        &data,
        DsTreeConfig {
            storage: StorageConfig::on_disk(),
            ..DsTreeConfig::default()
        },
    )
    .expect("build DSTree");
    let isax = Isax2Plus::build(
        &data,
        IsaxConfig {
            storage: StorageConfig::on_disk(),
            ..IsaxConfig::default()
        },
    )
    .expect("build iSAX2+");

    println!("seismic-like dataset: {} series of length {}", data.len(), data.series_len());
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>14} {:>12} {:>12}",
        "method", "eps", "MAP", "MRE", "queries/min", "rand I/O/q", "%data"
    );
    for epsilon in [0.0f32, 0.5, 1.0, 2.0, 5.0] {
        for (name, index, bytes) in [
            ("DSTree", &dstree as &dyn AnnIndex, dstree.store().total_bytes()),
            ("iSAX2+", &isax as &dyn AnnIndex, isax.store().total_bytes()),
        ] {
            let params = SearchParams::epsilon(10, epsilon);
            let report = hydra::eval::run_workload(index, &workload, &truth, &params);
            println!(
                "{:<10} {:>6.1} {:>8.3} {:>8.4} {:>14.0} {:>12.1} {:>11.1}%",
                name,
                epsilon,
                report.accuracy.map,
                report.accuracy.mre,
                report.queries_per_minute,
                report.random_ios_per_query(),
                report.fraction_data_accessed(bytes) * 100.0,
            );
        }
    }
    println!(
        "\nExpected shape (paper, Figure 6): iSAX2+ incurs more random I/Os than\n\
         DSTree at equal accuracy because its leaves are smaller and less filled,\n\
         while both methods reach MAP ~1 once epsilon approaches 0."
    );
}
