//! Full method comparison: reproduces the spirit of the paper's Table 1 and
//! Figure 9 — what each method can do, how big its index is, and which
//! method the decision matrix recommends for each scenario.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use hydra_eval::{recommend, Scenario};

fn main() {
    let data = hydra::data::deep_like(3_000, 96, 21);
    let methods = hydra::build_all_methods(&data, true, 13);

    // Table 1: matching / accuracy / representation / disk support.
    println!(
        "{:<10} {:>6} {:>5} {:>5} {:>7} {:>12} {:>6} {:>12}",
        "method", "exact", "ng", "eps", "d-eps", "repr", "disk", "index KiB"
    );
    for m in &methods {
        let caps = m.capabilities();
        println!(
            "{:<10} {:>6} {:>5} {:>5} {:>7} {:>12} {:>6} {:>12}",
            m.name(),
            tick(caps.exact),
            tick(caps.ng_approximate),
            tick(caps.epsilon_approximate),
            tick(caps.delta_epsilon_approximate),
            caps.representation.name(),
            tick(caps.disk_resident),
            m.memory_footprint() / 1024,
        );
    }

    // Figure 9: the decision matrix.
    println!("\nRecommendations (Figure 9):");
    for in_memory in [true, false] {
        for needs_guarantees in [false, true] {
            for small_workload in [true, false] {
                let rec = recommend(Scenario {
                    in_memory,
                    needs_guarantees,
                    small_workload,
                });
                println!(
                    "  {:<9} | {:<13} | {:<14} -> {:<7} ({})",
                    if in_memory { "in-memory" } else { "on-disk" },
                    if needs_guarantees { "guarantees" } else { "no guarantees" },
                    if small_workload { "small workload" } else { "large workload" },
                    rec.method,
                    rec.rationale
                );
            }
        }
    }
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}
