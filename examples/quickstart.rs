//! Quickstart: build an index, run approximate k-NN queries, inspect
//! accuracy and cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hydra::prelude::*;

fn main() {
    // 1. A synthetic random-walk dataset (the paper's "Rand"), 5 000 series
    //    of length 128, plus a 20-query workload derived by adding noise.
    let data = hydra::data::random_walk(5_000, 128, 42);
    let workload = hydra::data::noisy_queries(&data, 20, &[0.0, 0.1, 0.25], 43);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    println!("dataset: {} series of length {}", data.len(), data.series_len());

    // 2. Build the DSTree (the paper's overall best performer).
    let index = DsTree::build(&data, DsTreeConfig::default()).expect("build DSTree");
    println!(
        "DSTree built: {} leaves, {:.1}% average leaf fill, {} KiB in memory",
        index.num_leaves(),
        index.avg_leaf_fill() * 100.0,
        hydra::AnnIndex::memory_footprint(&index) / 1024
    );

    // 3. Answer the same workload under different guarantee levels.
    let settings = [
        ("exact", SearchParams::exact(10)),
        ("ng (1 leaf)", SearchParams::ng(10, 1)),
        ("epsilon = 1", SearchParams::epsilon(10, 1.0)),
        ("delta-epsilon (0.99, 1)", SearchParams::delta_epsilon(10, 0.99, 1.0)),
    ];
    println!(
        "\n{:<26} {:>8} {:>8} {:>10} {:>14} {:>12}",
        "mode", "MAP", "recall", "MRE", "queries/min", "%data"
    );
    for (label, params) in settings {
        let report = hydra::eval::run_workload(&index, &workload, &truth, &params);
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>10.4} {:>14.0} {:>11.1}%",
            label,
            report.accuracy.map,
            report.accuracy.avg_recall,
            report.accuracy.mre,
            report.queries_per_minute,
            report.fraction_data_accessed(index.store().total_bytes()) * 100.0,
        );
    }

    println!(
        "\nAs in the paper: approximate modes trade a little accuracy for large\n\
         gains in throughput and data accessed, and epsilon values up to ~2 still\n\
         return answers that are exact or nearly exact."
    );
}
