//! Minimal, dependency-free stand-in for the parts of the `criterion` crate
//! this workspace uses: `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny API surface it needs behind the same paths as the real crate.
//! There is no statistical analysis: each benchmark is warmed up briefly,
//! timed over an adaptive number of iterations, and reported as a single
//! mean ns/iter line on stdout. That keeps `cargo bench` useful for coarse
//! regression spotting without any external dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Kept small: this harness is for
/// coarse comparisons, not publication-grade statistics.
const MEASURE_TARGET: Duration = Duration::from_millis(50);
const WARMUP_ITERS: u64 = 3;
const MAX_ITERS: u64 = 100_000;

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the stub runs one setup per measured iteration regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup for each iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine` over an adaptive number of iterations. Iterations
    /// run in inner batches so the per-check clock read is amortized and
    /// nanosecond-scale routines are not drowned in harness overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const BATCH: u64 = 64;
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET && iters < MAX_ITERS {
            for _ in 0..BATCH {
                std::hint::black_box(routine());
            }
            iters += BATCH;
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Measures `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut busy = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET && iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
        }
        self.last_ns_per_iter = busy.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| routine(b));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| routine(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    list_only: bool,
}

impl Criterion {
    /// Builds a `Criterion` configured from the command line cargo passes to
    /// bench binaries (`--test` means compile-check only: run nothing).
    pub fn from_args() -> Self {
        Criterion {
            list_only: std::env::args().any(|a| a == "--test" || a == "--list"),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let label = id.to_string();
        self.run_one(&label, |b| routine(b));
        self
    }

    fn run_one(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        if self.list_only {
            println!("{label}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            last_ns_per_iter: f64::NAN,
        };
        routine(&mut bencher);
        println!("{label}: {:.1} ns/iter", bencher.last_ns_per_iter);
    }
}

/// Declares a benchmark group function; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
