//! Minimal, dependency-free stand-in for the parts of the `proptest` crate
//! this workspace uses: the `proptest!` macro, range and `collection::vec`
//! strategies, `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny API surface it needs behind the same paths as the real crate.
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a fixed deterministic seed (derived from the test name) so
//! failures reproduce exactly, and there is no shrinking — a failing case
//! panics with the ordinary `assert!` message.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;
        fn sample(&self, rng: &mut StdRng) -> i64 {
            rng.gen_range(self.clone())
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification accepted by [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` built from an element strategy and a length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed derived from the property's name (FNV-1a),
/// used by the [`proptest!`] expansion.
pub fn seed_for(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a property holds for the current case; mirrors
/// `proptest::prop_assert!` but panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes an ordinary
/// `#[test]` that samples all arguments `cases` times from a deterministic
/// RNG and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = ($cfg).cases;
            let mut __rng = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f32>> {
        collection::vec(-1.0f32..1.0, 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 0.0f32..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_hold(v in collection::vec(0.0f32..1.0, 3..7), w in pair()) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 2);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        use crate::strategy::Strategy;
        let s = collection::vec(0.0f32..1.0, 5);
        let a = s.sample(&mut crate::seed_for("t"));
        let b = s.sample(&mut crate::seed_for("t"));
        assert_eq!(a, b);
    }
}
