//! Minimal, dependency-free stand-in for the parts of `parking_lot` this
//! workspace uses: a `Mutex` whose `lock()` returns the guard directly
//! (no poisoning `Result`).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny API surface it needs behind the same paths as the real crate.
//! Internally this wraps `std::sync::Mutex` and recovers from poisoning,
//! which matches `parking_lot`'s no-poisoning semantics closely enough for
//! this codebase.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning) API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value without locking
    /// (possible because `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
