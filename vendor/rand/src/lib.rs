//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: seedable RNGs and uniform range sampling.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny API surface it needs (`StdRng`, `SeedableRng`, `Rng::gen_range`)
//! behind the same paths as the real crate. The generator is a SplitMix64 /
//! xoshiro256++ pair — statistically solid for test-data generation, never
//! intended for cryptography.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that can be sampled uniformly to produce a `T` by
/// [`Rng::gen_range`]. Generic over `T` (rather than using an associated
/// type) so that `let x: f32 = rng.gen_range(0.0..1.0)` infers the literal
/// range as `Range<f32>`, matching real `rand` inference behavior.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    // 24 high bits -> [0, 1).
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range range");
        let v = self.start + unit_f32(rng.next_u64()) * (self.end - self.start);
        // `start + u * (end - start)` can round up to exactly `end`; keep
        // the documented half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++ seeded via
    /// SplitMix64, the conventional seeding scheme for that family).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..8);
            assert!((5..8).contains(&u));
            let i = rng.gen_range(1..=3);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn float_ranges_never_return_the_end_bound() {
        // `start + u * (end - start)` at the max mantissa sample can round
        // up to exactly `end` without the clamp; this range reproduces it.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000_000 {
            let f = rng.gen_range(1.0f32..5.0);
            assert!(f < 5.0);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f32..1.0);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
