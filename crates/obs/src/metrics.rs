//! The metrics registry: named atomic counters, gauges, and log-scale
//! histograms, rendered as Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones of the registered metric, so call sites fetch them once and
//! update lock-free forever after; the registry's mutex is only taken
//! at registration and at render (scrape) time.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bounds (inclusive, `le`) of the fixed histogram buckets:
/// powers of two from 1 to 2^27. One implicit `+Inf` overflow bucket
/// follows. With microsecond observations this spans 1 µs to ~134 s,
/// wide enough for both in-memory nodes-visited counts and out-of-core
/// query latencies without any per-histogram configuration.
pub const HISTOGRAM_BUCKETS: [u64; 28] = {
    let mut b = [0u64; 28];
    let mut i = 0;
    while i < 28 {
        b[i] = 1u64 << i;
        i += 1;
    }
    b
};

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, epochs, pool
/// occupancy). Signed so "delta since last scrape went negative" is
/// representable.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale histogram of non-negative integer
/// observations (the workspace convention is **microseconds** for
/// durations).
///
/// Buckets are the powers of two in [`HISTOGRAM_BUCKETS`] plus an
/// implicit `+Inf` overflow bucket, so `observe` is branch-light and
/// allocation-free. The rendered `_count` is derived from the bucket
/// array at scrape time, which keeps `le="+Inf"` and `_count` exactly
/// equal even while other threads record concurrently.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    // HISTOGRAM_BUCKETS.len() bounded buckets + 1 overflow.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS.len() + 1],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            // Smallest i with v <= 2^i is bit_length(v - 1); beyond the
            // last bound it lands in the overflow slot.
            let i = (64 - (v - 1).leading_zeros()) as usize;
            i.min(HISTOGRAM_BUCKETS.len())
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds (the workspace unit
    /// convention for latency histograms).
    pub fn observe_micros(&self, d: Duration) {
        self.observe(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of observations (sum over all buckets).
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts: one slot per
    /// [`HISTOGRAM_BUCKETS`] bound, then the `+Inf` overflow slot.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS.len() + 1] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Registration + scrape state. Keyed by `(name, rendered labels)` so
/// rendering can group a metric family's label variants together and
/// emit its `# TYPE` header exactly once. (A raw concatenated-string
/// key would sort `foobar` *between* `foo` and `foo{...}` because
/// `'{' > 'z'` is false — `'{'` is 0x7B, above every lowercase letter —
/// splitting families apart.)
#[derive(Default)]
struct RegistryInner {
    metrics: BTreeMap<(String, String), Metric>,
    // Prometheus requires one kind per family (name), not per key.
    kinds: HashMap<String, &'static str>,
}

/// A registry of named metrics, rendered on demand in the Prometheus
/// text exposition format.
///
/// Getter methods are idempotent: asking twice for the same
/// `name{labels}` returns handles onto the same underlying atomics, so
/// instrumentation code can re-resolve handles freely (e.g. per-worker
/// labels discovered at runtime).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name` was previously registered as a different metric kind —
    /// an instrumentation bug, reported loudly.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => unreachable!("registry returned {} for counter", other.kind()),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name` was previously registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => unreachable!("registry returned {} for gauge", other.kind()),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    /// If `name` was previously registered as a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => unreachable!("registry returned {} for histogram", other.kind()),
        }
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], make: impl FnOnce() -> Metric) -> Metric {
        let key = (name.to_string(), render_labels(labels));
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let metric = inner.metrics.entry(key).or_insert_with(make).clone();
        let kind = metric.kind();
        let prev = inner.kinds.entry(name.to_string()).or_insert(kind);
        assert!(
            *prev == kind,
            "metric {name:?} registered as both {prev} and {kind}: \
             one family must have one kind (instrumentation bug)"
        );
        metric
    }

    /// Renders every registered metric in the Prometheus text
    /// exposition format: one `# TYPE` line per family, then one sample
    /// line per key (histograms expand to cumulative `_bucket` lines
    /// plus `_sum` and `_count`).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for ((name, labels), metric) in &inner.metrics {
            if last_family != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
                last_family = Some(name.as_str());
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", braced(labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", braced(labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, bound) in HISTOGRAM_BUCKETS.iter().enumerate() {
                        cum += counts[i];
                        let le = bound.to_string();
                        let _ =
                            writeln!(out, "{name}_bucket{} {cum}", braced(labels, Some(&le)));
                    }
                    cum += counts[HISTOGRAM_BUCKETS.len()];
                    let _ = writeln!(out, "{name}_bucket{} {cum}", braced(labels, Some("+Inf")));
                    let _ = writeln!(out, "{name}_sum{} {}", braced(labels, None), h.sum());
                    let _ = writeln!(out, "{name}_count{} {cum}", braced(labels, None));
                }
            }
        }
        out
    }
}

/// Renders a label set into its canonical `k="v",k2="v2"` body (no
/// braces), escaping `\`, `"`, and newlines per the exposition format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// Wraps a rendered label body in braces, appending an `le` label when
/// rendering a histogram bucket. Empty label sets with no `le` render
/// as nothing at all (bare `name value`).
fn braced(labels: &str, le: Option<&str>) -> String {
    match (labels.is_empty(), le) {
        (true, None) => String::new(),
        (true, Some(le)) => format!("{{le=\"{le}\"}}"),
        (false, None) => format!("{{{labels}}}"),
        (false, Some(le)) => format!("{{{labels},le=\"{le}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hydra_events_total", &[("kind", "tick")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent getter: same underlying atomic.
        assert_eq!(reg.counter("hydra_events_total", &[("kind", "tick")]).get(), 5);

        let g = reg.gauge("hydra_depth", &[]);
        g.set(7);
        g.add(-9);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucket_bounds_are_powers_of_two() {
        assert_eq!(HISTOGRAM_BUCKETS[0], 1);
        assert_eq!(HISTOGRAM_BUCKETS[27], 1 << 27);
    }

    // Satellite: histogram edge coverage.

    #[test]
    fn histogram_with_zero_observations_renders_all_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hydra_latency_us", &[]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        let text = reg.render();
        assert!(text.contains("hydra_latency_us_count 0"), "{text}");
        assert!(text.contains("hydra_latency_us_sum 0"), "{text}");
        assert!(text.contains("hydra_latency_us_bucket{le=\"+Inf\"} 0"), "{text}");
    }

    #[test]
    fn histogram_single_observation_lands_in_exactly_one_bucket() {
        let h = Histogram::default();
        h.observe(3); // 2 < 3 <= 4 → le="4" bucket.
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3);
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 1);
        assert_eq!(counts[2], 1, "3 belongs in the le=4 bucket (index 2)");
    }

    #[test]
    fn histogram_boundary_values_land_on_the_inclusive_side() {
        let h = Histogram::default();
        h.observe(0); // le="1"
        h.observe(1); // le="1"
        h.observe(2); // le="2"
        h.observe(1 << 27); // last bounded bucket, inclusive.
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[27], 1);
        assert_eq!(counts[28], 0, "2^27 itself is not overflow");
    }

    #[test]
    fn histogram_values_beyond_the_last_bucket_go_to_overflow() {
        let h = Histogram::default();
        h.observe((1 << 27) + 1);
        h.observe(u64::MAX);
        let counts = h.bucket_counts();
        assert_eq!(counts[HISTOGRAM_BUCKETS.len()], 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), ((1u64 << 27) + 1).wrapping_add(u64::MAX));
    }

    #[test]
    fn histogram_concurrent_recording_from_4_threads_sums_exactly() {
        let h = Histogram::default();
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Mix of small, boundary, and overflow values.
                        h.observe(t * 1000 + (i % 7) * (1 << (i % 30)));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4 * PER_THREAD, "no observation lost or doubled");
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 4 * PER_THREAD);
    }

    #[test]
    fn render_groups_families_and_emits_type_once() {
        let reg = MetricsRegistry::new();
        reg.counter("hydra_q_total", &[("index", "b")]).add(2);
        reg.counter("hydra_q_total", &[("index", "a")]).add(1);
        // A name that would sort between `hydra_q_total` and its labeled
        // variants under naive string keys ('{' sorts above 'z').
        reg.counter("hydra_q_totalz", &[]).add(9);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE hydra_q_total counter").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE hydra_q_totalz counter").count(), 1, "{text}");
        let a = text.find("hydra_q_total{index=\"a\"} 1").expect("a sample");
        let b = text.find("hydra_q_total{index=\"b\"} 2").expect("b sample");
        let z = text.find("hydra_q_totalz 9").expect("z sample");
        assert!(a < b && b < z, "families contiguous, labels sorted: {text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge("hydra_g", &[("path", "a\\b\"c\nd")]).set(1);
        let text = reg.render();
        assert!(text.contains("hydra_g{path=\"a\\\\b\\\"c\\nd\"} 1"), "{text}");
    }

    #[test]
    fn histogram_render_is_cumulative_and_self_consistent() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hydra_lat", &[("stage", "search")]);
        for v in [1, 1, 2, 5, 1 << 30] {
            h.observe(v);
        }
        let text = reg.render();
        assert!(text.contains("hydra_lat_bucket{stage=\"search\",le=\"1\"} 2"), "{text}");
        assert!(text.contains("hydra_lat_bucket{stage=\"search\",le=\"2\"} 3"), "{text}");
        assert!(text.contains("hydra_lat_bucket{stage=\"search\",le=\"8\"} 4"), "{text}");
        assert!(text.contains("hydra_lat_bucket{stage=\"search\",le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("hydra_lat_count{stage=\"search\"} 5"), "{text}");
        assert!(
            text.contains(&format!("hydra_lat_sum{{stage=\"search\"}} {}", 1 + 1 + 2 + 5 + (1u64 << 30))),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "one family must have one kind")]
    fn kind_collision_panics_loudly() {
        let reg = MetricsRegistry::new();
        reg.counter("hydra_thing", &[]);
        reg.histogram("hydra_thing", &[("x", "y")]);
    }
}
