//! # hydra-obs — zoo-wide telemetry
//!
//! Observability primitives shared by every tier of the Hydra stack:
//!
//! * [`MetricsRegistry`] — a process-wide (or per-server) registry of
//!   atomic [`Counter`]s, [`Gauge`]s, and fixed-bucket log-scale
//!   [`Histogram`]s, keyed by `name{label="value"}` pairs and rendered
//!   as Prometheus text exposition ([`MetricsRegistry::render`]).
//! * [`QueryTrace`] — a per-query (or per-workload) breakdown of where
//!   time and I/O went, as one merged [`StageSpan`] per pipeline
//!   [`Stage`] (enqueue → batch-group → fan-out → per-shard search →
//!   merge → write).
//!
//! ## Design constraints
//!
//! The crate is **dependency-free** (std only) because it sits below
//! everything else in the workspace DAG — core, storage, eval, serve,
//! and bench all link it, so it must not drag anything in. All hot-path
//! operations (`inc`, `add`, `observe`, `set`) are single relaxed
//! atomic RMWs; the registry mutex is touched only on first
//! registration and at scrape time. The cardinal rule, tested at the
//! integration level: **observability never changes answers** — every
//! instrument is additive bookkeeping on the side of the query path.
//!
//! ## Panics
//!
//! Hostile *data* never panics anything in this workspace, and that
//! holds here: rendering, observing, and merging are total. The one
//! deliberate panic is a **programmer error**: registering the same
//! `name{labels}` key twice with two different metric kinds (say, a
//! counter and then a histogram). That is a bug in instrumentation
//! code, caught loudly at first use rather than silently mis-rendered.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alloc;
mod metrics;
mod trace;

pub use alloc::{heap_live_bytes, heap_peak_bytes, reset_heap_peak, TrackingAllocator};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use trace::{Stage, StageIo, StageSpan, QueryTrace};
