//! A heap-tracking global allocator for boot-memory accounting.
//!
//! The out-of-core serving promise is a *memory* promise — "boot touches
//! O(pool) bytes, not O(dataset)" — and a promise nobody measures is a
//! promise that silently rots. [`TrackingAllocator`] wraps the system
//! allocator with two relaxed atomics (live bytes, high-water mark) so a
//! binary can install it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hydra_obs::TrackingAllocator = hydra_obs::TrackingAllocator;
//! ```
//!
//! and export the observed peak as a gauge (`hydra_boot_peak_heap_bytes`
//! in `hydra-serve`), which CI then pins below the dataset size. The
//! bookkeeping is two relaxed atomic RMWs per allocation — cheap enough
//! to leave on unconditionally — and when the allocator is *not*
//! installed, [`heap_peak_bytes`] simply reports 0, which callers treat
//! as "not measured".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that delegates to [`System`] and keeps live/peak
/// byte counts (see the module docs). Install with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

// SAFETY: delegates allocation verbatim to `System`; the added atomics
// never touch the returned memory.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Heap bytes currently live, or 0 if no [`TrackingAllocator`] is
/// installed in this process.
pub fn heap_live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// The high-water mark of live heap bytes since process start (or the
/// last [`reset_heap_peak`]), or 0 if no [`TrackingAllocator`] is
/// installed.
pub fn heap_peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the high-water mark from the current live count — call at
/// the start of the phase being measured (e.g. just before a boot).
pub fn reset_heap_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // only move when driven directly — which is exactly what lets the
    // arithmetic be pinned deterministically.
    #[test]
    fn live_and_peak_track_alloc_dealloc_pairs() {
        reset_heap_peak();
        let base_live = heap_live_bytes();
        on_alloc(1000);
        on_alloc(500);
        assert_eq!(heap_live_bytes(), base_live + 1500);
        assert!(heap_peak_bytes() >= base_live + 1500);
        on_dealloc(1000);
        assert_eq!(heap_live_bytes(), base_live + 500);
        let peak = heap_peak_bytes();
        assert!(peak >= base_live + 1500, "peak survives the dealloc");
        reset_heap_peak();
        assert!(heap_peak_bytes() <= peak, "reset re-arms from live");
        on_dealloc(500);
        assert_eq!(heap_live_bytes(), base_live);
    }
}
