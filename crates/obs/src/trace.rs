//! Per-query stage tracing: where did the time (and I/O) go?
//!
//! A [`QueryTrace`] holds one merged [`StageSpan`] per pipeline
//! [`Stage`]. Producers call [`QueryTrace::record`] /
//! [`QueryTrace::record_io`] as work completes; consumers (the
//! slow-query log, `--trace-out` CSVs, `WorkloadReport`) read the spans
//! back. Traces are plain data — cloneable, mergeable, comparable — so
//! they ride inside reports without threading or lifetime baggage.

use std::time::Duration;

/// The pipeline stages a query can pass through, in execution order.
///
/// Single-process serving uses enqueue → batch-group → per-shard search
/// → write; the router adds fan-out and merge; offline eval runners use
/// the search (and fan-out, when threaded) stages only. Stages a query
/// never entered simply stay at zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in the batcher queue (or router inbox) before any work.
    Enqueue,
    /// Grouping the drained batch by (index, parameter key).
    BatchGroup,
    /// Dispatching to workers/threads and waiting for the slowest.
    FanOut,
    /// The actual per-shard (or single-index) similarity search.
    ShardSearch,
    /// Merging per-shard top-k answers into the global top-k.
    Merge,
    /// Encoding and writing the response frame.
    Write,
}

impl Stage {
    /// Every stage, in pipeline order (the order trace consumers print).
    pub const ALL: [Stage; 6] = [
        Stage::Enqueue,
        Stage::BatchGroup,
        Stage::FanOut,
        Stage::ShardSearch,
        Stage::Merge,
        Stage::Write,
    ];

    /// Stable lowercase name used in metric labels, CSV rows, and the
    /// slow-query log.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::BatchGroup => "batch_group",
            Stage::FanOut => "fan_out",
            Stage::ShardSearch => "shard_search",
            Stage::Merge => "merge",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Enqueue => 0,
            Stage::BatchGroup => 1,
            Stage::FanOut => 2,
            Stage::ShardSearch => 3,
            Stage::Merge => 4,
            Stage::Write => 5,
        }
    }
}

/// I/O attributed to one stage: what the storage layer did on this
/// stage's behalf.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageIo {
    /// Raw bytes read from the series store.
    pub bytes_read: u64,
    /// Random (seek-then-read) I/O operations.
    pub random_ios: u64,
    /// Sequential (read-ahead-friendly) I/O operations.
    pub sequential_ios: u64,
}

impl StageIo {
    /// Component-wise sum.
    pub fn merge(&mut self, other: &StageIo) {
        self.bytes_read += other.bytes_read;
        self.random_ios += other.random_ios;
        self.sequential_ios += other.sequential_ios;
    }
}

/// The merged record of everything one stage did for one query (or one
/// whole workload — spans add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSpan {
    /// How many times the stage ran (a whole workload accumulates).
    pub calls: u64,
    /// Total wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
    /// I/O attributed to the stage.
    pub io: StageIo,
}

/// One query's (or one workload's) per-stage breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    spans: [StageSpan; 6],
}

impl QueryTrace {
    /// An all-zero trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed pass through `stage`.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        let span = &mut self.spans[stage.index()];
        span.calls += 1;
        span.nanos += elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    }

    /// Attributes I/O to `stage` (does not bump `calls` — pair with
    /// [`QueryTrace::record`] for the timing half).
    pub fn record_io(&mut self, stage: Stage, io: StageIo) {
        self.spans[stage.index()].io.merge(&io);
    }

    /// Adds another trace into this one, stage by stage.
    pub fn merge(&mut self, other: &QueryTrace) {
        for stage in Stage::ALL {
            let i = stage.index();
            self.spans[i].calls += other.spans[i].calls;
            self.spans[i].nanos += other.spans[i].nanos;
            self.spans[i].io.merge(&other.spans[i].io);
        }
    }

    /// The span for one stage.
    pub fn span(&self, stage: Stage) -> StageSpan {
        self.spans[stage.index()]
    }

    /// All `(stage, span)` pairs in pipeline order.
    pub fn spans(&self) -> impl Iterator<Item = (Stage, StageSpan)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.spans[s.index()]))
    }

    /// Total nanoseconds across every stage.
    pub fn total_nanos(&self) -> u64 {
        self.spans.iter().map(|s| s.nanos).sum()
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self == &QueryTrace::default()
    }

    /// Renders the compact one-line stage breakdown used by the
    /// slow-query log: `enqueue=1.2ms shard_search=40.0ms ...`,
    /// skipping stages that never ran.
    pub fn breakdown(&self) -> String {
        let mut out = String::new();
        for (stage, span) in self.spans() {
            if span.calls == 0 && span.nanos == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("{}={:.1}ms", stage.name(), span.nanos as f64 / 1e6));
        }
        if out.is_empty() {
            out.push_str("(no stages recorded)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_calls_and_time() {
        let mut t = QueryTrace::new();
        assert!(t.is_empty());
        t.record(Stage::ShardSearch, Duration::from_micros(500));
        t.record(Stage::ShardSearch, Duration::from_micros(300));
        t.record(Stage::Enqueue, Duration::from_micros(10));
        let s = t.span(Stage::ShardSearch);
        assert_eq!(s.calls, 2);
        assert_eq!(s.nanos, 800_000);
        assert_eq!(t.total_nanos(), 810_000);
        assert!(!t.is_empty());
    }

    #[test]
    fn io_attribution_and_merge_sum_component_wise() {
        let mut a = QueryTrace::new();
        a.record(Stage::ShardSearch, Duration::from_nanos(100));
        a.record_io(Stage::ShardSearch, StageIo { bytes_read: 4096, random_ios: 2, sequential_ios: 1 });
        let mut b = QueryTrace::new();
        b.record(Stage::ShardSearch, Duration::from_nanos(50));
        b.record_io(Stage::ShardSearch, StageIo { bytes_read: 1024, random_ios: 0, sequential_ios: 3 });
        b.record(Stage::Merge, Duration::from_nanos(7));
        a.merge(&b);
        let s = a.span(Stage::ShardSearch);
        assert_eq!(s.calls, 2);
        assert_eq!(s.nanos, 150);
        assert_eq!(s.io, StageIo { bytes_read: 5120, random_ios: 2, sequential_ios: 4 });
        assert_eq!(a.span(Stage::Merge).calls, 1);
    }

    #[test]
    fn breakdown_prints_only_touched_stages_in_pipeline_order() {
        let mut t = QueryTrace::new();
        t.record(Stage::Write, Duration::from_micros(1500));
        t.record(Stage::Enqueue, Duration::from_micros(200));
        let line = t.breakdown();
        assert_eq!(line, "enqueue=0.2ms write=1.5ms");
        assert_eq!(QueryTrace::new().breakdown(), "(no stages recorded)");
    }

    #[test]
    fn stage_names_are_stable_and_unique() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
