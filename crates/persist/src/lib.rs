//! # hydra-persist
//!
//! Versioned on-disk snapshots for the whole index zoo: build an index once
//! (the cost the paper reports as *indexing time*), save it, and serve it
//! forever — every later process skips the build phase entirely and answers
//! with byte-identical results.
//!
//! ## The container
//!
//! Snapshots use a small self-describing binary format (see
//! [`snapshot`]): magic bytes, a format version, an index-kind tag, a
//! build-parameter fingerprint, and a sequence of length-prefixed,
//! checksummed sections. Everything is little-endian and dependency-free.
//! Misuse and damage map to typed errors ([`PersistError`]) — a stale
//! format version, a wrong index kind, a flipped bit, or a truncated file
//! are each distinguishable, and none of them panics or yields garbage.
//!
//! ## What is (and is not) stored
//!
//! A snapshot stores the *derived* structure an index spent its build time
//! computing — tree topology and synopses, codebooks and inverted lists,
//! graph adjacency, hash tables, quantized approximations — but not the raw
//! series, which every `load` receives as a [`Dataset`] (itself
//! snapshottable via [`dataset::save_dataset`]). The header fingerprint
//! hashes the build configuration *and* the dataset content, so loading
//! against the wrong data or the wrong parameters fails loudly with
//! [`PersistError::FingerprintMismatch`] instead of answering queries from
//! a mismatched index.
//!
//! ## Incremental snapshots
//!
//! A streaming-ingest run does not rewrite its whole snapshot per batch:
//! it appends each accepted batch's raw series to a checksummed
//! **journal** beside the base snapshot ([`journal`]), and loads replay
//! the journal through `insert_batch`
//! ([`LoaderRegistry::load_any_journaled`]) — reproducing the grown
//! index bit for bit. A later full save compacts: the new base carries
//! the grown data's fingerprint and the journal is deleted.
//!
//! ## Implementing persistence for an index
//!
//! Index crates implement [`PersistentIndex`] next to their private fields
//! and serialize with [`snapshot::Section`] putters plus the shared
//! [`codec`] helpers (histograms, k-means codebooks, product quantizers,
//! rotation matrices), which guarantees one canonical layout for each
//! shared structure across the zoo.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backing;
pub mod codec;
pub mod dataset;
pub mod error;
pub mod fingerprint;
pub mod journal;
pub mod registry;
pub mod snapshot;
pub mod stream;

use std::path::Path;

use hydra_core::Dataset;

pub use error::{PersistError, Result};
pub use fingerprint::{
    fingerprint_dataset, fingerprint_series_flat, fingerprint_series_permuted, Fingerprint,
    SeriesFingerprinter,
};
pub use dataset::FlatSpan;
pub use journal::{journal_path, remove_journal, JournalReader, JournalWriter};
pub use registry::{BoxedLoader, LoaderRegistry};
pub use snapshot::{
    peek_fingerprint, peek_kind, Section, SectionReader, SnapshotReader, SnapshotWriter,
    FORMAT_VERSION, MAGIC,
};
pub use stream::{
    open_dataset_streaming, DataSource, DatasetHandle, MaterializedDataset, STREAM_CHUNK_BYTES,
};

/// How a loaded index should re-attach its raw series — the out-of-core
/// switch of the whole persistence layer.
///
/// The choice shapes only where bytes live and what the I/O counters
/// measure; it is **not** part of the snapshot fingerprint, so one snapshot
/// loads under either backing (at any buffer-pool size) with bit-identical
/// answers.
#[derive(Debug, Clone, Copy, Default)]
pub enum StoreBacking<'a> {
    /// Raw series resident in RAM, paged I/O simulated — the historical
    /// (and build-time) mode.
    #[default]
    Resident,
    /// Raw series served from a file through a page cache with real
    /// eviction. Indexes whose store keeps *dataset* order are backed by
    /// the dataset snapshot itself when its path is given (the snapshot
    /// doubles as the backing file, see
    /// [`dataset::dataset_flat_region`]); indexes with a permuted
    /// (leaf-ordered) store — and dataset-ordered ones when no snapshot
    /// path is available — use a [`dataset::ensure_flat_series`] sidecar
    /// next to the index snapshot.
    FileBacked {
        /// The `*.data.snap` file holding the dataset this index is loaded
        /// against, if the caller has one.
        dataset_snapshot: Option<&'a Path>,
    },
}

/// An index that can be saved to — and restored from — a snapshot file.
///
/// ## Contract
///
/// * `load(path, dataset, config)` after `save(path)` must produce an index
///   that answers every query **identically** to the saved one: same
///   neighbors, same distances (bit for bit), same CPU-side
///   [`hydra_core::QueryStats`]. Saving the loaded index again must produce
///   a byte-identical file.
/// * `save` records a fingerprint of the build configuration and the
///   dataset content; `load` recomputes it from its `config` and `dataset`
///   arguments and fails with [`PersistError::FingerprintMismatch`] if the
///   snapshot was built differently — a snapshot can never silently stand
///   in for an index it is not.
/// * Snapshots store derived structure only. Raw series are re-attached
///   from the `dataset` argument at load time (disk-backed indexes rebuild
///   their [`hydra_storage::SeriesStore`] layout from it, in-memory ones
///   keep a clone), so a snapshot is small relative to the collection and
///   can never disagree with the data it is served over.
/// * [`PersistentIndex::load_backed`] with [`StoreBacking::FileBacked`]
///   must answer **byte-identically** to the resident load of the same
///   snapshot — answers, accuracy, and [`hydra_core::QueryStats`] — at any
///   buffer-pool size and thread count; only the store-level
///   `bytes_read`/eviction totals may differ, because there they are
///   measurements rather than a simulation.
///
/// [`hydra_storage::SeriesStore`]: https://docs.rs/hydra-storage
pub trait PersistentIndex: Sized {
    /// The build-configuration type whose parameters fingerprint the
    /// snapshot.
    type Config;

    /// The kind tag written into (and required of) snapshot headers,
    /// e.g. `"isax2+"`.
    const KIND: &'static str;

    /// Writes the index to `path`, creating parent directories as needed.
    ///
    /// # Errors
    /// [`PersistError::Io`] if the file cannot be written.
    fn save(&self, path: &Path) -> Result<()>;

    /// Restores an index from `path`, re-attaching the raw series of
    /// `dataset` and validating the snapshot against `config`.
    ///
    /// # Errors
    /// Any [`PersistError`]: I/O failures, a non-snapshot or truncated
    /// file, a future format version, a different index kind, a damaged
    /// section, or a fingerprint mismatch against `config`/`dataset`.
    fn load(path: &Path, dataset: &Dataset, config: &Self::Config) -> Result<Self>;

    /// [`PersistentIndex::load`] with an explicit raw-series backing.
    ///
    /// The default implementation ignores `backing` and loads resident —
    /// correct for memory-only indexes, which hold no series store.
    /// Disk-capable indexes override it to attach their store file-backed
    /// (see [`StoreBacking`]); the loaded index must answer byte-identically
    /// either way.
    ///
    /// # Errors
    /// Everything [`PersistentIndex::load`] reports, plus I/O failures
    /// while creating or validating the backing file.
    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &Self::Config,
        backing: StoreBacking<'_>,
    ) -> Result<Self> {
        let _ = backing;
        Self::load(path, dataset, config)
    }

    /// [`PersistentIndex::load_backed`] from a [`DataSource`] — the lazy
    /// boot entry point.
    ///
    /// The default implementation materializes the source (loading the
    /// dataset snapshot into RAM if it was streamed) and delegates to
    /// [`PersistentIndex::load_backed`] — always correct, never lazy.
    /// Disk-capable indexes override it to take shape and fingerprint from
    /// the source's header facts and re-attach series straight from the
    /// validated snapshot file, so a whole serve boot touches O(pool)
    /// memory instead of O(dataset). The loaded index must answer
    /// byte-identically under every combination of source and backing.
    ///
    /// # Errors
    /// Everything [`PersistentIndex::load_backed`] reports, plus I/O
    /// failures while reading a streamed source.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &Self::Config,
        backing: StoreBacking<'_>,
    ) -> Result<Self> {
        let dataset = source.materialized()?;
        Self::load_backed(path, &dataset, config, backing)
    }
}
