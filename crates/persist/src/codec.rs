//! Section codecs for the shared building blocks (histograms, codebooks,
//! quantizers, rotation matrices).
//!
//! Every index crate serializes its own private structures, but they all
//! embed the same handful of workspace types; centralizing those codecs
//! here keeps the per-index `save`/`load` code small and guarantees that,
//! e.g., a k-means codebook is laid out identically inside an IMI snapshot
//! and inside a FLANN snapshot.
//!
//! Each `put_*` has an exactly inverse `get_*`; the getters validate shape
//! invariants and report [`crate::PersistError::Corrupt`] on impossible
//! values instead of panicking.

use hydra_core::DistanceHistogram;
use hydra_summarize::linalg::Matrix;
use hydra_summarize::quantization::{
    KMeans, OptimizedProductQuantizer, ProductQuantizer, ScalarQuantizer,
};

use crate::error::{PersistError, Result};
use crate::snapshot::{Section, SectionReader};

/// Serializes a [`DistanceHistogram`].
pub fn put_histogram(s: &mut Section, h: &DistanceHistogram) {
    s.put_f32s(h.bin_edges());
    s.put_u64s(h.cumulative_counts());
    s.put_u64(h.sample_count());
    s.put_usize(h.dataset_size());
}

/// Deserializes a [`DistanceHistogram`] written by [`put_histogram`].
pub fn get_histogram(s: &mut SectionReader<'_>) -> Result<DistanceHistogram> {
    let bin_edges = s.get_f32s()?;
    let cumulative = s.get_u64s()?;
    let total = s.get_u64()?;
    let dataset_size = s.get_usize()?;
    if bin_edges.len() != cumulative.len() {
        return Err(PersistError::Corrupt(
            "histogram bin edges and counts differ in length".into(),
        ));
    }
    Ok(DistanceHistogram::from_parts(
        bin_edges,
        cumulative,
        total,
        dataset_size,
    ))
}

/// Serializes a [`KMeans`] codebook.
pub fn put_kmeans(s: &mut Section, km: &KMeans) {
    s.put_usize(km.k());
    s.put_usize(km.dim());
    s.put_f32s(km.centroids_flat());
}

/// Deserializes a [`KMeans`] codebook written by [`put_kmeans`].
pub fn get_kmeans(s: &mut SectionReader<'_>) -> Result<KMeans> {
    let k = s.get_usize()?;
    let dim = s.get_usize()?;
    let centroids = s.get_f32s()?;
    if k == 0 || dim == 0 || centroids.len() != k * dim {
        return Err(PersistError::Corrupt(format!(
            "k-means codebook shape mismatch: k={k}, dim={dim}, values={}",
            centroids.len()
        )));
    }
    Ok(KMeans::from_parts(centroids, dim, k))
}

/// Serializes a [`ProductQuantizer`] (all subspace codebooks).
pub fn put_product_quantizer(s: &mut Section, pq: &ProductQuantizer) {
    s.put_usize(pq.dim());
    s.put_usize(pq.num_subspaces());
    for sub in pq.subquantizers() {
        put_kmeans(s, sub);
    }
}

/// Deserializes a [`ProductQuantizer`] written by [`put_product_quantizer`].
pub fn get_product_quantizer(s: &mut SectionReader<'_>) -> Result<ProductQuantizer> {
    let dim = s.get_usize()?;
    let m = s.get_usize()?;
    if m == 0 || dim == 0 || dim % m != 0 {
        return Err(PersistError::Corrupt(format!(
            "product quantizer shape mismatch: dim={dim}, m={m}"
        )));
    }
    let sub_dim = dim / m;
    let mut subs = Vec::with_capacity(m);
    for _ in 0..m {
        let km = get_kmeans(s)?;
        if km.dim() != sub_dim {
            return Err(PersistError::Corrupt(format!(
                "subquantizer dimensionality {} does not divide dim {dim} into {m} parts",
                km.dim()
            )));
        }
        subs.push(km);
    }
    Ok(ProductQuantizer::from_parts(subs, dim))
}

/// Serializes an [`OptimizedProductQuantizer`] (rotation + codebooks).
pub fn put_opq(s: &mut Section, opq: &OptimizedProductQuantizer) {
    put_matrix(s, opq.rotation());
    put_product_quantizer(s, opq.pq());
}

/// Deserializes an [`OptimizedProductQuantizer`] written by [`put_opq`].
pub fn get_opq(s: &mut SectionReader<'_>) -> Result<OptimizedProductQuantizer> {
    let rotation = get_matrix(s)?;
    let pq = get_product_quantizer(s)?;
    if rotation.rows() != pq.dim() || rotation.cols() != pq.dim() {
        return Err(PersistError::Corrupt(
            "OPQ rotation does not match the codebook dimensionality".into(),
        ));
    }
    Ok(OptimizedProductQuantizer::from_parts(rotation, pq))
}

/// Serializes a [`ScalarQuantizer`] (bits + per-dimension cell edges).
pub fn put_scalar_quantizer(s: &mut Section, sq: &ScalarQuantizer) {
    s.put_u8(sq.bits());
    s.put_usize(sq.dims());
    for edges in sq.edges() {
        s.put_f32s(edges);
    }
}

/// Deserializes a [`ScalarQuantizer`] written by [`put_scalar_quantizer`].
pub fn get_scalar_quantizer(s: &mut SectionReader<'_>) -> Result<ScalarQuantizer> {
    let bits = s.get_u8()?;
    let dims = s.get_usize()?;
    if bits == 0 || bits > 16 {
        return Err(PersistError::Corrupt(format!(
            "scalar quantizer bits out of range: {bits}"
        )));
    }
    let cells = 1usize << bits;
    let mut edges = Vec::with_capacity(dims);
    for _ in 0..dims {
        let e = s.get_f32s()?;
        if e.len() != cells + 1 {
            return Err(PersistError::Corrupt(format!(
                "scalar quantizer expects {} edges per dimension, found {}",
                cells + 1,
                e.len()
            )));
        }
        edges.push(e);
    }
    Ok(ScalarQuantizer::from_parts(bits, edges))
}

/// Serializes a row-major [`Matrix`].
pub fn put_matrix(s: &mut Section, m: &Matrix) {
    s.put_usize(m.rows());
    s.put_usize(m.cols());
    s.put_f64s(m.as_slice());
}

/// Deserializes a [`Matrix`] written by [`put_matrix`].
pub fn get_matrix(s: &mut SectionReader<'_>) -> Result<Matrix> {
    let rows = s.get_usize()?;
    let cols = s.get_usize()?;
    let data = s.get_f64s()?;
    if data.len() != rows * cols {
        return Err(PersistError::Corrupt(format!(
            "matrix shape mismatch: {rows}x{cols} with {} values",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::Dataset;

    fn reader(s: &Section) -> SectionReader<'_> {
        SectionReader::new(s.as_bytes())
    }

    #[test]
    fn histogram_roundtrip_preserves_quantiles() {
        let samples: Vec<f32> = (1..=500).map(|i| i as f32 / 50.0).collect();
        let h = DistanceHistogram::from_samples(&samples, 64, 10_000);
        let mut s = Section::new();
        put_histogram(&mut s, &h);
        let got = get_histogram(&mut reader(&s)).unwrap();
        assert_eq!(got.sample_count(), h.sample_count());
        for p in [0.1f64, 0.5, 0.9] {
            assert_eq!(got.quantile(p), h.quantile(p));
        }
        assert_eq!(got.r_delta(0.9), h.r_delta(0.9));
    }

    #[test]
    fn kmeans_roundtrip_preserves_assignment() {
        let data: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 7) as f32, (i % 5) as f32, i as f32 * 0.1])
            .collect();
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let km = KMeans::fit(&refs, 4, 10, 3);
        let mut s = Section::new();
        put_kmeans(&mut s, &km);
        let got = get_kmeans(&mut reader(&s)).unwrap();
        assert_eq!(got.k(), km.k());
        assert_eq!(got.dim(), km.dim());
        for v in &data {
            assert_eq!(got.assign(v), km.assign(v));
            assert_eq!(got.distances(v), km.distances(v));
        }
    }

    #[test]
    fn pq_and_opq_roundtrips_preserve_codes_and_tables() {
        let data: Vec<Vec<f32>> = (0..60)
            .map(|i| (0..8).map(|j| ((i * 13 + j * 7) % 23) as f32 * 0.3 - 2.0).collect())
            .collect();
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let pq = ProductQuantizer::train(&refs, 2, 8, 8, 11);
        let mut s = Section::new();
        put_product_quantizer(&mut s, &pq);
        let got = get_product_quantizer(&mut reader(&s)).unwrap();
        for v in &data {
            assert_eq!(got.encode(v), pq.encode(v));
            assert_eq!(got.distance_table(v), pq.distance_table(v));
        }

        let opq = OptimizedProductQuantizer::train(&refs, 2, 8, 6, 2, 12);
        let mut s = Section::new();
        put_opq(&mut s, &opq);
        let got = get_opq(&mut reader(&s)).unwrap();
        for v in &data {
            assert_eq!(got.encode(v), opq.encode(v));
            assert_eq!(got.distance_table(v), opq.distance_table(v));
        }
    }

    #[test]
    fn scalar_quantizer_roundtrip_preserves_bounds() {
        let data: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![(i % 11) as f32 - 5.0, (i % 3) as f32, i as f32 * 0.01])
            .collect();
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let sq = ScalarQuantizer::train(&refs, 3);
        let mut s = Section::new();
        put_scalar_quantizer(&mut s, &sq);
        let got = get_scalar_quantizer(&mut reader(&s)).unwrap();
        assert_eq!(got.bits(), sq.bits());
        assert_eq!(got.dims(), sq.dims());
        let q = &data[0];
        for v in &data {
            let code = sq.encode(v);
            assert_eq!(got.encode(v), code);
            assert_eq!(
                got.lower_bound(q, &code).to_bits(),
                sq.lower_bound(q, &code).to_bits()
            );
            assert_eq!(
                got.upper_bound(q, &code).to_bits(),
                sq.upper_bound(q, &code).to_bits()
            );
        }
    }

    #[test]
    fn matrix_roundtrip_is_exact() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.25, 1e-300, 7.0]);
        let mut s = Section::new();
        put_matrix(&mut s, &m);
        let got = get_matrix(&mut reader(&s)).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn corrupt_shapes_are_reported_not_panicked() {
        // Histogram with mismatched lengths.
        let mut s = Section::new();
        s.put_f32s(&[1.0, 2.0]);
        s.put_u64s(&[1]);
        s.put_u64(1);
        s.put_usize(10);
        assert!(matches!(
            get_histogram(&mut reader(&s)),
            Err(PersistError::Corrupt(_))
        ));
        // K-means with the wrong number of values.
        let mut s = Section::new();
        s.put_usize(2);
        s.put_usize(3);
        s.put_f32s(&[0.0; 5]);
        assert!(matches!(
            get_kmeans(&mut reader(&s)),
            Err(PersistError::Corrupt(_))
        ));
        // Matrix with the wrong number of values.
        let mut s = Section::new();
        s.put_usize(2);
        s.put_usize(2);
        s.put_f64s(&[0.0; 3]);
        assert!(matches!(
            get_matrix(&mut reader(&s)),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn dataset_helpers_are_reachable() {
        // Smoke-check the core Dataset type is visible from codec tests
        // (the dataset codec itself lives in crate::dataset).
        let d = Dataset::from_series(2, &[[1.0f32, 2.0]]).unwrap();
        assert_eq!(d.len(), 1);
    }
}
