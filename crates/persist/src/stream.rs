//! Streamed dataset-snapshot validation — the lazy boot path.
//!
//! [`crate::dataset::load_dataset`] materializes every value of a `.data.snap` into
//! an in-RAM [`Dataset`] before anything can be served, so peak memory at
//! boot is dataset-sized even when every index afterwards reads through an
//! out-of-core [`hydra_storage::SeriesStore`]. This module provides the
//! alternative: [`open_dataset_streaming`] validates the *entire* container
//! — magic, version, kind, section checksum, shape, and the end-to-end
//! content fingerprint — by scanning the file once in bounded chunks, and
//! returns a [`DatasetHandle`] holding only the header facts (shape,
//! fingerprint, payload offset). Loaders that need raw series read them
//! from the snapshot by offset; nothing dataset-sized is ever allocated.
//!
//! [`DataSource`] is the common currency: "a dataset, either in RAM or
//! validated-on-disk". Loaders take a `DataSource` and stay agnostic;
//! only the few that genuinely need every value call
//! [`DataSource::materialized`].

use std::io::Read;
use std::path::{Path, PathBuf};

use hydra_core::Dataset;

use crate::dataset::{load_dataset, FlatSpan, DATASET_KIND};
use crate::error::{PersistError, Result};
use crate::fingerprint::{fingerprint_dataset, Fingerprint};
use crate::snapshot::{fnv1a64_continue, FNV_OFFSET_BASIS, FORMAT_VERSION, MAGIC};

/// Upper bound on any single read issued while streaming a snapshot.
///
/// This is the boot-time memory ceiling the lazy path promises: validation
/// allocates one buffer of at most this size regardless of dataset size.
/// Deliberately much smaller than any interesting dataset (the boot-memory
/// regression test asserts no allocation beyond it).
pub const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// A fully validated dataset snapshot that was **not** materialized: shape,
/// content fingerprint, and the byte region of its values, obtained by
/// [`open_dataset_streaming`].
///
/// Everything a disk-capable loader needs is here — dims/count checks use
/// [`DatasetHandle::series_len`]/[`DatasetHandle::len`], fingerprint checks
/// use [`DatasetHandle::fingerprint`], and the snapshot doubles as a
/// store's backing file via [`DatasetHandle::flat_span`] exactly as
/// [`crate::dataset::dataset_flat_region`] would report.
#[derive(Debug, Clone)]
pub struct DatasetHandle {
    path: PathBuf,
    series_len: usize,
    len: usize,
    fingerprint: u64,
    payload_offset: u64,
}

impl DatasetHandle {
    /// The snapshot file this handle validated.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Length of each series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The content fingerprint recorded in (and verified against) the file
    /// — identical to [`fingerprint_dataset`] of the materialized dataset.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The byte region of the values inside the snapshot — the span that
    /// lets the snapshot back a [`hydra_storage::SeriesStore`] directly.
    pub fn flat_span(&self) -> FlatSpan {
        FlatSpan {
            payload_offset: self.payload_offset,
            records: self.len,
            series_len: self.series_len,
        }
    }
}

fn read_exactly(file: &mut std::fs::File, buf: &mut [u8]) -> Result<()> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::from(e)
        }
    })
}

/// Opens and validates the dataset snapshot at `path` in one streaming
/// pass, never materializing a [`Dataset`]: the container header, the
/// section checksum, the recorded shape, and the end-to-end content
/// fingerprint are all verified in chunks of at most
/// [`STREAM_CHUNK_BYTES`], so peak memory is O(1) in the dataset size.
///
/// The validation is exactly as strict as [`crate::dataset::load_dataset`] — every
/// failure maps to the same typed [`PersistError`] a materializing load
/// would report (see the error table in the crate docs), so the lazy boot
/// path can never accept a snapshot the eager path would refuse.
///
/// # Errors
/// [`PersistError::BadMagic`] / [`PersistError::VersionMismatch`] /
/// [`PersistError::KindMismatch`] for a foreign file,
/// [`PersistError::Truncated`] if the file ends before its headers
/// promise, [`PersistError::ChecksumMismatch`] for damaged payload bytes,
/// [`PersistError::Corrupt`] for an impossible shape or trailing garbage,
/// and [`PersistError::FingerprintMismatch`] if the values do not hash to
/// the recorded content fingerprint.
pub fn open_dataset_streaming(path: &Path) -> Result<DatasetHandle> {
    let mut file = std::fs::File::open(path)?;
    let mut pos: u64 = 0;

    // Container header: magic, version, fingerprint, kind, section count.
    let mut head = [0u8; 22];
    read_exactly(&mut file, &mut head)?;
    pos += head.len() as u64;
    if head[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let header_fingerprint = u64::from_le_bytes(head[12..20].try_into().unwrap());
    let kind_len = u16::from_le_bytes(head[20..22].try_into().unwrap()) as usize;
    let mut kind = vec![0u8; kind_len];
    read_exactly(&mut file, &mut kind)?;
    pos += kind_len as u64;
    let kind = String::from_utf8(kind)
        .map_err(|_| PersistError::Corrupt("invalid UTF-8 kind tag".into()))?;
    if kind != DATASET_KIND {
        return Err(PersistError::KindMismatch {
            expected: DATASET_KIND.to_string(),
            found: kind,
        });
    }
    let mut count = [0u8; 4];
    read_exactly(&mut file, &mut count)?;
    pos += 4;
    let sections = u32::from_le_bytes(count) as usize;
    if sections == 0 {
        // A dataset snapshot always holds its one payload section.
        return Err(PersistError::Truncated);
    }

    // Section 0: length + checksum, then the payload streamed in chunks.
    // The first 24 payload bytes are the shape (series_len, n, value
    // count); everything after them is values, folded simultaneously into
    // the section checksum and the content fingerprint.
    let mut sec_head = [0u8; 16];
    read_exactly(&mut file, &mut sec_head)?;
    pos += 16;
    let sec_len = u64::from_le_bytes(sec_head[0..8].try_into().unwrap());
    let checksum = u64::from_le_bytes(sec_head[8..16].try_into().unwrap());
    if sec_len < 24 {
        return Err(PersistError::Truncated);
    }
    let mut shape = [0u8; 24];
    read_exactly(&mut file, &mut shape)?;
    pos += 24;
    let as_usize = |bytes: &[u8]| -> Result<usize> {
        let v = u64::from_le_bytes(bytes.try_into().unwrap());
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("usize overflow: {v}")))
    };
    let series_len = as_usize(&shape[0..8])?;
    let n = as_usize(&shape[8..16])?;
    let values = as_usize(&shape[16..24])?;
    if series_len == 0 || values != n.checked_mul(series_len).ok_or_else(|| {
        PersistError::Corrupt(format!("dataset shape overflows: {n} × {series_len}"))
    })? {
        return Err(PersistError::Corrupt(format!(
            "dataset shape mismatch: {n} series of length {series_len} with {values} values"
        )));
    }
    let payload_offset = pos;
    let value_bytes = (values as u64) * 4;
    if sec_len - 24 < value_bytes {
        // The count prefix promises more values than the section holds.
        return Err(PersistError::Truncated);
    }

    let mut state = fnv1a64_continue(FNV_OFFSET_BASIS, &shape);
    let mut content = Fingerprint::new();
    content.push_usize(series_len);
    content.push_usize(n);
    let mut remaining_values = value_bytes;
    let mut remaining_section = sec_len - 24;
    let mut buf = vec![0u8; STREAM_CHUNK_BYTES.min((remaining_section as usize).max(4))];
    while remaining_section > 0 {
        let take = (buf.len() as u64).min(remaining_section) as usize;
        read_exactly(&mut file, &mut buf[..take])?;
        state = fnv1a64_continue(state, &buf[..take]);
        let value_take = (remaining_values.min(take as u64)) as usize;
        for chunk in buf[..value_take].chunks_exact(4) {
            content.push_f32(f32::from_bits(u32::from_le_bytes(chunk.try_into().unwrap())));
        }
        remaining_values -= value_take as u64;
        remaining_section -= take as u64;
    }
    if state != checksum {
        return Err(PersistError::ChecksumMismatch { section: 0 });
    }

    // Remaining sections (a dataset snapshot has none, but the container
    // allows them): checksum-validate each in the same bounded chunks.
    for section in 1..sections {
        let mut sec_head = [0u8; 16];
        read_exactly(&mut file, &mut sec_head)?;
        let sec_len = u64::from_le_bytes(sec_head[0..8].try_into().unwrap());
        let checksum = u64::from_le_bytes(sec_head[8..16].try_into().unwrap());
        let mut state = FNV_OFFSET_BASIS;
        let mut remaining = sec_len;
        while remaining > 0 {
            let take = (buf.len() as u64).min(remaining) as usize;
            read_exactly(&mut file, &mut buf[..take])?;
            state = fnv1a64_continue(state, &buf[..take]);
            remaining -= take as u64;
        }
        if state != checksum {
            return Err(PersistError::ChecksumMismatch { section });
        }
    }
    if file.read(&mut [0u8; 1])? != 0 {
        return Err(PersistError::Corrupt(
            "trailing bytes after the last section".into(),
        ));
    }

    let computed = content.finish();
    if computed != header_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            expected: computed,
            found: header_fingerprint,
        });
    }
    Ok(DatasetHandle {
        path: path.to_path_buf(),
        series_len,
        len: n,
        fingerprint: header_fingerprint,
        payload_offset,
    })
}

/// A dataset, either materialized in RAM or validated-on-disk behind a
/// [`DatasetHandle`] — the common currency of the loading path.
///
/// Loaders consume this instead of `&Dataset` and stay agnostic to where
/// the values live: shape and fingerprint come for free from either
/// variant; only a loader that genuinely needs every value pays for
/// [`DataSource::materialized`] (and thereby opts out of lazy boot).
#[derive(Debug, Clone, Copy)]
pub enum DataSource<'a> {
    /// A dataset held in RAM — the historical (and build-time) path.
    InMemory(&'a Dataset),
    /// A dataset validated on disk by [`open_dataset_streaming`].
    Streamed(&'a DatasetHandle),
}

impl<'a> DataSource<'a> {
    /// Length of each series.
    pub fn series_len(&self) -> usize {
        match self {
            DataSource::InMemory(d) => d.series_len(),
            DataSource::Streamed(h) => h.series_len(),
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        match self {
            DataSource::InMemory(d) => d.len(),
            DataSource::Streamed(h) => h.len(),
        }
    }

    /// Whether the source holds no series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The content fingerprint ([`fingerprint_dataset`]) of the source.
    pub fn fingerprint(&self) -> u64 {
        match self {
            DataSource::InMemory(d) => fingerprint_dataset(d),
            DataSource::Streamed(h) => h.fingerprint(),
        }
    }

    /// The dataset snapshot backing a streamed source, if any — the file a
    /// dataset-order store attaches directly ([`StoreBacking::FileBacked`]
    /// with `dataset_snapshot`).
    ///
    /// [`StoreBacking::FileBacked`]: crate::StoreBacking::FileBacked
    pub fn snapshot_path(&self) -> Option<&'a Path> {
        match self {
            DataSource::InMemory(_) => None,
            DataSource::Streamed(h) => Some(h.path()),
        }
    }

    /// The full dataset — borrowed when already in RAM, loaded (and
    /// re-validated) from the snapshot otherwise. Calling this on a
    /// streamed source materializes dataset-sized memory: it is the one
    /// escape hatch for loaders that genuinely need every value, and the
    /// thing every disk-capable loader avoids.
    pub fn materialized(&self) -> Result<MaterializedDataset<'a>> {
        match self {
            DataSource::InMemory(d) => Ok(MaterializedDataset::Borrowed(d)),
            DataSource::Streamed(h) => Ok(MaterializedDataset::Owned(load_dataset(h.path())?)),
        }
    }

    /// A per-series reader over the source (RAM slices or snapshot
    /// `pread`s), for sidecar rebuilds that must stay O(1) in memory.
    pub(crate) fn series_fetch(&self) -> Result<SeriesFetch<'a>> {
        match self {
            DataSource::InMemory(d) => Ok(SeriesFetch::Mem(d)),
            DataSource::Streamed(h) => Ok(SeriesFetch::File {
                file: std::fs::File::open(h.path())?,
                series_len: h.series_len(),
                len: h.len(),
                payload_offset: h.payload_offset,
            }),
        }
    }
}

/// The result of [`DataSource::materialized`]: a dataset that is either
/// borrowed from the caller or was just loaded from disk. Dereferences to
/// [`Dataset`].
#[derive(Debug)]
pub enum MaterializedDataset<'a> {
    /// Borrowed from an in-memory source.
    Borrowed(&'a Dataset),
    /// Loaded from a streamed source's snapshot.
    Owned(Dataset),
}

impl std::ops::Deref for MaterializedDataset<'_> {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        match self {
            MaterializedDataset::Borrowed(d) => d,
            MaterializedDataset::Owned(d) => d,
        }
    }
}

/// Reads individual series from a [`DataSource`] — RAM slices for an
/// in-memory dataset, positional reads against the validated snapshot for
/// a streamed one.
pub(crate) enum SeriesFetch<'a> {
    Mem(&'a Dataset),
    File {
        file: std::fs::File,
        series_len: usize,
        len: usize,
        payload_offset: u64,
    },
}

impl SeriesFetch<'_> {
    /// Copies series `record` into `out`.
    ///
    /// # Panics
    /// Panics if `record` is out of bounds — callers validate order
    /// vectors against [`DataSource::len`] first, exactly as the
    /// dataset-based path panics on `Dataset::series`.
    pub(crate) fn get(&self, record: usize, out: &mut Vec<f32>) -> Result<()> {
        out.clear();
        match self {
            SeriesFetch::Mem(d) => {
                out.extend_from_slice(d.series(record));
            }
            SeriesFetch::File {
                file,
                series_len,
                len,
                payload_offset,
            } => {
                use std::os::unix::fs::FileExt;
                assert!(record < *len, "record {record} out of bounds");
                let mut buf = vec![0u8; series_len * 4];
                file.read_exact_at(
                    &mut buf,
                    payload_offset + (record * series_len * 4) as u64,
                )?;
                out.extend(
                    buf.chunks_exact(4)
                        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap()))),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{dataset_flat_region, save_dataset};
    use crate::snapshot::{Section, SnapshotWriter};

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hydra-stream-{}-{name}", std::process::id()))
    }

    fn sample_dataset() -> Dataset {
        let mut d = Dataset::new(8).unwrap();
        for i in 0..40 {
            let s: Vec<f32> = (0..8).map(|j| (i * 8 + j) as f32 * 0.5 - 3.0).collect();
            d.push(&s).unwrap();
        }
        d
    }

    #[test]
    fn streamed_open_agrees_with_the_materializing_load() {
        let d = sample_dataset();
        let path = temp_path("agree.data.snap");
        save_dataset(&d, &path).unwrap();
        let h = open_dataset_streaming(&path).unwrap();
        assert_eq!(h.series_len(), d.series_len());
        assert_eq!(h.len(), d.len());
        assert_eq!(h.fingerprint(), fingerprint_dataset(&d));
        // The handle's span is exactly what dataset_flat_region computes.
        assert_eq!(h.flat_span(), dataset_flat_region(&path, &d).unwrap());
        // Per-series preads through the handle are bit-exact.
        let src = DataSource::Streamed(&h);
        let fetch = src.series_fetch().unwrap();
        let mut out = Vec::new();
        for r in [0usize, 7, 39] {
            fetch.get(r, &mut out).unwrap();
            assert_eq!(out, d.series(r), "record {r}");
        }
        // Materializing through the source round-trips.
        assert_eq!(&*src.materialized().unwrap(), &d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_is_typed_truncated() {
        let d = sample_dataset();
        let path = temp_path("trunc.data.snap");
        save_dataset(&d, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Cut mid-payload, mid-header, and mid-section-header.
        for cut in [pristine.len() - 10, 30, 3, 25] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                matches!(open_dataset_streaming(&path), Err(PersistError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_typed_checksum_mismatch() {
        let d = sample_dataset();
        let path = temp_path("flip.data.snap");
        save_dataset(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::ChecksumMismatch { section: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_fingerprint_mismatch_is_typed() {
        let d = sample_dataset();
        let path = temp_path("fpr.data.snap");
        save_dataset(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The header fingerprint lives at 12..20 and is not covered by the
        // section checksum — flip it and only the end-to-end content check
        // can notice.
        bytes[12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_and_length_mismatches_are_typed() {
        let path = temp_path("shape.data.snap");
        // A checksum-valid section that promises more values than it holds.
        let mut w = SnapshotWriter::new(DATASET_KIND, 0);
        let mut s = Section::new();
        s.put_usize(3); // series_len
        s.put_usize(5); // n
        s.put_f32s(&[1.0; 15]); // count prefix says 15...
        let mut bytes = {
            w.push(s);
            w.to_bytes()
        };
        bytes.truncate(bytes.len() - 8); // ...but drop the last two values
        // Fix up the section length so only the *value count* disagrees.
        let header = 8 + 4 + 8 + 2 + DATASET_KIND.len() + 4;
        let sec_len = u64::from_le_bytes(bytes[header..header + 8].try_into().unwrap()) - 8;
        bytes[header..header + 8].copy_from_slice(&sec_len.to_le_bytes());
        let payload = &bytes[header + 16..];
        let fixed = crate::snapshot::fnv1a64(payload);
        bytes[header + 8..header + 16].copy_from_slice(&fixed.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::Truncated)
        ));

        // A shape whose value count disagrees with n × series_len.
        let mut w = SnapshotWriter::new(DATASET_KIND, 0);
        let mut s = Section::new();
        s.put_usize(3);
        s.put_usize(5); // promises 15 values...
        s.put_f32s(&[1.0; 6]); // ...stores 6
        w.push(s);
        w.write_to(&path).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::Corrupt(_))
        ));

        // A zero series length is impossible.
        let mut w = SnapshotWriter::new(DATASET_KIND, 0);
        let mut s = Section::new();
        s.put_usize(0);
        s.put_usize(0);
        s.put_f32s(&[]);
        w.push(s);
        w.write_to(&path).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_typed() {
        let d = sample_dataset();
        let path = temp_path("foreign.data.snap");
        save_dataset(&d, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::BadMagic)
        ));

        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::VersionMismatch { .. })
        ));

        SnapshotWriter::new("dstree", 0).write_to(&path).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::KindMismatch { .. })
        ));

        let mut trailing = pristine;
        trailing.extend_from_slice(b"junk");
        std::fs::write(&path, &trailing).unwrap();
        assert!(matches!(
            open_dataset_streaming(&path),
            Err(PersistError::Corrupt(_))
        ));

        assert!(matches!(
            open_dataset_streaming(Path::new("/nonexistent/x.data.snap")),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
