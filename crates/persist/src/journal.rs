//! Incremental snapshots: an append-only ingest journal beside the base
//! snapshot.
//!
//! A full [`crate::PersistentIndex::save`] after every
//! [`hydra_core::AnnIndex::insert_batch`] would rewrite the entire derived
//! structure to absorb a handful of series. The journal makes increments
//! cheap: an ingesting process appends each accepted batch's **raw
//! series** to `<snapshot>.snap.journal` ([`journal_path`]), and a later
//! load replays those batches through `insert_batch` on the freshly
//! loaded base. Because ingest is deterministic — the equivalence
//! contract pinned by `tests/integration_ingest.rs` — base + journal
//! reproduces the grown in-memory index **bit for bit**.
//!
//! A journal is *compacted on save*: a full `save()` of the grown index
//! writes a new self-contained base (its fingerprint re-computed over the
//! grown data), after which the journal is deleted
//! ([`remove_journal`]) — the increments now live in the base.
//!
//! ## File format
//!
//! All primitives little-endian, like the snapshot container:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"HYDRJRNL"
//! 8       4     journal format version (u32, currently 1)
//! 12      8     base snapshot fingerprint (u64 — the header fingerprint
//!               of the base `.snap`, see [`crate::peek_fingerprint`])
//! 20      8     series length L (u64)
//! --- one record per appended batch ---
//!         8     series count C (u64, > 0)
//!         C*L*4 raw f32 values, by bit pattern
//!         8     record checksum (FNV-1a 64 over the C*L*4 value bytes)
//! ```
//!
//! ## Failure semantics
//!
//! [`JournalReader::open`] validates the **whole file** — header, every
//! record length, every record checksum — before returning, so replay can
//! never apply half a journal: a file cut mid-record is
//! [`PersistError::Truncated`], a flipped value byte is
//! [`PersistError::ChecksumMismatch`] (the `section` names the record),
//! and a journal written against a different base is
//! [`PersistError::FingerprintMismatch`]. All typed, never partial state,
//! never a panic.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::{PersistError, Result};
use crate::snapshot::fnv1a64;

/// Magic bytes identifying a Hydra ingest journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"HYDRJRNL";

/// The single journal-format version this build writes and reads.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal that belongs to the base snapshot at `snapshot`:
/// `<snapshot>.journal` beside it (`x.snap` → `x.snap.journal`).
pub fn journal_path(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.as_os_str().to_os_string();
    name.push(".journal");
    PathBuf::from(name)
}

/// Deletes the journal beside `snapshot`, if any — the compaction step
/// after a full save has folded the increments into a new base.
///
/// # Errors
/// [`PersistError::Io`] on a filesystem failure other than the journal
/// simply not existing (no journal is the common, healthy case).
pub fn remove_journal(snapshot: &Path) -> Result<()> {
    match std::fs::remove_file(journal_path(snapshot)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Appends ingest batches to a journal file, one checksummed record per
/// [`JournalWriter::append_batch`] call.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    series_len: usize,
}

impl JournalWriter {
    /// Creates (truncating) the journal at `path`, pinned to the base
    /// snapshot whose header fingerprint is `base_fingerprint`, over
    /// series of length `series_len`.
    ///
    /// # Errors
    /// [`PersistError::Io`] if the file cannot be created or the header
    /// cannot be written.
    pub fn create(path: &Path, base_fingerprint: u64, series_len: usize) -> Result<Self> {
        let mut file = std::fs::File::create(path)?;
        let mut head = Vec::with_capacity(28);
        head.extend_from_slice(&JOURNAL_MAGIC);
        head.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        head.extend_from_slice(&base_fingerprint.to_le_bytes());
        head.extend_from_slice(&(series_len as u64).to_le_bytes());
        file.write_all(&head)?;
        file.flush()?;
        Ok(Self { file, series_len })
    }

    /// Appends one batch as a single record, flushed before returning —
    /// once this returns `Ok`, the record survives the process.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] on an empty batch or a series of the
    /// wrong length (mirroring `insert_batch`'s whole-batch-or-nothing
    /// validation — a record the replay would reject must never be
    /// written), [`PersistError::Io`] on a write failure.
    pub fn append_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        if batch.is_empty() {
            return Err(PersistError::Corrupt(
                "refusing to journal an empty batch".into(),
            ));
        }
        let mut values = Vec::with_capacity(batch.len() * self.series_len * 4);
        for series in batch {
            if series.len() != self.series_len {
                return Err(PersistError::Corrupt(format!(
                    "journaled series has length {}, journal holds length {}",
                    series.len(),
                    self.series_len
                )));
            }
            for &v in *series {
                values.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let mut record = Vec::with_capacity(8 + values.len() + 8);
        record.extend_from_slice(&(batch.len() as u64).to_le_bytes());
        record.extend_from_slice(&values);
        record.extend_from_slice(&fnv1a64(&values).to_le_bytes());
        self.file.write_all(&record)?;
        self.file.flush()?;
        Ok(())
    }
}

/// A fully validated journal, ready to replay.
#[derive(Debug)]
pub struct JournalReader {
    base_fingerprint: u64,
    series_len: usize,
    batches: Vec<Vec<Vec<f32>>>,
}

impl JournalReader {
    /// Reads and validates the **entire** journal at `path` — header and
    /// every record — before returning (see the module docs' failure
    /// semantics).
    ///
    /// # Errors
    /// [`PersistError::BadMagic`] / [`PersistError::VersionMismatch`] for
    /// a foreign or future file, [`PersistError::Truncated`] for a file
    /// cut mid-header or mid-record, [`PersistError::ChecksumMismatch`]
    /// (the `section` is the record index) for damaged values,
    /// [`PersistError::Corrupt`] for impossible counts, and
    /// [`PersistError::Io`] if the file cannot be read.
    pub fn open(path: &Path) -> Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 28 {
            return Err(PersistError::Truncated);
        }
        if bytes[..8] != JOURNAL_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != JOURNAL_VERSION {
            return Err(PersistError::VersionMismatch {
                found: version,
                supported: JOURNAL_VERSION,
            });
        }
        let base_fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let series_len_u64 = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let series_len = usize::try_from(series_len_u64)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| {
                PersistError::Corrupt(format!("impossible journal series length {series_len_u64}"))
            })?;
        let mut batches = Vec::new();
        let mut pos = 28;
        while pos < bytes.len() {
            if bytes.len() - pos < 8 {
                return Err(PersistError::Truncated);
            }
            let count = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let count = usize::try_from(count).ok().filter(|&c| c > 0).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "impossible series count {count} in journal record {}",
                    batches.len()
                ))
            })?;
            let value_bytes = count
                .checked_mul(series_len)
                .and_then(|n| n.checked_mul(4))
                .filter(|&n| n <= bytes.len() - pos)
                .ok_or(PersistError::Truncated)?;
            if bytes.len() - pos < value_bytes + 8 {
                return Err(PersistError::Truncated);
            }
            let values = &bytes[pos..pos + value_bytes];
            pos += value_bytes;
            let checksum = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            if fnv1a64(values) != checksum {
                return Err(PersistError::ChecksumMismatch {
                    section: batches.len(),
                });
            }
            let mut batch = Vec::with_capacity(count);
            for s in 0..count {
                let mut series = Vec::with_capacity(series_len);
                for v in 0..series_len {
                    let at = (s * series_len + v) * 4;
                    series.push(f32::from_bits(u32::from_le_bytes(
                        values[at..at + 4].try_into().unwrap(),
                    )));
                }
                batch.push(series);
            }
            batches.push(batch);
        }
        Ok(Self {
            base_fingerprint,
            series_len,
            batches,
        })
    }

    /// The header fingerprint of the base snapshot this journal extends.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fingerprint
    }

    /// The series length every journaled series has.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The validated batches, in append order.
    pub fn batches(&self) -> &[Vec<Vec<f32>>] {
        &self.batches
    }

    /// Total series across all batches.
    pub fn num_series(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Replays every batch through `index.insert_batch`, in append order —
    /// the exact call sequence the ingesting process made, so the result
    /// is bit-identical to the index it journaled.
    ///
    /// # Errors
    /// [`PersistError::FingerprintMismatch`] if the index's base snapshot
    /// fingerprint (`base_fingerprint`, from [`crate::peek_fingerprint`])
    /// is not the one this journal was pinned to,
    /// [`PersistError::Corrupt`] if the series lengths disagree or the
    /// index rejects a batch (e.g. it does not support streaming insert).
    pub fn replay(&self, index: &mut dyn hydra_core::AnnIndex, base_fingerprint: u64) -> Result<()> {
        if base_fingerprint != self.base_fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: self.base_fingerprint,
                found: base_fingerprint,
            });
        }
        if index.series_len() != self.series_len {
            return Err(PersistError::Corrupt(format!(
                "journal holds series of length {}, index expects {}",
                self.series_len,
                index.series_len()
            )));
        }
        for batch in &self.batches {
            let refs: Vec<&[f32]> = batch.iter().map(|s| s.as_slice()).collect();
            index
                .insert_batch(&refs)
                .map_err(|e| PersistError::Corrupt(format!("journal replay failed: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hydra-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn journal_path_sits_beside_the_snapshot() {
        assert_eq!(
            journal_path(Path::new("/snaps/walk-isax2.snap")),
            Path::new("/snaps/walk-isax2.snap.journal")
        );
    }

    #[test]
    fn roundtrips_batches_bit_for_bit() {
        let path = temp_path("roundtrip.snap.journal");
        let mut w = JournalWriter::create(&path, 0xFEED, 3).unwrap();
        let b0: Vec<&[f32]> = vec![&[1.0, -2.5, f32::MIN_POSITIVE], &[0.0, -0.0, 3.25]];
        let b1: Vec<&[f32]> = vec![&[9.0, 8.0, 7.0]];
        w.append_batch(&b0).unwrap();
        w.append_batch(&b1).unwrap();
        drop(w);
        let r = JournalReader::open(&path).unwrap();
        assert_eq!(r.base_fingerprint(), 0xFEED);
        assert_eq!(r.series_len(), 3);
        assert_eq!(r.num_series(), 3);
        assert_eq!(r.batches().len(), 2);
        assert_eq!(r.batches()[0][0], vec![1.0, -2.5, f32::MIN_POSITIVE]);
        // -0.0 must survive by bit pattern, not collapse to +0.0.
        assert_eq!(r.batches()[0][1][1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.batches()[1][0], vec![9.0, 8.0, 7.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_what_replay_would_reject() {
        let path = temp_path("reject.snap.journal");
        let mut w = JournalWriter::create(&path, 1, 2).unwrap();
        assert!(matches!(
            w.append_batch(&[]),
            Err(PersistError::Corrupt(_))
        ));
        let bad: Vec<&[f32]> = vec![&[1.0, 2.0, 3.0]];
        assert!(matches!(
            w.append_batch(&bad),
            Err(PersistError::Corrupt(_))
        ));
        // An empty journal (header only) is valid and replays nothing.
        drop(w);
        let r = JournalReader::open(&path).unwrap();
        assert_eq!(r.num_series(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damage_is_typed_and_never_partial() {
        let path = temp_path("damage.snap.journal");
        let mut w = JournalWriter::create(&path, 2, 2).unwrap();
        let b: Vec<&[f32]> = vec![&[1.0, 2.0], &[3.0, 4.0]];
        w.append_batch(&b).unwrap();
        w.append_batch(&b).unwrap();
        drop(w);
        let pristine = std::fs::read(&path).unwrap();

        // Truncation anywhere — mid-header, mid-count, mid-values,
        // mid-checksum — is Truncated, and open() fails before any batch
        // is handed out.
        for cut in [4, 20, 30, pristine.len() - 3] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                matches!(JournalReader::open(&path), Err(PersistError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
        // A flipped value byte in the SECOND record names record 1.
        let mut flipped = pristine.clone();
        let second_values = 28 + 8 + 16 + 8 + 8 + 3;
        flipped[second_values] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            JournalReader::open(&path),
            Err(PersistError::ChecksumMismatch { section: 1 })
        ));
        // Foreign and future files are typed.
        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            JournalReader::open(&path),
            Err(PersistError::BadMagic)
        ));
        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            JournalReader::open(&path),
            Err(PersistError::VersionMismatch { .. })
        ));
        // An impossible record count is Corrupt or Truncated, never a
        // huge allocation: u64::MAX overflows the record size check.
        let mut huge = pristine[..28 + 8].to_vec();
        huge[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(JournalReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn remove_journal_tolerates_absence() {
        let snap = temp_path("compact.snap");
        remove_journal(&snap).unwrap();
        let jpath = journal_path(&snap);
        JournalWriter::create(&jpath, 3, 2).unwrap();
        assert!(jpath.exists());
        remove_journal(&snap).unwrap();
        assert!(!jpath.exists());
    }
}
