//! Build-parameter fingerprints.
//!
//! A snapshot records a single `u64` fingerprint of everything that shaped
//! the index: its kind, every build parameter, and the dataset content it
//! was built over. Loading recomputes the fingerprint from the *requested*
//! configuration and dataset and refuses
//! ([`crate::PersistError::FingerprintMismatch`]) to deserialize a snapshot
//! built differently — the on-disk analogue of "this binary was compiled
//! with different flags".
//!
//! The hash is FNV-1a 64 over a canonical little-endian byte stream. Floats
//! contribute their IEEE bit patterns, so the fingerprint is exact (no
//! epsilon comparisons) and deterministic across platforms.

use hydra_core::Dataset;

use crate::snapshot::{fnv1a64_continue, FNV_OFFSET_BASIS};

/// Incremental FNV-1a 64 hasher over typed values.
///
/// Slice pushes hash only the element bytes (no length prefix), so hashing a
/// buffer in one call or in chunks yields the same fingerprint — which lets
/// an index that stores its data in a permuted layout reproduce the
/// dataset-order fingerprint series by series.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV_OFFSET_BASIS,
        }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        self.state = fnv1a64_continue(self.state, bytes);
    }

    /// Hashes a `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.absorb(&v.to_le_bytes());
        self
    }

    /// Hashes a `usize` (as a `u64`).
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.push_u64(v as u64)
    }

    /// Hashes a bool (as one byte).
    pub fn push_bool(&mut self, v: bool) -> &mut Self {
        self.absorb(&[v as u8]);
        self
    }

    /// Hashes an `f32` by bit pattern.
    pub fn push_f32(&mut self, v: f32) -> &mut Self {
        self.absorb(&v.to_bits().to_le_bytes());
        self
    }

    /// Hashes an `f64` by bit pattern.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.absorb(&v.to_bits().to_le_bytes());
        self
    }

    /// Hashes a string's UTF-8 bytes followed by a NUL separator (so
    /// adjacent strings cannot alias).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.absorb(s.as_bytes());
        self.absorb(&[0]);
        self
    }

    /// Hashes a slice of `f32`s element by element (no length prefix; see
    /// the type-level docs).
    pub fn push_f32s(&mut self, v: &[f32]) -> &mut Self {
        for &x in v {
            self.push_f32(x);
        }
        self
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Content fingerprint of a dataset: its shape followed by every value's bit
/// pattern, in dataset order.
pub fn fingerprint_dataset(dataset: &Dataset) -> u64 {
    fingerprint_series_flat(dataset.series_len(), dataset.as_flat())
}

/// [`fingerprint_dataset`] over a raw flat buffer already laid out in
/// dataset order (used by indexes whose store keeps the original order).
pub fn fingerprint_series_flat(series_len: usize, flat: &[f32]) -> u64 {
    let mut f = Fingerprint::new();
    f.push_usize(series_len);
    f.push_usize(if series_len == 0 { 0 } else { flat.len() / series_len });
    f.push_f32s(flat);
    f.finish()
}

/// [`fingerprint_dataset`] computed one series at a time, for collections
/// with no flat slice to hand out (file-backed stores, grown stores with a
/// resident tail): the caller announces the shape, then feeds every series
/// **in dataset order**, and `finish` yields exactly the value
/// [`fingerprint_dataset`] would — which is how a streaming-ingested index
/// recomputes its content fingerprint at save time from an unaccounted
/// store scan.
#[derive(Debug, Clone)]
pub struct SeriesFingerprinter {
    f: Fingerprint,
    series_len: usize,
    expected: usize,
    fed: usize,
}

impl SeriesFingerprinter {
    /// Starts a fingerprint of `num_series` series of length `series_len`.
    pub fn new(series_len: usize, num_series: usize) -> Self {
        let mut f = Fingerprint::new();
        f.push_usize(series_len);
        f.push_usize(num_series);
        Self {
            f,
            series_len,
            expected: num_series,
            fed: 0,
        }
    }

    /// Feeds the next series (dataset order).
    ///
    /// # Panics
    /// Panics on a wrong series length or when more than the announced
    /// number of series is fed.
    pub fn push_series(&mut self, series: &[f32]) -> &mut Self {
        assert_eq!(series.len(), self.series_len, "series length mismatch");
        assert!(self.fed < self.expected, "more series than announced");
        self.fed += 1;
        self.f.push_f32s(series);
        self
    }

    /// The finished fingerprint.
    ///
    /// # Panics
    /// Panics unless exactly the announced number of series was fed.
    pub fn finish(&self) -> u64 {
        assert_eq!(self.fed, self.expected, "fewer series than announced");
        self.f.finish()
    }
}

/// [`fingerprint_dataset`] over a *permuted* flat buffer: `flat` stores the
/// series in store order and `store_to_dataset[pos]` gives the dataset
/// position of store record `pos`. Used by the tree indexes, which lay their
/// leaves out contiguously — the fingerprint is still computed in dataset
/// order, so it matches [`fingerprint_dataset`] of the original collection.
///
/// # Panics
/// Panics if `store_to_dataset` is not a permutation of `0..n`.
pub fn fingerprint_series_permuted(
    series_len: usize,
    flat: &[f32],
    store_to_dataset: &[usize],
) -> u64 {
    let n = store_to_dataset.len();
    assert_eq!(flat.len(), n * series_len, "flat buffer shape mismatch");
    let mut inverse = vec![usize::MAX; n];
    for (pos, &ds) in store_to_dataset.iter().enumerate() {
        assert!(ds < n && inverse[ds] == usize::MAX, "not a permutation");
        inverse[ds] = pos;
    }
    let mut f = Fingerprint::new();
    f.push_usize(series_len);
    f.push_usize(n);
    for &pos in &inverse {
        f.push_f32s(&flat[pos * series_len..(pos + 1) * series_len]);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_sensitive() {
        let mut a = Fingerprint::new();
        a.push_u64(1).push_f32(2.0).push_str("x").push_bool(true);
        let mut b = Fingerprint::new();
        b.push_u64(1).push_f32(2.0).push_str("x").push_bool(true);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.push_u64(1).push_f32(2.0).push_str("x").push_bool(false);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn chunked_f32_pushes_match_one_push() {
        let data = [1.0f32, -2.0, 3.5, 0.0, 9.25];
        let mut whole = Fingerprint::new();
        whole.push_f32s(&data);
        let mut chunked = Fingerprint::new();
        chunked.push_f32s(&data[..2]).push_f32s(&data[2..]);
        assert_eq!(whole.finish(), chunked.finish());
    }

    #[test]
    fn dataset_fingerprint_depends_on_content_and_shape() {
        let a = Dataset::from_series(2, &[[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        let b = Dataset::from_series(2, &[[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        let c = Dataset::from_series(2, &[[1.0f32, 2.0], [3.0, 5.0]]).unwrap();
        let d = Dataset::from_series(4, &[[1.0f32, 2.0, 3.0, 4.0]]).unwrap();
        assert_eq!(fingerprint_dataset(&a), fingerprint_dataset(&b));
        assert_ne!(fingerprint_dataset(&a), fingerprint_dataset(&c));
        assert_ne!(fingerprint_dataset(&a), fingerprint_dataset(&d));
    }

    #[test]
    fn permuted_fingerprint_matches_dataset_order() {
        let data = Dataset::from_series(2, &[[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]]).unwrap();
        // Store order: series 2, 0, 1.
        let flat = [4.0f32, 5.0, 0.0, 1.0, 2.0, 3.0];
        let store_to_dataset = [2usize, 0, 1];
        assert_eq!(
            fingerprint_series_permuted(2, &flat, &store_to_dataset),
            fingerprint_dataset(&data)
        );
    }

    #[test]
    fn streamed_fingerprint_matches_dataset_fingerprint() {
        let data =
            Dataset::from_series(2, &[[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]]).unwrap();
        let mut s = SeriesFingerprinter::new(2, 3);
        for series in data.iter() {
            s.push_series(series);
        }
        assert_eq!(s.finish(), fingerprint_dataset(&data));
    }

    #[test]
    #[should_panic(expected = "fewer series than announced")]
    fn streamed_fingerprint_rejects_short_feeds() {
        SeriesFingerprinter::new(2, 3).finish();
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_fingerprint_rejects_non_permutations() {
        let flat = [0.0f32; 4];
        fingerprint_series_permuted(2, &flat, &[0, 0]);
    }
}
