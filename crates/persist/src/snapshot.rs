//! The snapshot container format.
//!
//! A snapshot file is a header followed by checksummed sections. All
//! primitives are little-endian; there are no external dependencies and no
//! pointers — every structure is length-prefixed, so a reader can validate
//! the whole file before interpreting a single payload byte.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"HYDRSNAP"
//! 8       4     format version (u32, currently 2)
//! 12      8     build-parameter fingerprint (u64)
//! 20      2     kind length L (u16)
//! 22      L     kind tag (ASCII, e.g. "isax2+", "dstree", "ground-truth")
//! 22+L    4     section count S (u32)
//! --- repeated S times ---
//!         8     payload length P (u64)
//!         8     payload checksum (FNV-1a 64 over the payload bytes)
//!         P     payload
//! ```
//!
//! [`SnapshotReader::open`] validates magic, version, header shape and every
//! section checksum before returning, so all later [`SectionReader`]
//! accesses can only fail with [`PersistError::Truncated`] (asking for more
//! values than the section holds) or [`PersistError::Corrupt`] (impossible
//! decoded values).

use std::path::Path;

use crate::error::{PersistError, Result};

/// Magic bytes identifying a Hydra snapshot file.
pub const MAGIC: [u8; 8] = *b"HYDRSNAP";

/// The single container-format version this build writes and reads.
///
/// Version history: 1 = the original container; 2 = identical byte
/// layout, but index snapshot fingerprints stopped hashing the storage
/// configuration (PR 5's out-of-core work — pool size and backing are
/// serving knobs, not build parameters). The bump exists so directories
/// saved under the old fingerprint scheme fail with a clear
/// [`PersistError::VersionMismatch`] ("re-save your snapshots") instead
/// of a misleading fingerprint mismatch blaming the configuration.
pub const FORMAT_VERSION: u32 = 2;

/// The FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an in-progress FNV-1a 64 state (the single inner
/// loop shared by the one-shot [`fnv1a64`] and the incremental
/// [`crate::fingerprint::Fingerprint`], so the two can never drift apart).
pub(crate) fn fnv1a64_continue(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// FNV-1a 64-bit hash — the section checksum (and the primitive under
/// [`crate::fingerprint::Fingerprint`]). Dependency-free and deterministic
/// across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(FNV_OFFSET_BASIS, bytes)
}

// ---------------------------------------------------------------------------
// Section building
// ---------------------------------------------------------------------------

/// An append-only byte buffer holding one section's payload.
///
/// All `put_*` methods write little-endian. Slice writers prefix a `u64`
/// element count, so the matching [`SectionReader`] getters need no
/// out-of-band length.
#[derive(Debug, Default, Clone)]
pub struct Section {
    buf: Vec<u8>,
}

impl Section {
    /// Creates an empty section.
    pub fn new() -> Self {
        Self::default()
    }

    /// The payload accumulated so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (snapshots are portable across word
    /// sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` by bit pattern (exact round-trip, NaN-safe).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a string as a `u16` length followed by its UTF-8 bytes.
    ///
    /// # Panics
    /// Panics if the string is longer than `u16::MAX` bytes (kind tags and
    /// labels are short by construction).
    pub fn put_str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "string too long for snapshot");
        self.put_u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u64`-count-prefixed slice of bytes.
    pub fn put_u8s(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a count-prefixed slice of `u16`s.
    pub fn put_u16s(&mut self, v: &[u16]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u16(x);
        }
    }

    /// Appends a count-prefixed slice of `u32`s.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a count-prefixed slice of `u64`s.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a count-prefixed slice of `usize`s (as `u64`s).
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x as u64);
        }
    }

    /// Appends a count-prefixed slice of `f32`s (by bit pattern).
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Appends a count-prefixed slice of `f64`s (by bit pattern).
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }
}

// ---------------------------------------------------------------------------
// Section reading
// ---------------------------------------------------------------------------

/// A cursor over one (checksum-validated) section payload.
///
/// Getters mirror the [`Section`] putters one-to-one; reading past the end
/// of the section yields [`PersistError::Truncated`] rather than a panic.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Wraps a raw payload buffer.
    ///
    /// Inside this crate every `SectionReader` comes from
    /// [`SnapshotReader::next_section`] (already checksum-validated);
    /// outside it, this constructor lets other length-prefixed formats —
    /// e.g. the `hydra-serve` wire protocol — reuse the snapshot
    /// primitives and their never-panic decoding guarantees over bytes
    /// they framed themselves.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not fit the
    /// host word size.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads an `f32` by bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Reads the count prefix of a slice, verifying that `count * elem_size`
    /// bytes actually remain (so a corrupt length cannot trigger a huge
    /// allocation).
    fn get_count(&mut self, elem_size: usize) -> Result<usize> {
        let count = self.get_usize()?;
        if count.checked_mul(elem_size).map(|b| b > self.remaining()).unwrap_or(true) {
            return Err(PersistError::Truncated);
        }
        Ok(count)
    }

    /// Reads a count-prefixed byte slice.
    pub fn get_u8s(&mut self) -> Result<Vec<u8>> {
        let n = self.get_count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a count-prefixed slice of `u16`s.
    pub fn get_u16s(&mut self) -> Result<Vec<u16>> {
        let n = self.get_count(2)?;
        (0..n).map(|_| self.get_u16()).collect()
    }

    /// Reads a count-prefixed slice of `u32`s.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.get_count(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a count-prefixed slice of `u64`s.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Reads a count-prefixed slice of `usize`s.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Reads a count-prefixed slice of `f32`s.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.get_count(4)?;
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Reads a count-prefixed slice of `f64`s.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }
}

// ---------------------------------------------------------------------------
// Whole-file writer
// ---------------------------------------------------------------------------

/// Builds a snapshot file: a kind tag, a build fingerprint, and a sequence
/// of checksummed sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: String,
    fingerprint: u64,
    sections: Vec<Section>,
}

impl SnapshotWriter {
    /// Creates a writer for a snapshot of the given kind and build
    /// fingerprint.
    pub fn new(kind: &str, fingerprint: u64) -> Self {
        Self {
            kind: kind.to_string(),
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Appends one finished section.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Number of sections queued so far.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Serializes the whole snapshot into a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self.sections.iter().map(|s| s.buf.len() + 16).sum();
        let mut out = Vec::with_capacity(22 + self.kind.len() + 4 + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        assert!(self.kind.len() <= u16::MAX as usize, "kind tag too long");
        out.extend_from_slice(&(self.kind.len() as u16).to_le_bytes());
        out.extend_from_slice(self.kind.as_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.buf.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(&s.buf).to_le_bytes());
            out.extend_from_slice(&s.buf);
        }
        out
    }

    /// Writes the snapshot to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }
}

/// Reads only the header of the snapshot at `path` — magic, format
/// version, and kind tag — without loading or checksum-validating any
/// section.
///
/// This is the cheap dispatch primitive behind
/// [`crate::LoaderRegistry::load_any`]: a multi-gigabyte snapshot costs a
/// few dozen bytes of I/O to identify, and the dispatched loader then
/// performs the full validation exactly once. The header fields read here
/// ARE validated (wrong magic, future version, truncation and a non-UTF-8
/// kind each fail typed); damage beyond the header is the loader's to
/// find.
pub fn peek_kind(path: &Path) -> Result<String> {
    use std::io::Read;
    fn read_exactly(f: &mut std::fs::File, buf: &mut [u8]) -> Result<()> {
        f.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Truncated
            } else {
                PersistError::from(e)
            }
        })
    }
    let mut f = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    read_exactly(&mut f, &mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    // Version (u32), fingerprint (u64, skipped), kind length (u16).
    let mut head = [0u8; 14];
    read_exactly(&mut f, &mut head)?;
    let version = u32::from_le_bytes(head[0..4].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind_len = u16::from_le_bytes(head[12..14].try_into().unwrap()) as usize;
    let mut kind = vec![0u8; kind_len];
    read_exactly(&mut f, &mut kind)?;
    String::from_utf8(kind).map_err(|_| PersistError::Corrupt("invalid UTF-8 kind tag".into()))
}

/// Reads only the build-parameter fingerprint out of the snapshot header
/// at `path`, with the same cheap-but-validated contract as [`peek_kind`].
///
/// This is how a journal ([`crate::journal`]) is pinned to its base
/// snapshot: the journal header records this fingerprint, and replay
/// refuses a journal whose base was rebuilt or swapped underneath it.
pub fn peek_fingerprint(path: &Path) -> Result<u64> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 20];
    f.read_exact(&mut head).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::from(e)
        }
    })?;
    if head[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(u64::from_le_bytes(head[12..20].try_into().unwrap()))
}

// ---------------------------------------------------------------------------
// Whole-file reader
// ---------------------------------------------------------------------------

/// Opens and fully validates a snapshot file, then hands out its sections in
/// order.
#[derive(Debug)]
pub struct SnapshotReader {
    kind: String,
    fingerprint: u64,
    /// Section payloads, already checksum-validated.
    sections: Vec<Vec<u8>>,
    next: usize,
}

impl SnapshotReader {
    /// Reads `path` and validates the container: magic, format version,
    /// header shape, and the checksum of every section.
    ///
    /// # Errors
    /// [`PersistError::Io`] if the file cannot be read,
    /// [`PersistError::BadMagic`] / [`PersistError::VersionMismatch`] /
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`] for a
    /// malformed container, and [`PersistError::ChecksumMismatch`] for a
    /// damaged section.
    pub fn open(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Validates a snapshot already held in memory (see [`Self::open`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() {
            return Err(PersistError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut cur = SectionReader::new(&bytes[MAGIC.len()..]);
        let version = cur.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::VersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let fingerprint = cur.get_u64()?;
        let kind = cur.get_str()?;
        let count = cur.get_u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for section in 0..count {
            let len = cur.get_usize()?;
            let checksum = cur.get_u64()?;
            let payload = cur.take(len)?;
            if fnv1a64(payload) != checksum {
                return Err(PersistError::ChecksumMismatch { section });
            }
            sections.push(payload.to_vec());
        }
        if cur.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the last section",
                cur.remaining()
            )));
        }
        Ok(Self {
            kind,
            fingerprint,
            sections,
            next: 0,
        })
    }

    /// The kind tag recorded in the file.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The build fingerprint recorded in the file.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of sections in the file.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Fails with [`PersistError::KindMismatch`] unless the file holds a
    /// snapshot of `expected` kind.
    pub fn expect_kind(&self, expected: &str) -> Result<()> {
        if self.kind != expected {
            return Err(PersistError::KindMismatch {
                expected: expected.to_string(),
                found: self.kind.clone(),
            });
        }
        Ok(())
    }

    /// Fails with [`PersistError::FingerprintMismatch`] unless the file was
    /// built with parameters hashing to `expected`.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<()> {
        if self.fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            });
        }
        Ok(())
    }

    /// Returns a cursor over the next section, in file order.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] if every section has been consumed (the
    /// file holds fewer sections than the reader expects).
    pub fn next_section(&mut self) -> Result<SectionReader<'_>> {
        let idx = self.next;
        if idx >= self.sections.len() {
            return Err(PersistError::Truncated);
        }
        self.next += 1;
        Ok(SectionReader::new(&self.sections[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydra-persist-{}-{name}", std::process::id()))
    }

    fn sample_snapshot() -> SnapshotWriter {
        let mut w = SnapshotWriter::new("unit-test", 0xDEAD_BEEF);
        let mut s0 = Section::new();
        s0.put_u32(7);
        s0.put_str("hello");
        s0.put_f32s(&[1.0, -2.5, f32::INFINITY]);
        w.push(s0);
        let mut s1 = Section::new();
        s1.put_usizes(&[3, 1, 4, 1, 5]);
        s1.put_bool(true);
        w.push(s1);
        w
    }

    #[test]
    fn roundtrip_preserves_every_value() {
        let bytes = sample_snapshot().to_bytes();
        let mut r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.kind(), "unit-test");
        assert_eq!(r.fingerprint(), 0xDEAD_BEEF);
        assert_eq!(r.num_sections(), 2);
        r.expect_kind("unit-test").unwrap();
        r.expect_fingerprint(0xDEAD_BEEF).unwrap();
        let mut s0 = r.next_section().unwrap();
        assert_eq!(s0.get_u32().unwrap(), 7);
        assert_eq!(s0.get_str().unwrap(), "hello");
        let f = s0.get_f32s().unwrap();
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], -2.5);
        assert!(f[2].is_infinite());
        assert_eq!(s0.remaining(), 0);
        let mut s1 = r.next_section().unwrap();
        assert_eq!(s1.get_usizes().unwrap(), vec![3, 1, 4, 1, 5]);
        assert!(s1.get_bool().unwrap());
        assert!(matches!(r.next_section(), Err(PersistError::Truncated)));
    }

    #[test]
    fn file_roundtrip_works() {
        let path = temp_path("file-roundtrip.snap");
        sample_snapshot().write_to(&path).unwrap();
        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.kind(), "unit-test");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = temp_path("nested-dir");
        let path = dir.join("deep").join("file.snap");
        sample_snapshot().write_to(&path).unwrap();
        assert!(SnapshotReader::open(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_reports_truncated() {
        let bytes = sample_snapshot().to_bytes();
        // Cut in the middle of the last section's payload.
        let cut = &bytes[..bytes.len() - 10];
        assert!(matches!(
            SnapshotReader::from_bytes(cut),
            Err(PersistError::Truncated)
        ));
        // Cut inside the header too.
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes[..10]),
            Err(PersistError::Truncated)
        ));
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes[..3]),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn flipped_payload_byte_reports_checksum_mismatch() {
        let mut bytes = sample_snapshot().to_bytes();
        // Flip the last payload byte (inside section 1).
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { section: 1 })
        ));
    }

    #[test]
    fn flipped_checksum_byte_reports_checksum_mismatch() {
        let w = sample_snapshot();
        let mut bytes = w.to_bytes();
        // The first section's checksum lives 8 bytes after its length field,
        // which starts right after the header.
        let header_len = 8 + 4 + 8 + 2 + "unit-test".len() + 4;
        bytes[header_len + 8] ^= 0x01;
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { section: 0 })
        ));
    }

    #[test]
    fn wrong_magic_reports_bad_magic() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn future_version_reports_version_mismatch() {
        let mut bytes = sample_snapshot().to_bytes();
        // The version field lives at offset 8..12.
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::VersionMismatch { found, supported: FORMAT_VERSION })
                if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn wrong_kind_and_fingerprint_are_typed() {
        let bytes = sample_snapshot().to_bytes();
        let r = SnapshotReader::from_bytes(&bytes).unwrap();
        assert!(matches!(
            r.expect_kind("something-else"),
            Err(PersistError::KindMismatch { .. })
        ));
        assert!(matches!(
            r.expect_fingerprint(1),
            Err(PersistError::FingerprintMismatch { expected: 1, found: 0xDEAD_BEEF })
        ));
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn section_reader_never_reads_past_the_end() {
        let mut s = Section::new();
        s.put_u16(42);
        let mut r = SectionReader::new(s.as_bytes());
        assert_eq!(r.get_u16().unwrap(), 42);
        assert!(matches!(r.get_u64(), Err(PersistError::Truncated)));
        // A corrupt huge count must fail before allocating.
        let mut s = Section::new();
        s.put_u64(u64::MAX);
        let mut r = SectionReader::new(s.as_bytes());
        assert!(matches!(r.get_f32s(), Err(PersistError::Truncated)));
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        let mut s = Section::new();
        s.put_u8(7);
        let mut r = SectionReader::new(s.as_bytes());
        assert!(matches!(r.get_bool(), Err(PersistError::Corrupt(_))));
        let mut s = Section::new();
        s.put_u16(2);
        s.put_u8(0xFF);
        s.put_u8(0xFE);
        let mut r = SectionReader::new(s.as_bytes());
        assert!(matches!(r.get_str(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn peek_kind_reads_only_the_header() {
        let path = temp_path("peek.snap");
        sample_snapshot().write_to(&path).unwrap();
        assert_eq!(peek_kind(&path).unwrap(), "unit-test");

        // Section damage is invisible to the peek (dispatchers hand the
        // file to a loader that validates fully)...
        let pristine = std::fs::read(&path).unwrap();
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(peek_kind(&path).unwrap(), "unit-test");

        // ...but header damage is typed exactly like the full reader.
        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(peek_kind(&path), Err(PersistError::BadMagic)));
        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            peek_kind(&path),
            Err(PersistError::VersionMismatch { .. })
        ));
        std::fs::write(&path, &pristine[..12]).unwrap();
        assert!(matches!(peek_kind(&path), Err(PersistError::Truncated)));
        std::fs::write(&path, &pristine[..3]).unwrap();
        assert!(matches!(peek_kind(&path), Err(PersistError::Truncated)));
        assert!(matches!(
            peek_kind(Path::new("/nonexistent/peek.snap")),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SnapshotReader::open(Path::new("/nonexistent/hydra.snap")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
