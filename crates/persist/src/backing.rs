//! Re-attaching raw-series stores at snapshot load time.
//!
//! Every disk-capable index ends its `load` the same way: the snapshot
//! described the *structure*, and the raw series must now be put behind a
//! [`SeriesStore`] in the layout the structure expects. This module is the
//! single implementation of that step for both layouts and both backings
//! (see [`StoreBacking`]), so the zoo cannot drift:
//!
//! * [`attach_permuted_store`] — tree indexes, whose store holds the
//!   series in **leaf order** (`store_to_dataset[pos]` = dataset position
//!   of record `pos`). File-backed, the leaf-ordered payload lives in a
//!   verified `<snapshot>.series` flat-file sidecar
//!   ([`crate::dataset::ensure_flat_series`]).
//! * [`attach_dataset_order_store`] — skip-sequential indexes, whose store
//!   keeps **dataset order**. File-backed, the dataset snapshot itself is
//!   the backing file when its path is known
//!   ([`crate::dataset::dataset_flat_region`]); otherwise a sidecar is
//!   used, exactly as for the trees.
//!
//! The backing never changes answers: the store serves bit-identical
//! series either way, and the shared accounting in `hydra-storage` keeps
//! the per-query I/O counters identical too.

use std::path::Path;

use hydra_core::Dataset;
use hydra_storage::{FileSpan, SeriesStore, StorageConfig};

use crate::dataset::{
    coded_sidecar_path, dataset_flat_region, ensure_coded_series_from, ensure_flat_series_from,
    sidecar_series_path, FlatSpan,
};
use crate::error::{PersistError, Result};
use crate::stream::{open_dataset_streaming, DataSource};
use crate::StoreBacking;
use hydra_storage::PageCodec;

fn file_backed(path: &Path, span: FlatSpan, storage: StorageConfig) -> Result<SeriesStore> {
    SeriesStore::file_backed(
        path,
        FileSpan {
            offset: span.payload_offset,
            records: span.records,
        },
        span.series_len,
        storage,
    )
    .map_err(|e| {
        PersistError::Io(format!(
            "cannot attach file-backed store {}: {e}",
            path.display()
        ))
    })
}

/// Builds (or reuses) and attaches the coded-page sidecar of the flat
/// backing file at `backing_file` when `storage` selects a non-f32 codec.
/// A no-op under f32 — raw pages serve directly.
fn attach_coded_tier(
    store: &mut SeriesStore,
    backing_file: &Path,
    source: DataSource<'_>,
    order: Option<&[usize]>,
) -> Result<()> {
    let storage = store.config();
    if storage.codec == PageCodec::F32 {
        return Ok(());
    }
    let sidecar = coded_sidecar_path(backing_file, storage.codec);
    ensure_coded_series_from(&sidecar, source, order, &storage)?;
    store.attach_coded_file(&sidecar).map_err(|e| {
        PersistError::Io(format!(
            "cannot attach coded tier {}: {e}",
            sidecar.display()
        ))
    })
}

/// The payload span of the dataset snapshot at `data_path`, validated
/// against `source` — [`dataset_flat_region`] without requiring the
/// dataset in RAM. A streamed source that *is* this snapshot already
/// carries the answer; anything else (re)validates the file and checks
/// its content fingerprint against the source's.
fn dataset_flat_region_from(data_path: &Path, source: DataSource<'_>) -> Result<FlatSpan> {
    match source {
        DataSource::InMemory(dataset) => dataset_flat_region(data_path, dataset),
        DataSource::Streamed(handle) if handle.path() == data_path => Ok(handle.flat_span()),
        DataSource::Streamed(handle) => {
            let other = open_dataset_streaming(data_path)?;
            if other.fingerprint() != handle.fingerprint() {
                return Err(PersistError::FingerprintMismatch {
                    expected: handle.fingerprint(),
                    found: other.fingerprint(),
                });
            }
            Ok(other.flat_span())
        }
    }
}

/// Re-attaches a permuted (leaf-ordered) raw-series store under the
/// requested backing: resident (re-appended from the dataset, as every
/// load did historically) or file-backed (a verified flat-file sidecar
/// next to `snapshot`, served through the real page cache).
///
/// # Errors
/// [`PersistError::Corrupt`] if the mapping references series outside the
/// dataset; [`PersistError::Io`] on filesystem failures.
pub fn attach_permuted_store(
    snapshot: &Path,
    dataset: &Dataset,
    store_to_dataset: &[usize],
    storage: StorageConfig,
    backing: StoreBacking<'_>,
) -> Result<SeriesStore> {
    attach_permuted_store_from(
        snapshot,
        DataSource::InMemory(dataset),
        store_to_dataset,
        storage,
        backing,
    )
}

/// [`attach_permuted_store`] over a [`DataSource`] — the lazy boot path.
/// A streamed source feeds a resident rebuild one series at a time and a
/// file-backed sidecar rebuild straight from the validated snapshot, so
/// neither ever materializes the dataset.
///
/// # Errors
/// Everything [`attach_permuted_store`] reports, plus [`PersistError::Io`]
/// if a streamed source cannot be read.
pub fn attach_permuted_store_from(
    snapshot: &Path,
    source: DataSource<'_>,
    store_to_dataset: &[usize],
    storage: StorageConfig,
    backing: StoreBacking<'_>,
) -> Result<SeriesStore> {
    match backing {
        StoreBacking::Resident => {
            let mut store = SeriesStore::new(source.series_len(), storage)
                .map_err(|e| PersistError::Corrupt(format!("cannot rebuild series store: {e}")))?;
            let fetch = source.series_fetch()?;
            let mut series = Vec::new();
            for &ds in store_to_dataset {
                if ds >= source.len() {
                    return Err(PersistError::Corrupt(format!(
                        "store mapping {ds} out of range"
                    )));
                }
                fetch.get(ds, &mut series)?;
                store.append(&series).map_err(|e| {
                    PersistError::Corrupt(format!("cannot rebuild series store: {e}"))
                })?;
            }
            store.seal_coded();
            store.reset_io();
            Ok(store)
        }
        StoreBacking::FileBacked { .. } => {
            let sidecar = sidecar_series_path(snapshot);
            // `ensure_flat_series_from` validates the mapping range itself.
            let span = ensure_flat_series_from(&sidecar, source, Some(store_to_dataset))?;
            let mut store = file_backed(&sidecar, span, storage)?;
            attach_coded_tier(&mut store, &sidecar, source, Some(store_to_dataset))?;
            Ok(store)
        }
    }
}

/// Re-attaches a dataset-ordered raw-series store under the requested
/// backing. File-backed, the dataset snapshot named by the backing doubles
/// as the backing file (no extra bytes on disk); without one, a flat-file
/// sidecar next to `snapshot` is used.
///
/// # Errors
/// [`PersistError`] on filesystem failures, a damaged dataset snapshot, or
/// a dataset snapshot whose content is not `dataset`.
pub fn attach_dataset_order_store(
    snapshot: &Path,
    dataset: &Dataset,
    storage: StorageConfig,
    backing: StoreBacking<'_>,
) -> Result<SeriesStore> {
    attach_dataset_order_store_from(snapshot, DataSource::InMemory(dataset), storage, backing)
}

/// [`attach_dataset_order_store`] over a [`DataSource`] — the lazy boot
/// path. File-backed against the dataset snapshot a streamed source was
/// opened from, nothing is read at all: the validated handle already
/// carries the payload span.
///
/// # Errors
/// Everything [`attach_dataset_order_store`] reports, plus
/// [`PersistError::Io`] if a streamed source cannot be read.
pub fn attach_dataset_order_store_from(
    snapshot: &Path,
    source: DataSource<'_>,
    storage: StorageConfig,
    backing: StoreBacking<'_>,
) -> Result<SeriesStore> {
    match backing {
        StoreBacking::Resident => {
            let mut store = match source {
                DataSource::InMemory(dataset) => SeriesStore::from_dataset(dataset, storage)
                    .map_err(|e| {
                        PersistError::Corrupt(format!("cannot rebuild series store: {e}"))
                    })?,
                DataSource::Streamed(_) => {
                    let mut store =
                        SeriesStore::new(source.series_len(), storage).map_err(|e| {
                            PersistError::Corrupt(format!("cannot rebuild series store: {e}"))
                        })?;
                    let fetch = source.series_fetch()?;
                    let mut series = Vec::new();
                    for record in 0..source.len() {
                        fetch.get(record, &mut series)?;
                        store.append(&series).map_err(|e| {
                            PersistError::Corrupt(format!("cannot rebuild series store: {e}"))
                        })?;
                    }
                    store
                }
            };
            store.seal_coded();
            store.reset_io();
            Ok(store)
        }
        StoreBacking::FileBacked {
            dataset_snapshot: Some(data_path),
        } => {
            let span = dataset_flat_region_from(data_path, source)?;
            let mut store = file_backed(data_path, span, storage)?;
            attach_coded_tier(&mut store, data_path, source, None)?;
            Ok(store)
        }
        StoreBacking::FileBacked {
            dataset_snapshot: None,
        } => {
            let sidecar = sidecar_series_path(snapshot);
            let span = ensure_flat_series_from(&sidecar, source, None)?;
            let mut store = file_backed(&sidecar, span, storage)?;
            attach_coded_tier(&mut store, &sidecar, source, None)?;
            Ok(store)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::save_dataset;
    use hydra_storage::FileIoMode;
    use hydra_core::QueryStats;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydra-backing-{}-{name}", std::process::id()))
    }

    fn sample() -> Dataset {
        let mut d = Dataset::new(4).unwrap();
        for i in 0..10 {
            let s: Vec<f32> = (0..4).map(|j| (i * 4 + j) as f32).collect();
            d.push(&s).unwrap();
        }
        d
    }

    fn read_all(store: &SeriesStore) -> Vec<Vec<f32>> {
        let mut stats = QueryStats::new();
        (0..store.len())
            .map(|r| store.read(r, &mut stats).to_vec())
            .collect()
    }

    #[test]
    fn permuted_store_serves_identical_series_under_both_backings() {
        let d = sample();
        let snapshot = temp_path("perm.snap");
        std::fs::remove_file(crate::dataset::sidecar_series_path(&snapshot)).ok();
        let mapping: Vec<usize> = (0..10).rev().collect();
        let storage = StorageConfig {
            page_bytes: 32,
            buffer_pool_pages: 1,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let resident =
            attach_permuted_store(&snapshot, &d, &mapping, storage, StoreBacking::Resident)
                .unwrap();
        let filed = attach_permuted_store(
            &snapshot,
            &d,
            &mapping,
            storage,
            StoreBacking::FileBacked {
                dataset_snapshot: None,
            },
        )
        .unwrap();
        assert!(!resident.is_file_backed());
        assert!(filed.is_file_backed());
        assert_eq!(read_all(&resident), read_all(&filed));
        assert!(filed.io_snapshot().pool_evictions > 0, "capacity 1 must thrash");
        // A mapping outside the dataset is corrupt under either backing.
        for backing in [
            StoreBacking::Resident,
            StoreBacking::FileBacked {
                dataset_snapshot: None,
            },
        ] {
            assert!(matches!(
                attach_permuted_store(&snapshot, &d, &[99], storage, backing),
                Err(PersistError::Corrupt(_))
            ));
        }
        std::fs::remove_file(crate::dataset::sidecar_series_path(&snapshot)).ok();
    }

    #[test]
    fn dataset_order_store_backs_onto_the_dataset_snapshot() {
        let d = sample();
        let snapshot = temp_path("order.snap");
        let data_snap = temp_path("order.data.snap");
        save_dataset(&d, &data_snap).unwrap();
        let storage = StorageConfig::on_disk();
        let resident =
            attach_dataset_order_store(&snapshot, &d, storage, StoreBacking::Resident).unwrap();
        let from_snap = attach_dataset_order_store(
            &snapshot,
            &d,
            storage,
            StoreBacking::FileBacked {
                dataset_snapshot: Some(&data_snap),
            },
        )
        .unwrap();
        let from_sidecar = attach_dataset_order_store(
            &snapshot,
            &d,
            storage,
            StoreBacking::FileBacked {
                dataset_snapshot: None,
            },
        )
        .unwrap();
        assert_eq!(read_all(&resident), read_all(&from_snap));
        assert_eq!(read_all(&resident), read_all(&from_sidecar));
        // The dataset snapshot was NOT copied: no sidecar appears when the
        // snapshot itself is the backing file.
        assert!(from_snap.is_file_backed());
        // A wrong dataset snapshot is refused, never silently served.
        let other = Dataset::from_flat(4, vec![0.0; 40]).unwrap();
        assert!(matches!(
            attach_dataset_order_store(
                &snapshot,
                &other,
                storage,
                StoreBacking::FileBacked {
                    dataset_snapshot: Some(&data_snap),
                },
            ),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&data_snap).ok();
        std::fs::remove_file(crate::dataset::sidecar_series_path(&snapshot)).ok();
    }

    #[test]
    fn coded_backings_answer_bit_identically_and_read_fewer_bytes() {
        // Pseudo-random values: a u8 grid cannot represent them exactly, so
        // quantization genuinely prunes and survivors genuinely re-read.
        let mut d = Dataset::new(4).unwrap();
        let mut x = 0x2545f491u32;
        for _ in 0..64 {
            let s: Vec<f32> = (0..4)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 8) as f32 / (1 << 24) as f32 * 50.0 - 25.0
                })
                .collect();
            d.push(&s).unwrap();
        }
        let snapshot = temp_path("coded.snap");
        let mapping: Vec<usize> = (0..64).rev().collect();
        let scan = |store: &SeriesStore| {
            let query = vec![0.5f32; 4];
            let mut stats = QueryStats::new();
            let mut accepted = Vec::new();
            let mut best = f32::INFINITY;
            store.scan_refine(0, store.len(), &query, best, &mut stats, &mut |id, dist| {
                accepted.push((id, dist.to_bits()));
                best = best.min(dist);
                best
            });
            (accepted, stats)
        };
        let attach = |codec: PageCodec, backing: StoreBacking<'_>| {
            let storage = StorageConfig {
                page_bytes: 32,
                buffer_pool_pages: 2,
                codec,
                io: FileIoMode::Pread,
            };
            attach_permuted_store(&snapshot, &d, &mapping, storage, backing).unwrap()
        };
        let cleanup = || {
            let sidecar = sidecar_series_path(&snapshot);
            for codec in [PageCodec::U8, PageCodec::F16] {
                std::fs::remove_file(coded_sidecar_path(&sidecar, codec)).ok();
            }
            std::fs::remove_file(sidecar).ok();
        };
        cleanup();

        let (want, raw_stats) = scan(&attach(PageCodec::F32, StoreBacking::Resident));
        for codec in [PageCodec::U8, PageCodec::F16] {
            let resident = attach(codec, StoreBacking::Resident);
            let filed = attach(
                codec,
                StoreBacking::FileBacked {
                    dataset_snapshot: None,
                },
            );
            assert_eq!(resident.sealed(), 64, "resident attach seals in RAM");
            assert_eq!(filed.sealed(), 64, "file attach seals via the sidecar");
            let (res_acc, res_stats) = scan(&resident);
            let (file_acc, file_stats) = scan(&filed);
            assert_eq!(res_acc, want, "{}: resident answers drifted", codec.name());
            assert_eq!(file_acc, want, "{}: file answers drifted", codec.name());
            assert_eq!(res_stats, file_stats, "{}: backings must agree", codec.name());
            assert!(res_stats.bytes_read < raw_stats.bytes_read);
            assert!(filed.io_snapshot().compressed_bytes_read > 0);
        }
        cleanup();
    }
}
