//! Snapshotting whole datasets.
//!
//! Generating the synthetic collections is cheap, but real deployments load
//! series from expensive pipelines; persisting the [`Dataset`] itself makes
//! a saved index fully self-sufficient: a server can boot from
//! `dataset.snap` + `index.snap` without touching the original source.

use std::path::Path;

use hydra_core::Dataset;

use crate::error::{PersistError, Result};
use crate::fingerprint::fingerprint_dataset;
use crate::snapshot::{Section, SnapshotReader, SnapshotWriter};

/// Kind tag of dataset snapshots.
pub const DATASET_KIND: &str = "dataset";

/// Writes `dataset` to `path` as a snapshot of kind [`DATASET_KIND`], with
/// the dataset's content fingerprint in the header.
pub fn save_dataset(dataset: &Dataset, path: &Path) -> Result<()> {
    let mut w = SnapshotWriter::new(DATASET_KIND, fingerprint_dataset(dataset));
    let mut s = Section::new();
    s.put_usize(dataset.series_len());
    s.put_usize(dataset.len());
    s.put_f32s(dataset.as_flat());
    w.push(s);
    w.write_to(path)
}

/// Reads a dataset snapshot written by [`save_dataset`].
pub fn load_dataset(path: &Path) -> Result<Dataset> {
    let mut r = SnapshotReader::open(path)?;
    r.expect_kind(DATASET_KIND)?;
    let mut s = r.next_section()?;
    let series_len = s.get_usize()?;
    let n = s.get_usize()?;
    let flat = s.get_f32s()?;
    if series_len == 0 || flat.len() != n * series_len {
        return Err(PersistError::Corrupt(format!(
            "dataset shape mismatch: {n} series of length {series_len} with {} values",
            flat.len()
        )));
    }
    let dataset = Dataset::from_flat(series_len, flat)
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    // The header fingerprint doubles as an end-to-end content check.
    r.expect_fingerprint(fingerprint_dataset(&dataset))?;
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydra-dataset-{}-{name}", std::process::id()))
    }

    #[test]
    fn dataset_roundtrip_is_bit_exact() {
        let d = Dataset::from_series(
            3,
            &[[1.0f32, -2.5, 3.0], [0.0, f32::MIN_POSITIVE, 9.75]],
        )
        .unwrap();
        let path = temp_path("roundtrip.snap");
        save_dataset(&d, &path).unwrap();
        let got = load_dataset(&path).unwrap();
        assert_eq!(got, d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let path = temp_path("wrong-kind.snap");
        SnapshotWriter::new("not-a-dataset", 0)
            .write_to(&path)
            .unwrap();
        assert!(matches!(
            load_dataset(&path),
            Err(PersistError::KindMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
