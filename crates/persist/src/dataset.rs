//! Snapshotting whole datasets — and the flat series layout that lets a
//! file on disk *back* a [`hydra-storage`] store directly.
//!
//! Generating the synthetic collections is cheap, but real deployments load
//! series from expensive pipelines; persisting the [`Dataset`] itself makes
//! a saved index fully self-sufficient: a server can boot from
//! `dataset.snap` + `index.snap` without touching the original source.
//!
//! ## The flat series layout
//!
//! Out-of-core serving needs raw series it can `pread` at a computable
//! offset. Two files provide that:
//!
//! * A **dataset snapshot** ([`save_dataset`]) stores its values as
//!   contiguous little-endian `f32` bit patterns, so the snapshot *doubles
//!   as the backing file* for any store that keeps series in dataset order
//!   (VA+file, SRS) — [`dataset_flat_region`] validates the container and
//!   returns the payload's byte region.
//! * A **flat series file** (`HYDRFLAT`, [`ensure_flat_series`]) holds
//!   series in an arbitrary caller-chosen order — the leaf-ordered layout
//!   of the tree indexes. It is a derived cache: written (atomically) from
//!   the in-RAM dataset on first use, verified against a content
//!   fingerprint on reuse, and silently rebuilt if damaged.
//!
//! ```text
//! flat series file layout (all little-endian)
//! offset  size  field
//! 0       8     magic  b"HYDRFLAT"
//! 8       4     format version (u32, currently 1)
//! 12      4     reserved (zero)
//! 16      8     series length (u64)
//! 24      8     record count (u64)
//! 32      8     content fingerprint (u64, see [`flat_series_fingerprint`])
//! 40      24    zero padding
//! 64      ...   record count × series length f32 values (bit patterns)
//! ```
//!
//! [`hydra-storage`]: https://docs.rs/hydra-storage

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use hydra_core::Dataset;
use hydra_storage::coded::{CodedHeader, CodedPage, PageCodec, CODED_HEADER_BYTES};
use hydra_storage::StorageConfig;

use crate::error::{PersistError, Result};
use crate::fingerprint::{fingerprint_dataset, Fingerprint};
use crate::snapshot::{fnv1a64_continue, Section, SnapshotReader, SnapshotWriter, FNV_OFFSET_BASIS, MAGIC};
use crate::stream::DataSource;

/// Kind tag of dataset snapshots.
pub const DATASET_KIND: &str = "dataset";

/// Magic bytes identifying a flat series file.
pub const FLAT_MAGIC: [u8; 8] = *b"HYDRFLAT";

/// The single flat-series-file format version this build writes and reads.
pub const FLAT_VERSION: u32 = 1;

/// Byte offset of record 0 inside a flat series file.
pub const FLAT_PAYLOAD_OFFSET: u64 = 64;

/// Where the raw series of a file live: `payload_offset` bytes in, as
/// `records` × `series_len` little-endian `f32` bit patterns. This is the
/// value handed to `hydra_storage::SeriesStore::file_backed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatSpan {
    /// Byte offset of the first value.
    pub payload_offset: u64,
    /// Number of series.
    pub records: usize,
    /// Length of each series.
    pub series_len: usize,
}

/// Writes `dataset` to `path` as a snapshot of kind [`DATASET_KIND`], with
/// the dataset's content fingerprint in the header.
pub fn save_dataset(dataset: &Dataset, path: &Path) -> Result<()> {
    let mut w = SnapshotWriter::new(DATASET_KIND, fingerprint_dataset(dataset));
    let mut s = Section::new();
    s.put_usize(dataset.series_len());
    s.put_usize(dataset.len());
    s.put_f32s(dataset.as_flat());
    w.push(s);
    w.write_to(path)
}

/// Reads a dataset snapshot written by [`save_dataset`].
pub fn load_dataset(path: &Path) -> Result<Dataset> {
    let mut r = SnapshotReader::open(path)?;
    r.expect_kind(DATASET_KIND)?;
    let mut s = r.next_section()?;
    let series_len = s.get_usize()?;
    let n = s.get_usize()?;
    let flat = s.get_f32s()?;
    if series_len == 0 || flat.len() != n * series_len {
        return Err(PersistError::Corrupt(format!(
            "dataset shape mismatch: {n} series of length {series_len} with {} values",
            flat.len()
        )));
    }
    let dataset = Dataset::from_flat(series_len, flat)
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    // The header fingerprint doubles as an end-to-end content check.
    r.expect_fingerprint(fingerprint_dataset(&dataset))?;
    Ok(dataset)
}

/// The byte region of `dataset`'s values inside its snapshot at `path` —
/// the span that lets the snapshot double as a store's backing file.
///
/// The container is fully validated (checksums included) and must hold
/// exactly `dataset`: a snapshot of different content fails with
/// [`PersistError::FingerprintMismatch`], so a store can never be silently
/// backed by the wrong bytes.
pub fn dataset_flat_region(path: &Path, dataset: &Dataset) -> Result<FlatSpan> {
    let mut r = SnapshotReader::open(path)?;
    r.expect_kind(DATASET_KIND)?;
    r.expect_fingerprint(fingerprint_dataset(dataset))?;
    let mut s = r.next_section()?;
    let series_len = s.get_usize()?;
    let n = s.get_usize()?;
    let values = s.get_usize()?; // count prefix of the f32 slice
    if series_len != dataset.series_len() || n != dataset.len() || values != n * series_len {
        return Err(PersistError::Corrupt(
            "dataset snapshot shape disagrees with the dataset".into(),
        ));
    }
    // The fixed container layout (see `snapshot` module docs): header,
    // then section 0's length+checksum, then the three u64s decoded above.
    let header = MAGIC.len() + 4 + 8 + 2 + DATASET_KIND.len() + 4;
    let payload_offset = (header + 16 + 24) as u64;
    // Probe the computed offset against the in-RAM dataset: if the
    // container layout ever drifts from this arithmetic, the mismatch must
    // surface here as a typed error, never as a store preading garbage
    // while every checksum reports success.
    if n > 0 {
        use std::os::unix::fs::FileExt;
        let file = std::fs::File::open(path)?;
        let mut probe = vec![0u8; series_len * 4];
        file.read_exact_at(&mut probe, payload_offset)?;
        let matches = probe
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .eq(dataset.series(0).iter().map(|v| v.to_bits()));
        if !matches {
            return Err(PersistError::Corrupt(
                "dataset snapshot payload is not at the expected offset \
                 (container layout drifted from dataset_flat_region?)"
                    .into(),
            ));
        }
    }
    Ok(FlatSpan {
        payload_offset,
        records: n,
        series_len,
    })
}

/// The flat series file that caches an index snapshot's store-ordered raw
/// series: `<snapshot>.series` next to the snapshot itself.
pub fn sidecar_series_path(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.as_os_str().to_os_string();
    os.push(".series");
    PathBuf::from(os)
}

/// Content fingerprint of a flat series file: shape, then every value's
/// bit pattern in *file* order (`order[pos]` names the dataset series
/// stored at record `pos`; `None` is dataset order). With `None` this
/// equals [`fingerprint_dataset`].
pub fn flat_series_fingerprint(dataset: &Dataset, order: Option<&[usize]>) -> u64 {
    let records = order.map_or(dataset.len(), <[usize]>::len);
    let mut f = Fingerprint::new();
    f.push_usize(dataset.series_len());
    f.push_usize(records);
    match order {
        None => {
            f.push_f32s(dataset.as_flat());
        }
        Some(order) => {
            for &ds in order {
                f.push_f32s(dataset.series(ds));
            }
        }
    }
    f.finish()
}

/// [`flat_series_fingerprint`] over a [`DataSource`]: free for an
/// in-memory dataset or a streamed source in dataset order (the handle
/// already holds it), one bounded-memory pass of per-series reads for a
/// streamed source with a permuted order.
///
/// # Errors
/// [`PersistError::Io`] if a streamed source cannot be read.
pub fn flat_series_fingerprint_from(
    source: DataSource<'_>,
    order: Option<&[usize]>,
) -> Result<u64> {
    match (source, order) {
        (DataSource::InMemory(dataset), _) => Ok(flat_series_fingerprint(dataset, order)),
        (DataSource::Streamed(handle), None) => Ok(handle.fingerprint()),
        (DataSource::Streamed(_), Some(order)) => {
            let fetch = source.series_fetch()?;
            let mut f = Fingerprint::new();
            f.push_usize(source.series_len());
            f.push_usize(order.len());
            let mut series = Vec::new();
            for &ds in order {
                fetch.get(ds, &mut series)?;
                f.push_f32s(&series);
            }
            Ok(f.finish())
        }
    }
}

fn flat_header(series_len: usize, records: usize, fingerprint: u64) -> [u8; FLAT_PAYLOAD_OFFSET as usize] {
    let mut header = [0u8; FLAT_PAYLOAD_OFFSET as usize];
    header[0..8].copy_from_slice(&FLAT_MAGIC);
    header[8..12].copy_from_slice(&FLAT_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&(series_len as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(records as u64).to_le_bytes());
    header[32..40].copy_from_slice(&fingerprint.to_le_bytes());
    header
}

/// Checks whether the flat series file at `path` exists and holds exactly
/// the expected shape, header fingerprint and payload content. Any
/// shortfall — absent file, stale header, damaged payload — reports
/// `Ok(false)` (the caller rewrites); only an unreadable filesystem is an
/// error.
fn flat_series_is_valid(
    path: &Path,
    series_len: usize,
    records: usize,
    fingerprint: u64,
) -> Result<bool> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    let mut header = [0u8; FLAT_PAYLOAD_OFFSET as usize];
    if file.read_exact(&mut header).is_err() {
        return Ok(false);
    }
    if header != flat_header(series_len, records, fingerprint) {
        return Ok(false);
    }
    // Verify the payload really hashes to the header fingerprint, so a
    // flipped bit in a cached sidecar is repaired instead of served.
    let mut f = Fingerprint::new();
    f.push_usize(series_len);
    f.push_usize(records);
    let mut remaining = records * series_len * 4;
    // Bounded chunks: sidecar verification happens during lazy boot, whose
    // whole promise is an O(pool)-memory start — never buffer the payload.
    let mut buf = vec![0u8; crate::stream::STREAM_CHUNK_BYTES.min(remaining.max(4))];
    while remaining > 0 {
        let take = buf.len().min(remaining);
        if file.read_exact(&mut buf[..take]).is_err() {
            return Ok(false);
        }
        for chunk in buf[..take].chunks_exact(4) {
            f.push_f32(f32::from_bits(u32::from_le_bytes(chunk.try_into().unwrap())));
        }
        remaining -= take;
    }
    Ok(f.finish() == fingerprint)
}

/// Ensures the flat series file at `path` holds `dataset`'s series in the
/// given order (`order[pos]` = dataset position of record `pos`; `None` is
/// dataset order), returning the payload span to back a store with.
///
/// The file is a derived cache: if it already exists with the expected
/// header and verified payload it is reused untouched; otherwise it is
/// (re)written from the in-RAM dataset via a temporary file and an atomic
/// rename, so a concurrent boot never observes a half-written payload.
///
/// # Errors
/// [`PersistError::Corrupt`] if `order` references a series outside the
/// dataset; [`PersistError::Io`] on filesystem failures.
pub fn ensure_flat_series(
    path: &Path,
    dataset: &Dataset,
    order: Option<&[usize]>,
) -> Result<FlatSpan> {
    ensure_flat_series_from(path, DataSource::InMemory(dataset), order)
}

/// [`ensure_flat_series`] over a [`DataSource`]: a streamed source is read
/// one series at a time (bounded-memory `pread`s against its validated
/// snapshot), so rebuilding a sidecar during lazy boot never materializes
/// the dataset.
///
/// # Errors
/// Everything [`ensure_flat_series`] reports, plus [`PersistError::Io`] if
/// a streamed source cannot be read.
pub fn ensure_flat_series_from(
    path: &Path,
    source: DataSource<'_>,
    order: Option<&[usize]>,
) -> Result<FlatSpan> {
    if let Some(order) = order {
        if let Some(&bad) = order.iter().find(|&&ds| ds >= source.len()) {
            return Err(PersistError::Corrupt(format!(
                "flat series order references series {bad} of a {}-series dataset",
                source.len()
            )));
        }
    }
    let series_len = source.series_len();
    let records = order.map_or(source.len(), <[usize]>::len);
    let fingerprint = flat_series_fingerprint_from(source, order)?;
    let span = FlatSpan {
        payload_offset: FLAT_PAYLOAD_OFFSET,
        records,
        series_len,
    };
    if flat_series_is_valid(path, series_len, records, fingerprint)? {
        return Ok(span);
    }

    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".tmp.{}", std::process::id()));
        PathBuf::from(os)
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(&flat_header(series_len, records, fingerprint))?;
        let fetch = source.series_fetch()?;
        let mut series = Vec::new();
        for pos in 0..records {
            let ds = order.map_or(pos, |o| o[pos]);
            fetch.get(ds, &mut series)?;
            for &v in &series {
                w.write_all(&v.to_bits().to_le_bytes())?;
            }
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(span)
}

/// The coded-page sidecar derived from the flat backing file at `backing`
/// for a non-f32 codec: `<backing>.<codec>` (e.g. `index.snap.series.u8`).
/// Each codec gets its own sidecar, so switching serving codecs never
/// invalidates another codec's cache.
pub fn coded_sidecar_path(backing: &Path, codec: PageCodec) -> PathBuf {
    let mut os = backing.as_os_str().to_os_string();
    os.push(format!(".{}", codec.name()));
    PathBuf::from(os)
}

/// Checks whether the `HYDRCODE` sidecar at `path` was derived from
/// exactly the expected source payload and page grouping, with an intact
/// coded payload. Any shortfall reports `Ok(false)` (the caller rewrites).
fn coded_series_is_valid(
    path: &Path,
    codec: PageCodec,
    series_len: usize,
    records: usize,
    series_per_page: usize,
    source_fingerprint: u64,
) -> Result<bool> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    let mut header = [0u8; CODED_HEADER_BYTES as usize];
    if file.read_exact(&mut header).is_err() {
        return Ok(false);
    }
    let header = match CodedHeader::decode(&header) {
        Ok(h) => h,
        Err(_) => return Ok(false),
    };
    if header.codec != codec
        || header.series_len != series_len as u64
        || header.records != records as u64
        || header.series_per_page != series_per_page as u64
        || header.source_fingerprint != source_fingerprint
    {
        return Ok(false);
    }
    // Verify the coded payload really hashes to the header fingerprint, so
    // a flipped bit in the cache is repaired instead of served.
    let mut state = FNV_OFFSET_BASIS;
    let mut total = 0u64;
    let mut buf = vec![0u8; 1 << 20];
    loop {
        match file.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                state = fnv1a64_continue(state, &buf[..n]);
                total += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(false),
        }
    }
    let _ = total;
    Ok(state == header.payload_fingerprint)
}

/// Ensures the `HYDRCODE` coded-page sidecar at `path` holds `dataset`'s
/// series (in the given order, `None` = dataset order) quantized under
/// `storage.codec` and grouped exactly as a [`hydra_storage::SeriesStore`]
/// with `storage` groups its raw pages — the file a file-backed store
/// attaches with `SeriesStore::attach_coded_file`.
///
/// Like [`ensure_flat_series`], the sidecar is a derived cache: reused when
/// its header names the same source payload (by fingerprint) and its coded
/// payload verifies, and atomically (re)written from the in-RAM dataset
/// otherwise. The codec never enters *snapshot* fingerprints — it shapes
/// only I/O economics, never answers — so the same snapshot serves any
/// codec.
///
/// # Errors
/// [`PersistError::Corrupt`] on an f32 codec (there is nothing to encode)
/// or an out-of-range `order`; [`PersistError::Io`] on filesystem failures.
pub fn ensure_coded_series(
    path: &Path,
    dataset: &Dataset,
    order: Option<&[usize]>,
    storage: &StorageConfig,
) -> Result<()> {
    ensure_coded_series_from(path, DataSource::InMemory(dataset), order, storage)
}

/// [`ensure_coded_series`] over a [`DataSource`]. A rewrite encodes in two
/// bounded-memory passes — one to fingerprint the coded payload for the
/// header, one to write it — reading the source a page's worth of series
/// at a time, so even a coded-tier rebuild during lazy boot stays O(page)
/// in memory.
///
/// # Errors
/// Everything [`ensure_coded_series`] reports, plus [`PersistError::Io`]
/// if a streamed source cannot be read.
pub fn ensure_coded_series_from(
    path: &Path,
    source: DataSource<'_>,
    order: Option<&[usize]>,
    storage: &StorageConfig,
) -> Result<()> {
    let codec = storage.codec;
    if codec == PageCodec::F32 {
        return Err(PersistError::Corrupt(
            "the f32 codec has no coded sidecar".into(),
        ));
    }
    if let Some(order) = order {
        if let Some(&bad) = order.iter().find(|&&ds| ds >= source.len()) {
            return Err(PersistError::Corrupt(format!(
                "coded series order references series {bad} of a {}-series dataset",
                source.len()
            )));
        }
    }
    let series_len = source.series_len();
    let records = order.map_or(source.len(), <[usize]>::len);
    let series_per_page = (storage.page_bytes as usize / (series_len * 4)).max(1);
    let source_fingerprint = flat_series_fingerprint_from(source, order)?;
    if coded_series_is_valid(
        path,
        codec,
        series_len,
        records,
        series_per_page,
        source_fingerprint,
    )? {
        return Ok(());
    }

    let fetch = source.series_fetch()?;
    let mut series: Vec<f32> = Vec::new();
    let mut scratch: Vec<f32> = Vec::with_capacity(series_per_page * series_len);
    let mut encode_pages = |sink: &mut dyn FnMut(&[u8]) -> Result<()>| -> Result<()> {
        for page_first in (0..records).step_by(series_per_page) {
            scratch.clear();
            for pos in page_first..(page_first + series_per_page).min(records) {
                let ds = order.map_or(pos, |o| o[pos]);
                fetch.get(ds, &mut series)?;
                scratch.extend_from_slice(&series);
            }
            sink(&CodedPage::encode(&scratch, series_len, codec).to_disk_bytes())?;
        }
        Ok(())
    };
    // Pass 1: the header records the coded payload's fingerprint, and the
    // header is written first — fingerprint now, encode again when writing.
    let mut state = FNV_OFFSET_BASIS;
    encode_pages(&mut |page| {
        state = fnv1a64_continue(state, page);
        Ok(())
    })?;
    let header = CodedHeader {
        codec,
        series_len: series_len as u64,
        records: records as u64,
        series_per_page: series_per_page as u64,
        source_fingerprint,
        payload_fingerprint: state,
    }
    .encode();

    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".tmp.{}", std::process::id()));
        PathBuf::from(os)
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(&header)?;
        encode_pages(&mut |page| {
            w.write_all(page)?;
            Ok(())
        })?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydra-dataset-{}-{name}", std::process::id()))
    }

    fn read_record(path: &Path, span: FlatSpan, record: usize) -> Vec<f32> {
        use std::os::unix::fs::FileExt;
        let file = std::fs::File::open(path).unwrap();
        let mut buf = vec![0u8; span.series_len * 4];
        file.read_exact_at(
            &mut buf,
            span.payload_offset + (record * span.series_len * 4) as u64,
        )
        .unwrap();
        buf.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }

    #[test]
    fn dataset_roundtrip_is_bit_exact() {
        let d = Dataset::from_series(
            3,
            &[[1.0f32, -2.5, 3.0], [0.0, f32::MIN_POSITIVE, 9.75]],
        )
        .unwrap();
        let path = temp_path("roundtrip.snap");
        save_dataset(&d, &path).unwrap();
        let got = load_dataset(&path).unwrap();
        assert_eq!(got, d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let path = temp_path("wrong-kind.snap");
        SnapshotWriter::new("not-a-dataset", 0)
            .write_to(&path)
            .unwrap();
        assert!(matches!(
            load_dataset(&path),
            Err(PersistError::KindMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_snapshot_doubles_as_a_backing_file() {
        let d = Dataset::from_series(
            4,
            &[
                [1.0f32, 2.0, 3.0, 4.0],
                [-1.5, 0.0, f32::INFINITY, 8.25],
                [9.0, 10.0, 11.0, 12.0],
            ],
        )
        .unwrap();
        let path = temp_path("region.snap");
        save_dataset(&d, &path).unwrap();
        let span = dataset_flat_region(&path, &d).unwrap();
        assert_eq!(span.records, 3);
        assert_eq!(span.series_len, 4);
        // pread at the advertised offset yields exactly the stored series.
        for r in 0..3 {
            assert_eq!(
                read_record(&path, span, r)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                d.series(r).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "record {r} drifted"
            );
        }
        // A different dataset of the same shape is refused.
        let other = Dataset::from_series(4, &[[0.0f32; 4], [0.0; 4], [0.0; 4]]).unwrap();
        assert!(matches!(
            dataset_flat_region(&path, &other),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_series_file_roundtrips_in_any_order() {
        let d = Dataset::from_series(
            2,
            &[[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]],
        )
        .unwrap();
        let path = temp_path("flat.series");
        std::fs::remove_file(&path).ok();
        let order = [2usize, 0, 1];
        let span = ensure_flat_series(&path, &d, Some(&order)).unwrap();
        assert_eq!(span.payload_offset, FLAT_PAYLOAD_OFFSET);
        assert_eq!(span.records, 3);
        for (pos, &ds) in order.iter().enumerate() {
            assert_eq!(read_record(&path, span, pos), d.series(ds), "record {pos}");
        }
        // Identity order equals the dataset fingerprint.
        assert_eq!(
            flat_series_fingerprint(&d, None),
            fingerprint_dataset(&d)
        );
        // Out-of-range order entries are corrupt, not a panic.
        assert!(matches!(
            ensure_flat_series(&path, &d, Some(&[7])),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_series_cache_is_reused_verified_and_self_healing() {
        let d = Dataset::from_series(2, &[[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        let path = temp_path("flat-heal.series");
        std::fs::remove_file(&path).ok();
        ensure_flat_series(&path, &d, None).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Reuse does not rewrite (mtime-independent check: flip nothing,
        // ensure again, bytes unchanged).
        ensure_flat_series(&path, &d, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), pristine);

        // A flipped payload byte is detected and the file rebuilt.
        let mut damaged = pristine.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x20;
        std::fs::write(&path, &damaged).unwrap();
        let span = ensure_flat_series(&path, &d, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), pristine, "damage repaired");
        assert_eq!(read_record(&path, span, 1), d.series(1));

        // A truncated file is rebuilt too.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        ensure_flat_series(&path, &d, None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), pristine);

        // A *different* expected order invalidates the cache.
        let span = ensure_flat_series(&path, &d, Some(&[1, 0])).unwrap();
        assert_eq!(read_record(&path, span, 0), d.series(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_path_appends_series_suffix() {
        assert_eq!(
            sidecar_series_path(Path::new("/snaps/rand256-isax2.snap")),
            Path::new("/snaps/rand256-isax2.snap.series")
        );
        assert_eq!(
            coded_sidecar_path(Path::new("/snaps/x.snap.series"), PageCodec::U8),
            Path::new("/snaps/x.snap.series.u8")
        );
        assert_eq!(
            coded_sidecar_path(Path::new("/snaps/x.snap.series"), PageCodec::F16),
            Path::new("/snaps/x.snap.series.f16")
        );
    }

    #[test]
    fn coded_sidecar_cache_is_reused_verified_and_self_healing() {
        let d = Dataset::from_series(
            4,
            &[
                [1.0f32, -2.5, 3.0, 0.125],
                [10.0, 20.0, 30.0, 40.0],
                [-7.0, 0.0, 7.0, 14.0],
                [2.0, 4.0, 6.0, 8.0],
                [0.5, 1.5, 2.5, 3.5],
            ],
        )
        .unwrap();
        let storage = StorageConfig {
            page_bytes: 32, // 2 series per page
            buffer_pool_pages: 2,
            codec: PageCodec::U8,
            io: hydra_storage::FileIoMode::Pread,
        };
        let path = temp_path("coded.series.u8");
        std::fs::remove_file(&path).ok();
        ensure_coded_series(&path, &d, None, &storage).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // The header names the layout a store with this config expects.
        let header = CodedHeader::decode(pristine[..64].try_into().unwrap()).unwrap();
        assert_eq!(header.codec, PageCodec::U8);
        assert_eq!(header.series_len, 4);
        assert_eq!(header.records, 5);
        assert_eq!(header.series_per_page, 2);
        assert_eq!(header.source_fingerprint, flat_series_fingerprint(&d, None));

        // Reuse does not rewrite.
        ensure_coded_series(&path, &d, None, &storage).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), pristine);

        // A flipped payload byte is detected and the sidecar rebuilt.
        let mut damaged = pristine.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        ensure_coded_series(&path, &d, None, &storage).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), pristine, "damage repaired");

        // A different series order is a different source fingerprint: the
        // cache is invalidated, not served.
        let order = [4usize, 3, 2, 1, 0];
        ensure_coded_series(&path, &d, Some(&order), &storage).unwrap();
        let reordered = std::fs::read(&path).unwrap();
        assert_ne!(reordered, pristine);

        // Misuse is typed, never a panic or a silent no-op.
        assert!(matches!(
            ensure_coded_series(&path, &d, Some(&[9]), &storage),
            Err(PersistError::Corrupt(_))
        ));
        assert!(matches!(
            ensure_coded_series(
                &path,
                &d,
                None,
                &StorageConfig {
                    codec: PageCodec::F32,
                    ..storage
                }
            ),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
