//! Kind-tag dispatch: load *any* snapshot behind the uniform
//! [`AnnIndex`] interface.
//!
//! [`PersistentIndex::load`] is statically typed — the caller must already
//! know which index a file holds. A serving process does not: it is handed
//! a directory of snapshots and must boot whatever lives there. The
//! [`LoaderRegistry`] closes that gap. Each index kind is registered once,
//! together with the build configuration its snapshots are expected to
//! match; [`LoaderRegistry::load_any`] then reads the kind tag out of a
//! file's (fully validated) header and dispatches to the matching loader.
//!
//! All of the snapshot machinery's loudness carries over unchanged: a
//! damaged file, a wrong build configuration or a wrong dataset still
//! fails with the corresponding typed [`PersistError`], and a snapshot of
//! a kind nobody registered fails with [`PersistError::UnknownKind`] —
//! a server can never silently serve an index it does not understand.

use std::collections::BTreeMap;
use std::path::Path;

use hydra_core::{AnnIndex, Dataset};

use crate::error::{PersistError, Result};
use crate::snapshot::peek_kind;
use crate::stream::DataSource;
use crate::{PersistentIndex, StoreBacking};

/// A type-erased snapshot loader: `(path, source, backing) -> boxed index`.
/// The [`DataSource`] keeps the dispatch lazy-capable — a loader whose
/// index overrides [`PersistentIndex::load_from`] never materializes a
/// streamed dataset.
pub type BoxedLoader = Box<
    dyn for<'a> Fn(&Path, DataSource<'a>, StoreBacking<'a>) -> Result<Box<dyn AnnIndex>>
        + Send
        + Sync,
>;

/// Maps snapshot kind tags to loaders, so callers can restore a directory
/// of heterogeneous snapshots without knowing statically what each file
/// holds (see the module docs).
#[derive(Default)]
pub struct LoaderRegistry {
    loaders: BTreeMap<String, BoxedLoader>,
}

impl std::fmt::Debug for LoaderRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoaderRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl LoaderRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the loader of index type `T` under [`PersistentIndex::KIND`],
    /// capturing the build configuration its snapshots must fingerprint-match.
    ///
    /// Registering the same kind again replaces the previous entry (last
    /// writer wins), so a caller can override one configuration of a
    /// standard registry.
    pub fn register<T>(&mut self, config: T::Config)
    where
        T: AnnIndex + PersistentIndex + 'static,
        T::Config: Send + Sync + 'static,
    {
        self.loaders.insert(
            T::KIND.to_string(),
            Box::new(move |path, source, backing| {
                Ok(Box::new(T::load_from(path, source, &config, backing)?) as Box<dyn AnnIndex>)
            }),
        );
    }

    /// The registered kind tags, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.loaders.keys().map(|k| k.as_str()).collect()
    }

    /// Whether a loader for `kind` is registered.
    pub fn contains(&self, kind: &str) -> bool {
        self.loaders.contains_key(kind)
    }

    /// Reads the kind tag out of the snapshot's header
    /// ([`peek_kind`] — cheap, no section is loaded or checksummed) and
    /// loads the file with the registered loader, re-attaching the raw
    /// series of `dataset`. Full container validation happens exactly
    /// once, inside the dispatched loader.
    ///
    /// # Errors
    /// [`PersistError::UnknownKind`] if no loader was registered for the
    /// file's kind; otherwise whatever the dispatched
    /// [`PersistentIndex::load`] reports (I/O, damage, fingerprint or kind
    /// mismatches).
    pub fn load_any(&self, path: &Path, dataset: &Dataset) -> Result<Box<dyn AnnIndex>> {
        self.load_any_backed(path, dataset, StoreBacking::Resident)
    }

    /// [`LoaderRegistry::load_any`] with an explicit raw-series backing:
    /// [`StoreBacking::FileBacked`] makes every disk-capable index serve
    /// its raw series out-of-core through a real page cache (memory-only
    /// indexes ignore the choice — they hold no series store).
    ///
    /// # Errors
    /// Exactly [`LoaderRegistry::load_any`]'s, plus I/O failures creating
    /// or validating the backing files.
    pub fn load_any_backed(
        &self,
        path: &Path,
        dataset: &Dataset,
        backing: StoreBacking<'_>,
    ) -> Result<Box<dyn AnnIndex>> {
        self.load_any_from(path, DataSource::InMemory(dataset), backing)
    }

    /// [`LoaderRegistry::load_any_backed`] over a [`DataSource`] — the
    /// lazy boot entry point. With a streamed source, a disk-capable index
    /// boots without the dataset ever being materialized; memory-only
    /// indexes load it through [`DataSource::materialized`].
    ///
    /// # Errors
    /// Exactly [`LoaderRegistry::load_any_backed`]'s, plus I/O failures
    /// reading a streamed source.
    pub fn load_any_from(
        &self,
        path: &Path,
        source: DataSource<'_>,
        backing: StoreBacking<'_>,
    ) -> Result<Box<dyn AnnIndex>> {
        let kind = peek_kind(path)?;
        let loader = self.loaders.get(&kind).ok_or_else(|| PersistError::UnknownKind {
            found: kind,
            registered: self.loaders.keys().cloned().collect(),
        })?;
        loader(path, source, backing)
    }

    /// [`LoaderRegistry::load_any_backed`], then replays the ingest
    /// journal beside the snapshot ([`crate::journal_path`]) if one
    /// exists — the incremental-snapshot load path. The journal is fully
    /// validated (header, record checksums, base-fingerprint pin) before
    /// a single batch is applied, so a damaged journal yields its typed
    /// error and **no index**, never a partially replayed one.
    ///
    /// # Errors
    /// Everything [`LoaderRegistry::load_any_backed`] reports, plus the
    /// journal's own typed errors (see [`crate::JournalReader`]).
    pub fn load_any_journaled(
        &self,
        path: &Path,
        dataset: &Dataset,
        backing: StoreBacking<'_>,
    ) -> Result<Box<dyn AnnIndex>> {
        self.load_any_journaled_from(path, DataSource::InMemory(dataset), backing)
    }

    /// [`LoaderRegistry::load_any_journaled`] over a [`DataSource`].
    ///
    /// # Errors
    /// Everything [`LoaderRegistry::load_any_from`] reports, plus the
    /// journal's own typed errors (see [`crate::JournalReader`]).
    pub fn load_any_journaled_from(
        &self,
        path: &Path,
        source: DataSource<'_>,
        backing: StoreBacking<'_>,
    ) -> Result<Box<dyn AnnIndex>> {
        let journal = crate::journal_path(path);
        if !journal.exists() {
            return self.load_any_from(path, source, backing);
        }
        let reader = crate::JournalReader::open(&journal)?;
        let mut index = self.load_any_from(path, source, backing)?;
        reader.replay(index.as_mut(), crate::peek_fingerprint(path)?)?;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotWriter;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hydra-registry-{}-{name}", std::process::id()))
    }

    // The real zoo registers through the facade crate; here a registry is
    // exercised with no loaders at all, which is enough to pin the
    // dispatch-side behavior (`register` itself is compile-checked by the
    // serve/bench layers that depend on concrete index crates).
    #[test]
    fn unknown_kind_is_a_typed_error_listing_the_registered_kinds() {
        let registry = LoaderRegistry::new();
        assert!(registry.kinds().is_empty());
        assert!(!registry.contains("isax2+"));
        let path = temp_path("unknown.snap");
        SnapshotWriter::new("mystery-kind", 7).write_to(&path).unwrap();
        let data = Dataset::from_series(2, &[[0.0f32, 1.0]]).unwrap();
        match registry.load_any(&path, &data) {
            Err(PersistError::UnknownKind { found, registered }) => {
                assert_eq!(found, "mystery-kind");
                assert!(registered.is_empty());
            }
            Err(other) => panic!("expected UnknownKind, got {other:?}"),
            Ok(_) => panic!("an unregistered kind must not load"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_files_fail_before_dispatch() {
        let registry = LoaderRegistry::new();
        let path = temp_path("damaged.snap");
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let data = Dataset::from_series(2, &[[0.0f32, 1.0]]).unwrap();
        assert!(matches!(
            registry.load_any(&path, &data),
            Err(PersistError::BadMagic)
        ));
        assert!(matches!(
            registry.load_any(Path::new("/nonexistent/x.snap"), &data),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
        let dbg = format!("{registry:?}");
        assert!(dbg.contains("LoaderRegistry"));
    }
}
