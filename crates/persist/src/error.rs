//! Typed snapshot errors.
//!
//! Every way a snapshot file can be unusable maps to a distinct variant, so
//! callers (and tests) can tell a stale format from a corrupted disk from an
//! operator error — and none of them ever surfaces as a panic or as silently
//! wrong data.

use std::fmt;

/// Convenience result alias for snapshot operations.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Errors produced while writing or reading snapshot files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The file does not start with the snapshot magic bytes — it is not a
    /// Hydra snapshot at all (or the first page was destroyed).
    BadMagic,
    /// The file was written by a different (usually future) format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// The single version this build can read.
        supported: u32,
    },
    /// The file is a valid snapshot of a *different* kind of index
    /// (e.g. a DSTree snapshot handed to the iSAX loader).
    KindMismatch {
        /// The kind the caller expected.
        expected: String,
        /// The kind recorded in the file.
        found: String,
    },
    /// The build-parameter fingerprint in the file does not match the
    /// configuration (and dataset) the caller is loading against, so the
    /// snapshot describes a differently-built index.
    FingerprintMismatch {
        /// Fingerprint computed from the requested config + dataset.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// The file is a valid snapshot, but no loader for its kind was
    /// registered with the [`crate::LoaderRegistry`] asked to load it.
    UnknownKind {
        /// The kind recorded in the file.
        found: String,
        /// Every kind the registry can load, sorted.
        registered: Vec<String>,
    },
    /// A section's payload does not hash to its recorded checksum: the file
    /// was corrupted after it was written.
    ChecksumMismatch {
        /// Zero-based index of the damaged section.
        section: usize,
    },
    /// The file ends before the data its header promises (truncated write,
    /// partial copy, or a reader asking for more values than a section
    /// holds).
    Truncated,
    /// The bytes decode but describe an impossible structure (bad enum tag,
    /// invalid UTF-8, an id out of range, trailing garbage).
    Corrupt(String),
    /// An operating-system I/O failure while reading or writing the file.
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a Hydra snapshot (bad magic)"),
            PersistError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            PersistError::KindMismatch { expected, found } => {
                write!(f, "snapshot holds a {found:?} index, expected {expected:?}")
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot was built with different parameters or data \
                 (fingerprint {found:#018x}, requested config gives {expected:#018x})"
            ),
            PersistError::UnknownKind { found, registered } => write!(
                f,
                "no loader registered for {found:?} snapshots (registered: {})",
                registered.join(", ")
            ),
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}: the file is corrupted")
            }
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::Corrupt(msg) => write!(f, "snapshot is corrupt: {msg}"),
            PersistError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::VersionMismatch { found: 9, supported: 1 }
            .to_string()
            .contains('9'));
        let e = PersistError::KindMismatch {
            expected: "isax2+".into(),
            found: "dstree".into(),
        };
        assert!(e.to_string().contains("isax2+") && e.to_string().contains("dstree"));
        assert!(PersistError::FingerprintMismatch { expected: 1, found: 2 }
            .to_string()
            .contains("fingerprint"));
        assert!(PersistError::ChecksumMismatch { section: 3 }
            .to_string()
            .contains("section 3"));
        let e = PersistError::UnknownKind {
            found: "mystery".into(),
            registered: vec!["dstree".into(), "hnsw".into()],
        };
        assert!(e.to_string().contains("mystery") && e.to_string().contains("dstree, hnsw"));
        assert!(PersistError::Truncated.to_string().contains("truncated"));
        assert!(PersistError::Corrupt("tag".into()).to_string().contains("tag"));
        assert!(PersistError::Io("disk".into()).to_string().contains("disk"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: PersistError = io.into();
        assert!(matches!(e, PersistError::Io(_)));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PersistError>();
    }
}
