//! The series store: resident (simulated-disk) or genuinely file-backed.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hydra_core::{Dataset, Error, QueryStats, Result, StoreCounters};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, Frame};
use crate::coded::{
    coded_series_bytes, conservative_threshold, page_disk_bytes, CodedHeader, CodedPage,
    PageCodec, PageCodes, CODED_HEADER_BYTES,
};

/// How a file-backed store moves page bytes off disk. Like the pool
/// capacity and the page codec, the I/O mode shapes only how transfers
/// happen, never answers — both modes feed the identical frame bytes
/// through the identical pool/accounting path, so hit/miss/eviction
/// sequences and every [`QueryStats`] field are the same under either.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FileIoMode {
    /// Positional reads ([`std::os::unix::fs::FileExt::read_exact_at`]) —
    /// one syscall per pool miss.
    #[default]
    Pread,
    /// The backing span is mapped read-only once ([`mmap(2)`]); a pool miss
    /// copies the frame out of the mapping instead of issuing a syscall.
    /// Frames are still *copied* (the payload offset is not f32-aligned,
    /// and the pool must own its bytes for eviction to mean anything), so
    /// accounting stays a measurement of the same transfers.
    ///
    /// [`mmap(2)`]: https://man7.org/linux/man-pages/man2/mmap.2.html
    Mmap,
}

impl FileIoMode {
    /// The mode's CLI name (`--backing pread|mmap`).
    pub fn name(self) -> &'static str {
        match self {
            FileIoMode::Pread => "pread",
            FileIoMode::Mmap => "mmap",
        }
    }

    /// Parses a CLI name; `None` for anything but `pread`/`mmap`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pread" => Some(FileIoMode::Pread),
            "mmap" => Some(FileIoMode::Mmap),
            _ => None,
        }
    }
}

/// Configuration of the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Size of one disk page in bytes.
    pub page_bytes: usize,
    /// Capacity of the buffer pool in pages. Use a large value (or
    /// [`StorageConfig::in_memory`]) to model a dataset that fits in RAM.
    pub buffer_pool_pages: usize,
    /// How sealed pages are encoded — the compressed page tier. Like the
    /// pool capacity, the codec shapes only I/O economics, never answers
    /// (the refinement contract recomputes every returned distance from
    /// exact f32 values), so it is a pure serving knob.
    pub codec: PageCodec,
    /// How a file-backed store transfers page bytes (`pread` or `mmap`).
    /// Ignored by resident stores; a pure serving knob like the others.
    pub io: FileIoMode,
}

impl StorageConfig {
    /// The default on-disk configuration: 64 KiB pages and a pool of 128
    /// pages (8 MiB), small relative to the datasets used in experiments.
    pub fn on_disk() -> Self {
        Self {
            page_bytes: 64 * 1024,
            buffer_pool_pages: 128,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        }
    }

    /// A configuration whose pool always holds the entire dataset, so only
    /// cold (first-touch) reads are charged — the in-memory scenario.
    pub fn in_memory() -> Self {
        Self {
            page_bytes: 64 * 1024,
            buffer_pool_pages: usize::MAX / 2,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        }
    }

    /// This configuration with the buffer pool capacity replaced — the
    /// `--pool-pages N` serving knob. Pool capacity shapes only I/O
    /// economics, never answers, so it may differ freely between the
    /// process that built an index and the one that serves it.
    pub fn with_pool_pages(self, pages: usize) -> Self {
        Self {
            buffer_pool_pages: pages,
            ..self
        }
    }

    /// This configuration with the page codec replaced — the
    /// `--page-codec` serving knob. Like the pool capacity, a codec may
    /// differ freely between the process that built an index and the one
    /// that serves it: answers are bit-identical by the refinement
    /// contract.
    pub fn with_page_codec(self, codec: PageCodec) -> Self {
        Self { codec, ..self }
    }

    /// This configuration with the file I/O mode replaced — the
    /// `--backing pread|mmap` serving knob. Answers and accounting are
    /// identical under either mode (see [`FileIoMode`]).
    pub fn with_io_mode(self, io: FileIoMode) -> Self {
        Self { io, ..self }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self::on_disk()
    }
}

/// Cumulative I/O counters of a store since creation (or the last reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages read that required a seek (non-adjacent to the previous read).
    pub random_ios: u64,
    /// Pages read contiguously after the previous one.
    pub sequential_ios: u64,
    /// Total bytes charged to reads. On a resident store this is the
    /// simulated `page_bytes` per miss; on a file-backed store it is the
    /// bytes actually transferred from the backing file (whole frames,
    /// truncated at the tail), so the two backings legitimately differ
    /// here — this is the counter that became a *measurement*.
    pub bytes_read: u64,
    /// Buffer-pool hits (no I/O charged).
    pub pool_hits: u64,
    /// Buffer-pool misses (each one charged as a random or sequential I/O).
    pub pool_misses: u64,
    /// Pages evicted from the pool to make room — real eviction traffic on
    /// a file-backed store (the dropped bytes must be re-read), bookkeeping
    /// on a resident one.
    pub pool_evictions: u64,
    /// The subset of [`IoSnapshot::bytes_read`] served from compressed
    /// (u8/f16) pages. Zero on raw-f32 stores; the remainder is exact-f32
    /// refinement traffic.
    pub compressed_bytes_read: u64,
}

#[derive(Debug)]
struct AccessState {
    pool: BufferPool,
    last_page: Option<u64>,
    totals: IoSnapshot,
}

impl AccessState {
    /// Records the outcome of one page access — the single accounting path
    /// shared by both backings, so a file-backed store charges exactly the
    /// hit/miss/random/sequential sequence the simulated store would.
    fn charge(&mut self, page: u64, hit: bool, miss_bytes: u64, stats: &mut QueryStats) {
        if hit {
            self.totals.pool_hits += 1;
        } else {
            self.totals.pool_misses += 1;
            let sequential =
                self.last_page == Some(page.wrapping_sub(1)) || self.last_page == Some(page);
            if sequential {
                self.totals.sequential_ios += 1;
                stats.sequential_ios += 1;
            } else {
                self.totals.random_ios += 1;
                stats.random_ios += 1;
            }
            self.totals.bytes_read += miss_bytes;
        }
        self.last_page = Some(page);
    }
}

/// Where a record's byte range lives inside a backing file: the series
/// payload starts `offset` bytes into the file and holds `records`
/// fixed-length series, contiguous and little-endian (IEEE-754 bit
/// patterns) — the layout `hydra-persist`'s flat series files and dataset
/// snapshots both expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpan {
    /// Byte offset of record 0 within the file.
    pub offset: u64,
    /// Number of series in the span.
    pub records: usize,
}

/// A read-only `mmap(2)` of the head of a backing file, torn down on drop.
///
/// Only bytes `0..len` are ever dereferenced, and `len` is validated
/// against the file's length *before* mapping — so the mapping can never
/// fault (SIGBUS) on a short file; a file that is short fails the attach
/// with a typed error instead. The payload offset inside the mapping is
/// byte-granular (snapshot payloads are not f32-aligned), which is why
/// frames are memcpy'd out of the mapping rather than reinterpreted in
/// place.
struct MmapRegion {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// The mapping is immutable for its whole lifetime (PROT_READ over a
// read-only file), so shared references from any thread are sound.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion").field("len", &self.len).finish()
    }
}

// The platform mmap entry points. The workspace vendors no libc crate, but
// every std binary on a unix target already links these symbols; the repo
// is unix-only throughout (`std::os::unix::fs::FileExt` on every pread).
extern "C" {
    fn mmap(
        addr: *mut std::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut std::ffi::c_void;
    fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
}

const PROT_READ: i32 = 1;
const MAP_SHARED: i32 = 1;

impl MmapRegion {
    /// Maps the first `len` bytes of `file` read-only. The caller must
    /// have verified the file is at least `len` bytes long.
    fn map(file: &std::fs::File, len: usize, path: &Path) -> Result<Self> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "mapping an empty span is a caller bug");
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(Error::Storage(format!(
                "cannot mmap {} ({len} bytes): {}",
                path.display(),
                std::io::Error::last_os_error()
            )));
        }
        Ok(Self {
            ptr: std::ptr::NonNull::new(ptr.cast::<u8>())
                .ok_or_else(|| Error::Storage(format!("mmap of {} returned null", path.display())))?,
            len,
        })
    }

    /// The mapped bytes.
    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

#[derive(Debug)]
struct FileBacked {
    file: std::fs::File,
    path: PathBuf,
    span: FileSpan,
    /// Under [`FileIoMode::Mmap`], the validated head of the file
    /// (`0..span.offset + payload`) mapped read-only; misses copy frames
    /// from here instead of issuing a `pread`. `None` under
    /// [`FileIoMode::Pread`] or for an empty span.
    map: Option<MmapRegion>,
    /// Series appended *after* the store was attached (streaming ingest).
    /// The backing file stays immutable; the tail is the resident overflow
    /// holding records `span.records..`, flat in append order. Page frames
    /// that straddle the file/tail boundary are assembled from both.
    tail: Vec<f32>,
}

impl FileBacked {
    /// Copies the `len` payload bytes at file offset `offset` into `buf` —
    /// through the mapping when one exists, via `pread` otherwise. The one
    /// place the two I/O modes differ.
    fn read_payload(&self, buf: &mut [u8], offset: u64, context: &dyn std::fmt::Display) {
        match &self.map {
            Some(map) => {
                let lo = offset as usize;
                buf.copy_from_slice(&map.bytes()[lo..lo + buf.len()]);
            }
            None => {
                use std::os::unix::fs::FileExt;
                self.file.read_exact_at(buf, offset).unwrap_or_else(|e| {
                    panic!(
                        "file-backed series store: reading {context} of {} failed: {e}",
                        self.path.display()
                    )
                });
            }
        }
    }
}

#[derive(Debug)]
enum Backing {
    /// Every value resident in one flat vector; paged I/O is simulated.
    Resident(Vec<f32>),
    /// Values live in a file; the buffer pool caches real page bytes.
    File(FileBacked),
}

/// The compressed page tier of a store (codec ≠ f32): where the encoded
/// pages of the *sealed* region (records `0..sealed`) live. Records at or
/// beyond `sealed` — streaming-ingest tail growth — always go through the
/// raw path.
#[derive(Debug)]
enum CodedTier {
    /// No coded tier: every access is raw (the f32 codec, or a store that
    /// was never sealed — fresh builds run raw even under a coded config).
    None,
    /// Encoded pages held in RAM, mirroring the resident raw payload; the
    /// pool tracks page ids and the byte charges *simulate* the coded
    /// transfers, exactly as the resident raw path simulates raw ones.
    Resident { pages: Vec<Arc<CodedPage>>, sealed: usize },
    /// Encoded pages live in a `HYDRCODE` sidecar file; a pool miss is a
    /// genuine `pread` of the coded record, so the compressed byte counts
    /// are real transfers.
    File {
        file: std::fs::File,
        path: PathBuf,
        sealed: usize,
    },
}

impl CodedTier {
    fn sealed(&self) -> usize {
        match self {
            CodedTier::None => 0,
            CodedTier::Resident { sealed, .. } | CodedTier::File { sealed, .. } => *sealed,
        }
    }
}

/// A guard over one series read from a [`SeriesStore`], dereferencing to
/// `&[f32]`.
///
/// On a resident store this borrows the store's flat vector (zero-copy,
/// exactly the old behaviour); on a file-backed store it keeps the cached
/// page frame alive for as long as the caller looks at the series, so an
/// eviction on another thread can never invalidate the view.
#[derive(Debug)]
pub struct SeriesRead<'a>(ReadRepr<'a>);

#[derive(Debug)]
enum ReadRepr<'a> {
    Resident(&'a [f32]),
    Cached {
        frame: Arc<[f32]>,
        start: usize,
        len: usize,
    },
}

impl std::ops::Deref for SeriesRead<'_> {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        match &self.0 {
            ReadRepr::Resident(slice) => slice,
            ReadRepr::Cached { frame, start, len } => &frame[*start..*start + *len],
        }
    }
}

impl AsRef<[f32]> for SeriesRead<'_> {
    fn as_ref(&self) -> &[f32] {
        self
    }
}

/// A flat, append-only store of fixed-length series with paged access.
///
/// Record ids are assigned in append order; indexes lay out their leaves by
/// appending leaf contents contiguously, so a leaf scan is a sequential read
/// and a jump between leaves is a random read — matching the layout of the
/// original on-disk implementations.
///
/// ## Backings
///
/// * [`SeriesStore::new`] / [`SeriesStore::from_dataset`] create a
///   **resident** store: all values in RAM, the buffer pool tracks page ids
///   only, and the I/O counters are a *simulation* of what a disk would
///   have done.
/// * [`SeriesStore::file_backed`] attaches a **file-backed** store: reads
///   go through the same buffer pool, but a miss is a genuine
///   page-granular `pread` ([`std::os::unix::fs::FileExt::read_exact_at`])
///   and an eviction genuinely drops bytes. The hit/miss/random/sequential
///   accounting is shared with the resident path, so for the same access
///   sequence and [`StorageConfig`] the two backings report identical
///   [`QueryStats`] — only [`IoSnapshot::bytes_read`] differs, because on
///   a file it measures real transfers.
///
/// Pages hold a whole number of series (`page_bytes / series_bytes`,
/// minimum one), so a record never straddles a page; a series larger than
/// `page_bytes` makes each page one series.
#[derive(Debug)]
pub struct SeriesStore {
    series_len: usize,
    config: StorageConfig,
    backing: Backing,
    coded: CodedTier,
    state: Mutex<AccessState>,
}

impl SeriesStore {
    fn validated(series_len: usize, config: StorageConfig, backing: Backing) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidParameter(
                "series length must be positive".into(),
            ));
        }
        if config.page_bytes < std::mem::size_of::<f32>() {
            return Err(Error::InvalidParameter(
                "page size must hold at least one value".into(),
            ));
        }
        Ok(Self {
            series_len,
            config,
            backing,
            coded: CodedTier::None,
            state: Mutex::new(AccessState {
                pool: BufferPool::new(config.buffer_pool_pages),
                last_page: None,
                totals: IoSnapshot::default(),
            }),
        })
    }

    /// Creates an empty resident store for series of length `series_len`.
    pub fn new(series_len: usize, config: StorageConfig) -> Result<Self> {
        Self::validated(series_len, config, Backing::Resident(Vec::new()))
    }

    /// Creates a resident store populated with the contents of a dataset,
    /// preserving record ids = dataset positions.
    pub fn from_dataset(dataset: &Dataset, config: StorageConfig) -> Result<Self> {
        let mut store = Self::new(dataset.series_len(), config)?;
        match &mut store.backing {
            Backing::Resident(data) => data.extend_from_slice(dataset.as_flat()),
            Backing::File(_) => unreachable!("new() builds resident stores"),
        }
        Ok(store)
    }

    /// Attaches a store to the series payload at `span` inside the file at
    /// `path` — the out-of-core backing. The file is opened read-only and
    /// must stay immutable while the store lives; every cold read is a real
    /// page-granular `pread`.
    ///
    /// # Errors
    /// [`Error::Storage`] if the file cannot be opened or is shorter than
    /// the span promises; [`Error::InvalidParameter`] for a zero series
    /// length or a degenerate page size.
    pub fn file_backed(
        path: &Path,
        span: FileSpan,
        series_len: usize,
        config: StorageConfig,
    ) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| Error::Storage(format!("cannot open {}: {e}", path.display())))?;
        let mut store = Self::validated(
            series_len,
            config,
            Backing::File(FileBacked {
                file,
                path: path.to_path_buf(),
                span,
                map: None,
                tail: Vec::new(),
            }),
        )?;
        let needed = (span.records as u64)
            .checked_mul(store.series_bytes())
            .and_then(|payload| span.offset.checked_add(payload))
            .ok_or_else(|| Error::Storage("file span overflows".into()))?;
        let actual = match &store.backing {
            Backing::File(fb) => fb
                .file
                .metadata()
                .map_err(|e| Error::Storage(format!("cannot stat {}: {e}", path.display())))?
                .len(),
            Backing::Resident(_) => unreachable!(),
        };
        if actual < needed {
            return Err(Error::Storage(format!(
                "{} holds {actual} bytes but the span needs {needed}",
                path.display()
            )));
        }
        // Only after the span has been validated against the real file
        // length is the mapping created — a short file fails above with a
        // typed error, so dereferencing `0..needed` can never SIGBUS.
        if config.io == FileIoMode::Mmap && needed > 0 {
            match &mut store.backing {
                Backing::File(fb) => fb.map = Some(MmapRegion::map(&fb.file, needed as usize, path)?),
                Backing::Resident(_) => unreachable!(),
            }
        }
        Ok(store)
    }

    /// Whether this store reads from a backing file (vs. resident RAM).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backing, Backing::File(_))
    }

    /// Appends one series, returning its record id.
    ///
    /// Both backings grow. A resident store extends its flat vector. A
    /// file-backed store keeps its backing file immutable and accumulates
    /// new records in a resident *tail* (records `span.records..`); the
    /// page frame the new record lands on is invalidated in the buffer
    /// pool, so readers never see a stale cached frame — growth keeps the
    /// pool coherent.
    ///
    /// # Errors
    /// [`Error::DimensionMismatch`] for a wrong series length.
    pub fn append(&mut self, series: &[f32]) -> Result<usize> {
        if series.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: series.len(),
            });
        }
        let id = self.len();
        let page = self.page_of(id);
        match &mut self.backing {
            Backing::Resident(data) => data.extend_from_slice(series),
            Backing::File(fb) => {
                fb.tail.extend_from_slice(series);
                // The page now holding `id` may be cached from before the
                // append (shorter, or missing the record entirely); drop it
                // so the next access reloads the assembled frame.
                self.state.lock().pool.remove(page);
            }
        }
        Ok(id)
    }

    /// Number of series stored.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Resident(data) => data.len() / self.series_len,
            Backing::File(fb) => fb.span.records + fb.tail.len() / self.series_len,
        }
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of each stored series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Total size of the stored raw payload in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.len() as u64 * self.series_bytes()
    }

    /// The storage configuration in use.
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// The raw flat payload in record order, bypassing the I/O accounting
    /// entirely (no pool warm-up, no counters). This is a maintenance hatch
    /// for resident stores only — fingerprinting and snapshotting must not
    /// perturb the I/O economics the store exists to measure — and must
    /// never be used on a query path.
    ///
    /// # Errors
    /// [`Error::Storage`] on a file-backed store: there is no resident
    /// slice to hand out, and silently materializing one would defeat the
    /// out-of-core contract. Callers that need content identity use the
    /// fingerprint captured when the store was built or attached.
    pub fn as_flat(&self) -> Result<&[f32]> {
        match &self.backing {
            Backing::Resident(data) => Ok(data),
            Backing::File(fb) => Err(Error::Storage(format!(
                "as_flat is resident-only: the payload of this store lives in {}",
                fb.path.display()
            ))),
        }
    }

    /// Bytes occupied by one series.
    fn series_bytes(&self) -> u64 {
        (self.series_len * std::mem::size_of::<f32>()) as u64
    }

    fn series_per_page(&self) -> u64 {
        (self.config.page_bytes as u64 / self.series_bytes()).max(1)
    }

    fn page_of(&self, record: usize) -> u64 {
        record as u64 / self.series_per_page()
    }

    /// Reads the whole frame of `page`: file bytes for records inside the
    /// immutable span, resident tail values for records appended after the
    /// store was attached (a frame freely straddles the boundary).
    ///
    /// # Panics
    /// Panics if the read fails: the span was validated when the store was
    /// attached, so a failure here is a genuine I/O fault (or the file was
    /// mutated behind the store's back), not a recoverable query error.
    fn load_frame(&self, fb: &FileBacked, page: u64) -> Arc<[f32]> {
        let spp = self.series_per_page();
        let first = page * spp;
        let total = (fb.span.records + fb.tail.len() / self.series_len) as u64;
        let count = spp.min(total - first) as usize;
        let from_file = (fb.span.records as u64).saturating_sub(first).min(count as u64) as usize;
        let mut values: Vec<f32> = Vec::with_capacity(count * self.series_len);
        if from_file > 0 {
            let bytes = from_file * self.series_bytes() as usize;
            let mut buf = vec![0u8; bytes];
            fb.read_payload(
                &mut buf,
                fb.span.offset + first * self.series_bytes(),
                &format_args!("page {page}"),
            );
            values.extend(
                buf.chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap()))),
            );
        }
        if from_file < count {
            let lo = (first as usize + from_file - fb.span.records) * self.series_len;
            let hi = (first as usize + count - fb.span.records) * self.series_len;
            values.extend_from_slice(&fb.tail[lo..hi]);
        }
        Arc::from(values)
    }

    /// Returns the (cached or freshly read) frame of `page`, charging the
    /// access. The pool lock is held across the `pread`, so concurrent
    /// readers of one page pay a single disk read — and the hit/miss
    /// sequence stays identical to the resident simulation.
    fn fetch_frame(&self, fb: &FileBacked, page: u64, stats: &mut QueryStats) -> Arc<[f32]> {
        let mut state = self.state.lock();
        if let Some(frame) = state.pool.fetch(page) {
            if let Some(raw) = frame.as_raw() {
                state.charge(page, true, 0, stats);
                return raw;
            }
            // The slot holds this page's *coded* representation (possible
            // only for the one page straddling the seal boundary, when raw
            // tail reads and coded scans interleave). A raw read cannot be
            // served from codes, so invalidate and fault the raw bytes in.
            state.pool.remove(page);
        }
        let frame = self.load_frame(fb, page);
        state.charge(page, false, (frame.len() * std::mem::size_of::<f32>()) as u64, stats);
        state.pool.install(page, Frame::Raw(Arc::clone(&frame)));
        frame
    }

    /// Reads one series, charging I/O to both the per-query `stats` and the
    /// store-wide totals.
    ///
    /// # Panics
    /// Panics if `record` is out of bounds, or (file-backed only) on a
    /// genuine disk fault: the span was validated when the store was
    /// attached, so a failing `pread` means real I/O trouble, not a
    /// recoverable query error.
    pub fn read(&self, record: usize, stats: &mut QueryStats) -> SeriesRead<'_> {
        assert!(record < self.len(), "record {record} out of bounds");
        let page = self.page_of(record);
        stats.bytes_read += self.series_bytes();
        match &self.backing {
            Backing::Resident(data) => {
                self.charge_resident_pages(page, page, stats);
                let start = record * self.series_len;
                SeriesRead(ReadRepr::Resident(&data[start..start + self.series_len]))
            }
            Backing::File(fb) => {
                let frame = self.fetch_frame(fb, page, stats);
                let first = (page * self.series_per_page()) as usize;
                SeriesRead(ReadRepr::Cached {
                    frame,
                    start: (record - first) * self.series_len,
                    len: self.series_len,
                })
            }
        }
    }

    /// Reads `count` consecutive series starting at `start`, invoking
    /// `visit(record_id, series)` for each. The contiguous range is charged
    /// as one random positioning followed by sequential page reads; a range
    /// freely straddles page boundaries (each page is fetched once).
    pub fn read_range(
        &self,
        start: usize,
        count: usize,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    ) {
        if count == 0 {
            return;
        }
        let end = (start + count).min(self.len());
        assert!(start < self.len(), "start {start} out of bounds");
        stats.bytes_read += self.series_bytes() * (end - start) as u64;
        let (first_page, last_page) = (self.page_of(start), self.page_of(end - 1));
        match &self.backing {
            Backing::Resident(data) => {
                self.charge_resident_pages(first_page, last_page, stats);
                for record in start..end {
                    let off = record * self.series_len;
                    visit(record, &data[off..off + self.series_len]);
                }
            }
            Backing::File(fb) => {
                let spp = self.series_per_page() as usize;
                for page in first_page..=last_page {
                    let frame = self.fetch_frame(fb, page, stats);
                    let page_first = page as usize * spp;
                    let lo = start.max(page_first);
                    let hi = end.min(page_first + frame.len() / self.series_len);
                    for record in lo..hi {
                        let off = (record - page_first) * self.series_len;
                        visit(record, &frame[off..off + self.series_len]);
                    }
                }
            }
        }
    }

    /// Reads one series into `out` without touching the buffer pool or any
    /// I/O counter — a maintenance hatch like [`SeriesStore::as_flat`], but
    /// available on both backings. Streaming ingest uses it for the
    /// maintenance reads growth requires (recomputing summaries, splitting
    /// tree leaves, re-fingerprinting at save time): those must not perturb
    /// the I/O economics the store exists to measure, and must never be
    /// used on a query path.
    ///
    /// # Panics
    /// Panics if `record` is out of bounds, or on a genuine disk fault.
    pub fn read_uncharged(&self, record: usize, out: &mut Vec<f32>) {
        assert!(record < self.len(), "record {record} out of bounds");
        out.clear();
        match &self.backing {
            Backing::Resident(data) => {
                let start = record * self.series_len;
                out.extend_from_slice(&data[start..start + self.series_len]);
            }
            Backing::File(fb) => {
                if record < fb.span.records {
                    let mut buf = vec![0u8; self.series_bytes() as usize];
                    fb.read_payload(
                        &mut buf,
                        fb.span.offset + record as u64 * self.series_bytes(),
                        &format_args!("record {record}"),
                    );
                    out.extend(
                        buf.chunks_exact(4)
                            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap()))),
                    );
                } else {
                    let start = (record - fb.span.records) * self.series_len;
                    out.extend_from_slice(&fb.tail[start..start + self.series_len]);
                }
            }
        }
    }

    /// Visits every stored series in record order without touching the
    /// buffer pool or any I/O counter — the scan-shaped companion of
    /// [`SeriesStore::read_uncharged`], used by save-time fingerprinting
    /// and ingest-time retraining. Never use it on a query path.
    pub fn for_each_series(&self, visit: &mut dyn FnMut(usize, &[f32])) {
        match &self.backing {
            Backing::Resident(data) => {
                for (record, series) in data.chunks_exact(self.series_len).enumerate() {
                    visit(record, series);
                }
            }
            Backing::File(fb) => {
                let spp = self.series_per_page() as usize;
                let len = self.len();
                let mut record = 0usize;
                for page in 0..self.len().div_ceil(spp) {
                    let frame = self.load_frame(fb, page as u64);
                    for series in frame.chunks_exact(self.series_len) {
                        visit(record, series);
                        record += 1;
                    }
                }
                debug_assert_eq!(record, len);
            }
        }
    }

    /// Charges simulated page accesses for the inclusive page range
    /// `[first, last]` (resident backing).
    fn charge_resident_pages(&self, first: u64, last: u64, stats: &mut QueryStats) {
        let mut state = self.state.lock();
        for page in first..=last {
            let hit = state.pool.access(page);
            state.charge(page, hit, self.config.page_bytes as u64, stats);
        }
    }

    // ------------------------------------------------------------------
    // The compressed page tier (codec != f32)
    // ------------------------------------------------------------------

    /// Number of records covered by the coded tier (0 when there is
    /// none). Records `0..sealed` are scanned through compressed pages by
    /// [`SeriesStore::refine`] / [`SeriesStore::scan_refine`]; records at
    /// or beyond it (streaming-ingest tail growth) always go raw.
    pub fn sealed(&self) -> usize {
        self.coded.sealed()
    }

    /// Encodes the current contents of a **resident** store into the
    /// compressed page tier, sealing records `0..len()`. A no-op for the
    /// f32 codec. The attach helpers in `hydra-persist` call this after
    /// populating a resident store; fresh builds never seal, so build-time
    /// I/O stays raw.
    ///
    /// # Panics
    /// Panics on a file-backed store — those attach a `HYDRCODE` sidecar
    /// with [`SeriesStore::attach_coded_file`] instead, so the compressed
    /// byte counts stay real transfers.
    pub fn seal_coded(&mut self) {
        if self.config.codec == PageCodec::F32 {
            return;
        }
        let data = match &self.backing {
            Backing::Resident(data) => data,
            Backing::File(_) => {
                panic!("file-backed stores attach a HYDRCODE sidecar instead of sealing in RAM")
            }
        };
        let spp = self.series_per_page() as usize;
        let len = data.len() / self.series_len;
        let mut pages = Vec::with_capacity(len.div_ceil(spp));
        for page in 0..len.div_ceil(spp) {
            let lo = page * spp * self.series_len;
            let hi = ((page + 1) * spp).min(len) * self.series_len;
            pages.push(Arc::new(CodedPage::encode(
                &data[lo..hi],
                self.series_len,
                self.config.codec,
            )));
        }
        self.coded = CodedTier::Resident { pages, sealed: len };
    }

    /// Attaches the `HYDRCODE` sidecar at `path` as the compressed page
    /// tier of a **file-backed** store, sealing the span records. The
    /// sidecar's header must agree with this store's codec, series length,
    /// span size and page grouping (it was written for exactly this
    /// layout; `hydra-persist` rebuilds it otherwise).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on a resident store or under the f32
    /// codec; [`Error::Storage`] if the sidecar cannot be opened, has a
    /// foreign header, or is shorter than its page records require.
    pub fn attach_coded_file(&mut self, path: &Path) -> Result<()> {
        if self.config.codec == PageCodec::F32 {
            return Err(Error::InvalidParameter(
                "the f32 codec has no coded tier to attach".into(),
            ));
        }
        let span_records = match &self.backing {
            Backing::File(fb) => fb.span.records,
            Backing::Resident(_) => {
                return Err(Error::InvalidParameter(
                    "resident stores seal their coded tier in RAM".into(),
                ))
            }
        };
        use std::os::unix::fs::FileExt;
        let file = std::fs::File::open(path)
            .map_err(|e| Error::Storage(format!("cannot open {}: {e}", path.display())))?;
        let mut header = [0u8; CODED_HEADER_BYTES as usize];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| Error::Storage(format!("cannot read {}: {e}", path.display())))?;
        let header = CodedHeader::decode(&header)?;
        let spp = self.series_per_page();
        if header.codec != self.config.codec
            || header.series_len != self.series_len as u64
            || header.records != span_records as u64
            || header.series_per_page != spp
        {
            return Err(Error::Storage(format!(
                "{} was coded for a different layout (codec {}, len {}, {} records, {} series/page)",
                path.display(),
                header.codec.name(),
                header.series_len,
                header.records,
                header.series_per_page,
            )));
        }
        let full_pages = (span_records as u64) / spp;
        let tail_records = span_records as u64 - full_pages * spp;
        let needed = CODED_HEADER_BYTES
            + full_pages * page_disk_bytes(spp as usize, self.series_len, self.config.codec)
            + if tail_records > 0 {
                page_disk_bytes(tail_records as usize, self.series_len, self.config.codec)
            } else {
                0
            };
        let actual = file
            .metadata()
            .map_err(|e| Error::Storage(format!("cannot stat {}: {e}", path.display())))?
            .len();
        if actual < needed {
            return Err(Error::Storage(format!(
                "{} holds {actual} bytes but its pages need {needed}",
                path.display()
            )));
        }
        self.coded = CodedTier::File {
            file,
            path: path.to_path_buf(),
            sealed: span_records,
        };
        Ok(())
    }

    /// Logical bytes one coded series charges to a query.
    fn coded_record_bytes(&self) -> u64 {
        coded_series_bytes(self.series_len, self.config.codec)
    }

    /// Returns the coded page `page` of the sealed region, charging the
    /// page access (hit, or miss with the coded record's real byte size —
    /// also counted into `compressed_bytes_read`).
    fn fetch_coded_page(&self, page: u64, stats: &mut QueryStats) -> Arc<CodedPage> {
        match &self.coded {
            CodedTier::None => unreachable!("coded access without a coded tier"),
            CodedTier::Resident { pages, .. } => {
                let frame = Arc::clone(&pages[page as usize]);
                let miss_bytes =
                    page_disk_bytes(frame.count(), self.series_len, self.config.codec);
                let mut state = self.state.lock();
                let hit = state.pool.access(page);
                state.charge(page, hit, miss_bytes, stats);
                if !hit {
                    state.totals.compressed_bytes_read += miss_bytes;
                }
                frame
            }
            CodedTier::File { file, path, sealed } => {
                let mut state = self.state.lock();
                if let Some(frame) = state.pool.fetch(page) {
                    if let Some(coded) = frame.as_coded() {
                        state.charge(page, true, 0, stats);
                        return coded;
                    }
                    // Mirror image of the raw path: the seal-boundary page
                    // may be cached raw by a tail read; refetch its codes.
                    state.pool.remove(page);
                }
                use std::os::unix::fs::FileExt;
                let spp = self.series_per_page();
                let first = page * spp;
                let count = spp.min(*sealed as u64 - first) as usize;
                let stride = page_disk_bytes(spp as usize, self.series_len, self.config.codec);
                let bytes = page_disk_bytes(count, self.series_len, self.config.codec);
                let mut buf = vec![0u8; bytes as usize];
                file.read_exact_at(&mut buf, CODED_HEADER_BYTES + page * stride)
                    .unwrap_or_else(|e| {
                        panic!(
                            "coded series store: reading page {page} of {} failed: {e}",
                            path.display()
                        )
                    });
                let frame = Arc::new(
                    CodedPage::from_disk_bytes(&buf, count, self.series_len, self.config.codec)
                        .unwrap_or_else(|e| {
                            panic!("coded page {page} of {} is corrupt: {e}", path.display())
                        }),
                );
                state.charge(page, false, bytes, stats);
                state.totals.compressed_bytes_read += bytes;
                state.pool.install(page, Frame::Coded(Arc::clone(&frame)));
                frame
            }
        }
    }

    /// Charges the exact-f32 read that refines one surviving candidate: a
    /// targeted random read of one raw series, bypassing the page pool
    /// (it does not disturb the coded scan's sequentiality detection).
    fn charge_exact_refinement(&self, stats: &mut QueryStats) {
        stats.bytes_read += self.series_bytes();
        stats.random_ios += 1;
        let mut state = self.state.lock();
        state.totals.bytes_read += self.series_bytes();
        state.totals.random_ios += 1;
    }

    /// Runs the fused quantized early-abandonment kernel for record
    /// `record` of the coded page `frame`, under the conservative bound.
    fn coded_probe(
        &self,
        frame: &CodedPage,
        idx_in_page: usize,
        query: &[f32],
        best_so_far: f32,
    ) -> Option<f32> {
        let threshold = conservative_threshold(best_so_far, frame.errs[idx_in_page]);
        let range = idx_in_page * self.series_len..(idx_in_page + 1) * self.series_len;
        match &frame.codes {
            PageCodes::U8(codes) => hydra_core::euclidean_early_abandon_u8(
                query,
                &codes[range],
                frame.min,
                frame.scale,
                threshold,
            ),
            PageCodes::F16(codes) => {
                hydra_core::euclidean_early_abandon_f16(query, &codes[range], threshold)
            }
        }
    }

    /// Refines one candidate: early-abandoning Euclidean distance between
    /// `query` and record `record`, returning `None` if the candidate
    /// provably cannot beat `best_so_far`.
    ///
    /// On a raw (f32) store this is exactly `read` followed by
    /// [`hydra_core::euclidean_early_abandon`], with identical charging.
    /// On a coded store the candidate is first probed through its
    /// compressed page under the conservative bound
    /// `best_so_far + residual_norm`; only survivors pay an exact-f32
    /// read (charged as one random I/O plus the series bytes) and re-run the
    /// *same* kernel on the exact values — so the returned distances, and
    /// therefore the answers, are bit-identical across codecs, while
    /// pruned candidates cost only their coded bytes.
    ///
    /// # Panics
    /// Panics if `record` is out of bounds, or on a genuine disk fault.
    pub fn refine(
        &self,
        record: usize,
        query: &[f32],
        best_so_far: f32,
        stats: &mut QueryStats,
    ) -> Option<f32> {
        assert!(record < self.len(), "record {record} out of bounds");
        if record >= self.coded.sealed() {
            let series = self.read(record, stats);
            return hydra_core::euclidean_early_abandon(query, &series, best_so_far);
        }
        stats.bytes_read += self.coded_record_bytes();
        let page = self.page_of(record);
        let frame = self.fetch_coded_page(page, stats);
        let idx = record - (page * self.series_per_page()) as usize;
        self.coded_probe(&frame, idx, query, best_so_far)?;
        self.charge_exact_refinement(stats);
        let mut exact = Vec::new();
        self.read_uncharged(record, &mut exact);
        hydra_core::euclidean_early_abandon(query, &exact, best_so_far)
    }

    /// Refines `count` consecutive candidates starting at `start` — the
    /// scan-shaped companion of [`SeriesStore::refine`], used by tree
    /// leaves whose contents are contiguous runs. `accept(record, d)` is
    /// invoked for each surviving candidate and returns the (possibly
    /// tightened) bound for the rest of the scan; the final bound is
    /// returned.
    ///
    /// On a raw (f32) store this charges exactly what
    /// [`SeriesStore::read_range`] plus the kernel would (it *is* that
    /// call); on a coded store the sealed prefix of the range scans
    /// compressed pages and only survivors read exact f32 bytes, while
    /// any tail records (appended after sealing) fall through to the raw
    /// path.
    pub fn scan_refine(
        &self,
        start: usize,
        count: usize,
        query: &[f32],
        best_so_far: f32,
        stats: &mut QueryStats,
        accept: &mut dyn FnMut(usize, f32) -> f32,
    ) -> f32 {
        let mut bound = best_so_far;
        if count == 0 {
            return bound;
        }
        let end = (start + count).min(self.len());
        assert!(start < self.len(), "start {start} out of bounds");
        let sealed = self.coded.sealed();
        let coded_end = end.min(sealed);
        if coded_end > start {
            let spp = self.series_per_page();
            let mut exact = Vec::new();
            for page in self.page_of(start)..=self.page_of(coded_end - 1) {
                let frame = self.fetch_coded_page(page, stats);
                let page_first = (page * spp) as usize;
                let lo = start.max(page_first);
                let hi = coded_end.min(page_first + frame.count());
                for record in lo..hi {
                    stats.bytes_read += self.coded_record_bytes();
                    if self
                        .coded_probe(&frame, record - page_first, query, bound)
                        .is_some()
                    {
                        self.charge_exact_refinement(stats);
                        self.read_uncharged(record, &mut exact);
                        if let Some(d) =
                            hydra_core::euclidean_early_abandon(query, &exact, bound)
                        {
                            bound = accept(record, d);
                        }
                    }
                }
            }
        }
        let raw_start = start.max(sealed);
        if end > raw_start {
            self.read_range(raw_start, end - raw_start, stats, &mut |record, series| {
                if let Some(d) = hydra_core::euclidean_early_abandon(query, series, bound) {
                    bound = accept(record, d);
                }
            });
        }
        bound
    }

    /// Snapshot of cumulative I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let state = self.state.lock();
        IoSnapshot {
            pool_evictions: state.pool.evictions(),
            ..state.totals
        }
    }

    /// The same cumulative totals as [`SeriesStore::io_snapshot`], in
    /// the core [`StoreCounters`] shape the observability layer scrapes
    /// through [`hydra_core::AnnIndex::store_counters`]. Reading is a
    /// pure snapshot — it charges nothing and touches no pool state.
    pub fn counters(&self) -> StoreCounters {
        let snap = self.io_snapshot();
        StoreCounters {
            random_ios: snap.random_ios,
            sequential_ios: snap.sequential_ios,
            bytes_read: snap.bytes_read,
            pool_hits: snap.pool_hits,
            pool_misses: snap.pool_misses,
            pool_evictions: snap.pool_evictions,
            compressed_bytes_read: snap.compressed_bytes_read,
        }
    }

    /// Clears the buffer pool and resets cumulative counters (the paper
    /// clears caches before each experiment step). On a file-backed store
    /// this genuinely drops every cached frame.
    pub fn reset_io(&self) {
        let mut state = self.state.lock();
        state.pool.clear();
        state.last_page = None;
        state.totals = IoSnapshot::default();
    }

    // ------------------------------------------------------------------
    // Batch-aware pinning and prefetch
    // ------------------------------------------------------------------

    /// Declares the page working set of an in-flight batch: the pages
    /// covering each `(start, count)` record range are pinned in the
    /// buffer pool (never chosen as eviction victims) and, when `prefetch`
    /// is set, faulted in ascending page order so the misses are charged
    /// as one sequential sweep instead of the batch's own access pattern.
    ///
    /// Returns the pages actually pinned — hand them back to
    /// [`SeriesStore::release_working_set`] when the batch completes.
    ///
    /// Semantics that keep the existing equivalence tests honest:
    /// - Pinning never changes *what* a read returns or how a per-query
    ///   [`QueryStats`] charges logical bytes; it only changes which pages
    ///   the pool keeps resident, i.e. the store-wide hit/miss economics.
    /// - The set is clipped to one page short of the pool capacity, so
    ///   demand paging always keeps at least one evictable slot; ranges
    ///   whose union exceeds the budget are truncated (those pages fall
    ///   back to plain LRU) rather than pinned into a read-through pool.
    /// - Prefetch charges land on the store totals through the same
    ///   `AccessState::charge` path as any other access; the per-page
    ///   scratch stats are discarded because prefetch belongs to the
    ///   batch, not to any one query.
    pub fn pin_working_set(&self, ranges: &[(usize, usize)], prefetch: bool) -> Vec<u64> {
        let len = self.len();
        let budget = self.config.buffer_pool_pages.saturating_sub(1);
        if len == 0 || budget == 0 {
            return Vec::new();
        }
        let mut pages: Vec<u64> = Vec::new();
        for &(start, count) in ranges {
            if count == 0 || start >= len {
                continue;
            }
            let end = start.saturating_add(count).min(len);
            pages.extend(self.page_of(start)..=self.page_of(end - 1));
        }
        pages.sort_unstable();
        pages.dedup();
        pages.truncate(budget);
        {
            let mut state = self.state.lock();
            for &page in &pages {
                state.pool.pin(page);
            }
        }
        if prefetch {
            // Ascending order makes the fault-in sweep sequential after the
            // first positioning. Only the pinned pages are prefetched:
            // faulting in pages the pool cannot protect would evict other
            // useful frames and then miss again on demand.
            let mut scratch = QueryStats::new();
            for &page in &pages {
                self.prefetch_page(page, &mut scratch);
            }
        }
        pages
    }

    /// Unpins pages previously returned by
    /// [`SeriesStore::pin_working_set`], restoring plain LRU eviction.
    pub fn release_working_set(&self, pages: &[u64]) {
        let mut state = self.state.lock();
        for &page in pages {
            state.pool.unpin(page);
        }
    }

    /// Faults one page into the pool through whichever representation the
    /// store would serve it from: the coded tier for sealed records, the
    /// raw frame path for a file backing, a plain id-access for a resident
    /// one. Must not be called with the state lock held —
    /// [`SeriesStore::fetch_coded_page`] locks internally.
    fn prefetch_page(&self, page: u64, stats: &mut QueryStats) {
        let first = (page * self.series_per_page()) as usize;
        if first >= self.len() {
            return;
        }
        if first < self.coded.sealed() {
            let _ = self.fetch_coded_page(page, stats);
            return;
        }
        match &self.backing {
            Backing::Resident(_) => {
                let mut state = self.state.lock();
                let hit = state.pool.access(page);
                state.charge(page, hit, self.config.page_bytes as u64, stats);
            }
            Backing::File(fb) => {
                let _ = self.fetch_frame(fb, page, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, len: usize) -> Dataset {
        let mut d = Dataset::new(len).unwrap();
        for i in 0..n {
            let s: Vec<f32> = (0..len).map(|j| (i * len + j) as f32).collect();
            d.push(&s).unwrap();
        }
        d
    }

    fn small_store(n: usize, len: usize, config: StorageConfig) -> SeriesStore {
        SeriesStore::from_dataset(&dataset(n, len), config).unwrap()
    }

    /// Writes the dataset's payload to a flat file behind a garbage header
    /// of `offset` bytes (proving the span offset is respected) and
    /// attaches a file-backed store over it.
    fn file_store(n: usize, len: usize, config: StorageConfig, name: &str) -> (SeriesStore, PathBuf) {
        let d = dataset(n, len);
        let path = std::env::temp_dir().join(format!(
            "hydra-storage-filestore-{}-{name}.flat",
            std::process::id()
        ));
        let offset = 32u64;
        let mut bytes = vec![0xAAu8; offset as usize];
        for &v in d.as_flat() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let store = SeriesStore::file_backed(
            &path,
            FileSpan { offset, records: n },
            len,
            config,
        )
        .unwrap();
        (store, path)
    }

    #[test]
    fn construction_validation() {
        assert!(SeriesStore::new(0, StorageConfig::default()).is_err());
        assert!(SeriesStore::new(
            8,
            StorageConfig {
                page_bytes: 1,
                buffer_pool_pages: 1,
                codec: PageCodec::F32,
                io: FileIoMode::Pread,
            }
        )
        .is_err());
        let mut s = SeriesStore::new(4, StorageConfig::default()).unwrap();
        assert!(s.is_empty());
        assert!(!s.is_file_backed());
        assert!(s.append(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(s.append(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.series_len(), 4);
        assert_eq!(s.total_bytes(), 16);
        assert_eq!(s.as_flat().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn read_returns_correct_series_and_charges_bytes() {
        let store = small_store(10, 4, StorageConfig::on_disk());
        let mut stats = QueryStats::new();
        let s = store.read(3, &mut stats);
        assert_eq!(&*s, &[12.0, 13.0, 14.0, 15.0]);
        assert_eq!(stats.bytes_read, 16);
    }

    #[test]
    fn sequential_scan_is_mostly_sequential_io() {
        // Page = 64 values = 16 series of length 4.
        let config = StorageConfig {
            page_bytes: 256,
            buffer_pool_pages: 0,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let store = small_store(64, 4, config);
        let mut stats = QueryStats::new();
        store.read_range(0, 64, &mut stats, &mut |_, _| {});
        // 4 pages: the first positioning is random, the rest sequential.
        assert_eq!(stats.random_ios, 1);
        assert_eq!(stats.sequential_ios, 3);
        assert_eq!(stats.bytes_read, 64 * 16);
    }

    #[test]
    fn scattered_reads_are_random_io() {
        let config = StorageConfig {
            page_bytes: 256, // 16 series/page
            buffer_pool_pages: 0,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let store = small_store(256, 4, config);
        let mut stats = QueryStats::new();
        // Jump between far-apart pages.
        for r in [0usize, 128, 16, 240, 64] {
            store.read(r, &mut stats);
        }
        assert_eq!(stats.random_ios, 5);
        assert_eq!(stats.sequential_ios, 0);
    }

    #[test]
    fn buffer_pool_absorbs_repeated_access() {
        let config = StorageConfig {
            page_bytes: 256,
            buffer_pool_pages: 1024,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let store = small_store(64, 4, config);
        let mut stats = QueryStats::new();
        store.read(5, &mut stats);
        store.read(6, &mut stats); // same page -> pool hit
        assert_eq!(stats.random_ios + stats.sequential_ios, 1);
        let snap = store.io_snapshot();
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 1);
        assert_eq!(snap.random_ios, 1);
    }

    #[test]
    fn reset_io_clears_totals_and_pool() {
        let store = small_store(64, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        store.read(0, &mut stats);
        assert!(store.io_snapshot().random_ios > 0);
        store.reset_io();
        assert_eq!(store.io_snapshot(), IoSnapshot::default());
        let mut stats2 = QueryStats::new();
        store.read(0, &mut stats2);
        assert_eq!(stats2.random_ios, 1, "after reset the first read misses again");
    }

    #[test]
    fn read_range_clamps_to_len() {
        let store = small_store(10, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        let mut seen = Vec::new();
        store.read_range(8, 100, &mut stats, &mut |id, _| seen.push(id));
        assert_eq!(seen, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let store = small_store(4, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        let _ = store.read(100, &mut stats);
    }

    // ------------------------------------------------------------------
    // File-backed behaviour
    // ------------------------------------------------------------------

    #[test]
    fn file_backed_reads_match_resident_reads_and_stats() {
        let config = StorageConfig {
            page_bytes: 64, // 4 series of length 4 per page
            buffer_pool_pages: 2,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let resident = small_store(21, 4, config);
        let (file, path) = file_store(21, 4, config, "equiv");
        assert!(file.is_file_backed());
        assert_eq!(file.len(), 21);
        assert_eq!(file.total_bytes(), resident.total_bytes());

        // An access pattern with hits, misses, evictions, and a tail page.
        let pattern = [0usize, 1, 5, 0, 20, 7, 20, 3, 19];
        let mut rs = QueryStats::new();
        let mut fs = QueryStats::new();
        for &r in &pattern {
            let a = resident.read(r, &mut rs);
            let b = file.read(r, &mut fs);
            assert_eq!(&*a, &*b, "record {r} drifted between backings");
        }
        assert_eq!(rs, fs, "per-query stats must be identical across backings");
        let (ri, fi) = (resident.io_snapshot(), file.io_snapshot());
        assert_eq!(ri.pool_hits, fi.pool_hits);
        assert_eq!(ri.pool_misses, fi.pool_misses);
        assert_eq!(ri.random_ios, fi.random_ios);
        assert_eq!(ri.sequential_ios, fi.sequential_ios);
        assert_eq!(ri.pool_evictions, fi.pool_evictions);
        assert!(fi.pool_evictions > 0, "the pattern must evict at capacity 2");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_read_range_straddles_page_boundaries() {
        let config = StorageConfig {
            page_bytes: 64, // 4 series/page
            buffer_pool_pages: 8,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(21, 4, config, "straddle");
        let mut stats = QueryStats::new();
        let mut seen = Vec::new();
        // Records 2..19 span pages 0..=4 (page 5 untouched); the tail of the
        // range sits mid-page.
        store.read_range(2, 17, &mut stats, &mut |id, s| {
            assert_eq!(s[0], (id * 4) as f32, "record {id} content");
            seen.push(id);
        });
        assert_eq!(seen, (2..19).collect::<Vec<_>>());
        assert_eq!(stats.random_ios, 1, "one positioning");
        assert_eq!(stats.sequential_ios, 4, "then sequential pages");
        assert_eq!(stats.bytes_read, 17 * 16);
        // The tail page (records 20) was never fetched.
        assert_eq!(store.io_snapshot().pool_misses, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_bytes_read_measures_real_transfers() {
        let config = StorageConfig {
            page_bytes: 64, // 4 series/page -> frame = 64 bytes, tail = 1 series = 16 bytes
            buffer_pool_pages: 0,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(9, 4, config, "bytes");
        let mut stats = QueryStats::new();
        store.read_range(0, 9, &mut stats, &mut |_, _| {});
        // Pages 0 and 1 are full frames (64 bytes), page 2 holds one series.
        assert_eq!(store.io_snapshot().bytes_read, 64 + 64 + 16);
        // The per-query counter stays logical (bytes delivered to the query).
        assert_eq!(stats.bytes_read, 9 * 16);
        // Re-reading with a cold pool transfers everything again.
        store.read_range(0, 9, &mut stats, &mut |_, _| {});
        assert_eq!(store.io_snapshot().bytes_read, 2 * (64 + 64 + 16));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_one_pool_still_answers_correctly() {
        // Regression: a pool of capacity 1 thrashes but never corrupts.
        let config = StorageConfig {
            page_bytes: 32, // 2 series of length 4 per page
            buffer_pool_pages: 1,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(10, 4, config, "cap1");
        let mut stats = QueryStats::new();
        // Pinned sequence over pages 0,0,3,0: miss, hit, miss(evict), miss(evict).
        for (r, expect_first) in [(0usize, 0.0f32), (1, 4.0), (7, 28.0), (0, 0.0)] {
            let s = store.read(r, &mut stats);
            assert_eq!(s[0], expect_first);
        }
        let snap = store.io_snapshot();
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 3);
        assert_eq!(snap.pool_evictions, 2);
        // Full scans still return every value.
        let mut sum = 0.0f64;
        store.read_range(0, 10, &mut stats, &mut |_, s| {
            sum += s.iter().map(|&v| v as f64).sum::<f64>()
        });
        assert_eq!(sum, (0..40).sum::<i32>() as f64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_reads_are_bit_identical_to_pread_with_identical_counters() {
        let config = StorageConfig {
            page_bytes: 64, // 4 series of length 4 per page
            buffer_pool_pages: 2,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (pread, path_a) = file_store(21, 4, config, "iopread");
        let (mut mapped, path_b) =
            file_store(21, 4, config.with_io_mode(FileIoMode::Mmap), "iommap");
        let pattern = [0usize, 1, 5, 0, 20, 7, 20, 3, 19];
        let mut ps = QueryStats::new();
        let mut ms = QueryStats::new();
        for &r in &pattern {
            let a = pread.read(r, &mut ps);
            let b = mapped.read(r, &mut ms);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "record {r} drifted between I/O modes"
            );
        }
        assert_eq!(ps, ms, "per-query stats must be identical across I/O modes");
        assert_eq!(
            pread.io_snapshot(),
            mapped.io_snapshot(),
            "store totals (incl. real transfer bytes) must be identical"
        );

        // The uncharged maintenance hatch reads through the mapping too.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        pread.read_uncharged(2, &mut a);
        mapped.read_uncharged(2, &mut b);
        assert_eq!(a, b);

        // Growth after attach: the frame of the last page is assembled from
        // mapped file bytes plus the resident tail.
        mapped.append(&[90.0, 91.0, 92.0, 93.0]).unwrap();
        let mut stats = QueryStats::new();
        let mut seen = Vec::new();
        mapped.read_range(20, 2, &mut stats, &mut |id, s| seen.push((id, s[0])));
        assert_eq!(seen, vec![(20, 80.0), (21, 90.0)]);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn mmap_attach_validates_the_span_before_mapping() {
        // A file shorter than the span promises must fail the attach with a
        // typed error under either I/O mode — never produce a mapping whose
        // tail could fault.
        let path = std::env::temp_dir().join(format!(
            "hydra-storage-short-mmap-{}.flat",
            std::process::id()
        ));
        std::fs::write(&path, vec![0u8; 40]).unwrap();
        let span = FileSpan { offset: 32, records: 2 };
        for io in [FileIoMode::Pread, FileIoMode::Mmap] {
            let got = SeriesStore::file_backed(
                &path,
                span,
                4,
                StorageConfig::on_disk().with_io_mode(io),
            );
            assert!(
                matches!(got, Err(Error::Storage(_))),
                "{}: short file must be rejected before any page is served",
                io.name()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_working_set_survives_a_thrashing_scan() {
        let config = StorageConfig {
            page_bytes: 32, // 2 series of length 4 per page
            buffer_pool_pages: 4,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(16, 4, config, "pin"); // 8 pages
        let mut stats = QueryStats::new();

        // Records 0..6 cover pages 0..=2; the budget (capacity - 1) admits
        // exactly those three.
        let pinned = store.pin_working_set(&[(0, 6)], true);
        assert_eq!(pinned, vec![0, 1, 2]);
        let warm = store.io_snapshot();
        assert_eq!(warm.pool_misses, 3, "prefetch faulted the set in");
        assert_eq!(warm.random_ios, 1, "one positioning...");
        assert_eq!(warm.sequential_ios, 2, "...then a sequential sweep");

        // A full scan: the pinned pages hit; pages 3..=7 fight over the one
        // unpinned slot and never touch the working set.
        store.read_range(0, 16, &mut stats, &mut |_, _| {});
        let snap = store.io_snapshot();
        assert_eq!(snap.pool_hits, 3);
        assert_eq!(snap.pool_misses, 3 + 5);
        let _ = store.read(0, &mut stats);
        let _ = store.read(5, &mut stats);
        assert_eq!(
            store.io_snapshot().pool_hits,
            5,
            "the working set is still resident after the scan"
        );

        // Release restores plain LRU: a thrashing sweep now evicts the
        // previously pinned pages like any others.
        store.release_working_set(&pinned);
        for r in (6..16).chain(6..16) {
            let _ = store.read(r, &mut stats);
        }
        let hits_before = store.io_snapshot().pool_hits;
        let _ = store.read(0, &mut stats);
        assert_eq!(
            store.io_snapshot().pool_hits,
            hits_before,
            "page 0 must have been evicted once unpinned"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pin_working_set_clips_to_the_pool_budget() {
        let config = StorageConfig {
            page_bytes: 32,
            buffer_pool_pages: 2,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(16, 4, config, "pinclip");
        // Asking for everything pins only capacity - 1 pages; ranges beyond
        // the store length are clipped, empty ones skipped.
        let pinned = store.pin_working_set(&[(0, usize::MAX), (3, 0), (100, 4)], false);
        assert_eq!(pinned, vec![0]);
        store.release_working_set(&pinned);

        // A degenerate pool (capacity <= 1) pins nothing at all.
        let tiny = SeriesStore::from_dataset(&dataset(8, 4), config.with_pool_pages(1)).unwrap();
        assert!(tiny.pin_working_set(&[(0, 8)], true).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_store_rejects_as_flat_but_accepts_append() {
        let (mut store, path) = file_store(4, 4, StorageConfig::on_disk(), "hatch");
        assert!(matches!(store.as_flat(), Err(Error::Storage(_))));
        assert!(store.append(&[0.0; 3]).is_err(), "dimension still checked");
        assert_eq!(store.append(&[90.0, 91.0, 92.0, 93.0]).unwrap(), 4);
        assert_eq!(store.len(), 5);
        assert!(
            matches!(store.as_flat(), Err(Error::Storage(_))),
            "growth does not create a resident flat view"
        );
        let mut stats = QueryStats::new();
        assert_eq!(&*store.read(4, &mut stats), &[90.0, 91.0, 92.0, 93.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_append_grows_the_store_and_keeps_the_pool_coherent() {
        // 2 series of length 4 per page: appends land mid-page, on the
        // file/tail boundary page, and on fresh tail-only pages.
        let config = StorageConfig {
            page_bytes: 32,
            buffer_pool_pages: 8,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (mut store, path) = file_store(3, 4, config, "grow");
        let mut stats = QueryStats::new();
        // Warm the pool on the boundary page (page 1 holds record 2 only).
        assert_eq!(store.read(2, &mut stats)[0], 8.0);
        // Record 3 completes page 1: the cached short frame must not be
        // served stale.
        assert_eq!(store.append(&[100.0, 101.0, 102.0, 103.0]).unwrap(), 3);
        assert_eq!(store.len(), 4);
        assert_eq!(&*store.read(3, &mut stats), &[100.0, 101.0, 102.0, 103.0]);
        // Records 4 and 5 form a tail-only page.
        store.append(&[110.0; 4]).unwrap();
        store.append(&[120.0; 4]).unwrap();
        assert_eq!(store.total_bytes(), 6 * 16);
        // Every record — file span, boundary page, pure tail — reads back
        // exactly, before and after a pool reset.
        for round in 0..2 {
            let expected_first = [0.0f32, 4.0, 8.0, 100.0, 110.0, 120.0];
            for (r, &first) in expected_first.iter().enumerate() {
                let s = store.read(r, &mut stats);
                assert_eq!(s[0], first, "record {r}, round {round}");
                assert_eq!(s.len(), 4);
            }
            store.reset_io();
        }
        // read_range crosses the boundary seamlessly.
        let mut seen = Vec::new();
        store.read_range(1, 5, &mut stats, &mut |id, s| seen.push((id, s[0])));
        assert_eq!(
            seen,
            vec![(1, 4.0), (2, 8.0), (3, 100.0), (4, 110.0), (5, 120.0)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncharged_reads_and_scans_match_charged_reads_on_both_backings() {
        let config = StorageConfig {
            page_bytes: 32, // 2 series of length 4 per page
            buffer_pool_pages: 2,
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let mut resident = small_store(7, 4, config);
        let (mut file, path) = file_store(7, 4, config, "uncharged");
        resident.append(&[70.0, 71.0, 72.0, 73.0]).unwrap();
        file.append(&[70.0, 71.0, 72.0, 73.0]).unwrap();
        for store in [&resident, &file] {
            let mut buf = Vec::new();
            let mut scanned: Vec<(usize, Vec<f32>)> = Vec::new();
            store.for_each_series(&mut |id, s| scanned.push((id, s.to_vec())));
            assert_eq!(scanned.len(), 8);
            for (id, s) in &scanned {
                store.read_uncharged(*id, &mut buf);
                assert_eq!(&buf, s, "record {id}");
            }
            assert_eq!(
                store.io_snapshot(),
                IoSnapshot::default(),
                "maintenance reads must not charge any I/O"
            );
            let mut stats = QueryStats::new();
            let charged = store.read(5, &mut stats);
            assert_eq!(&*charged, &scanned[5].1[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backed_validates_the_span_against_the_file() {
        let path = std::env::temp_dir().join(format!(
            "hydra-storage-short-{}.flat",
            std::process::id()
        ));
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        // 100 bytes cannot hold 10 series of length 4 (160 bytes) at offset 0.
        assert!(matches!(
            SeriesStore::file_backed(
                &path,
                FileSpan { offset: 0, records: 10 },
                4,
                StorageConfig::on_disk()
            ),
            Err(Error::Storage(_))
        ));
        assert!(SeriesStore::file_backed(
            &path,
            FileSpan { offset: 20, records: 5 },
            4,
            StorageConfig::on_disk()
        )
        .is_ok());
        assert!(matches!(
            SeriesStore::file_backed(
                Path::new("/nonexistent/x.flat"),
                FileSpan { offset: 0, records: 1 },
                4,
                StorageConfig::on_disk()
            ),
            Err(Error::Storage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_file_backed_readers_see_consistent_data() {
        let config = StorageConfig {
            page_bytes: 64,
            buffer_pool_pages: 1, // maximum thrash
            codec: PageCodec::F32,
            io: FileIoMode::Pread,
        };
        let (store, path) = file_store(64, 4, config, "threads");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    let mut stats = QueryStats::new();
                    for i in 0..200 {
                        let r = (i * 7 + t * 13) % 64;
                        let s = store.read(r, &mut stats);
                        assert_eq!(s[0], (r * 4) as f32, "torn read of record {r}");
                        assert_eq!(s[3], (r * 4 + 3) as f32);
                    }
                });
            }
        });
        let snap = store.io_snapshot();
        assert_eq!(snap.pool_hits + snap.pool_misses, 4 * 200);
        assert!(snap.pool_evictions > 0);
        std::fs::remove_file(&path).ok();
    }

    // ------------------------------------------------------------------
    // Compressed page tier
    // ------------------------------------------------------------------

    use crate::coded::{page_disk_bytes, CodedHeader, CodedPage, CODED_HEADER_BYTES};

    /// A dataset whose values genuinely stress u8 quantization (spread,
    /// sign changes, non-grid values) — unlike the linear ramp above,
    /// whose page-affine values a u8 grid can represent too faithfully.
    fn varied_dataset(n: usize, len: usize) -> Dataset {
        let mut d = Dataset::new(len).unwrap();
        let mut x = 0x9e3779b9u32;
        for _ in 0..n {
            let s: Vec<f32> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 8) as f32 / (1 << 24) as f32 * 200.0 - 100.0
                })
                .collect();
            d.push(&s).unwrap();
        }
        d
    }

    fn tiered_config(codec: PageCodec) -> StorageConfig {
        StorageConfig {
            page_bytes: 256, // 4 series of length 16 per page
            buffer_pool_pages: 4,
            codec,
            io: FileIoMode::Pread,
        }
    }

    /// 1-NN over the whole store through `scan_refine`, recording every
    /// accepted `(record, distance_bits)` pair.
    fn one_nn_scan(store: &SeriesStore, query: &[f32]) -> (Vec<(usize, u32)>, QueryStats) {
        let mut stats = QueryStats::new();
        let mut accepted = Vec::new();
        let mut best = f32::INFINITY;
        store.scan_refine(0, store.len(), query, best, &mut stats, &mut |id, dist| {
            accepted.push((id, dist.to_bits()));
            best = best.min(dist);
            best
        });
        (accepted, stats)
    }

    /// Writes the `HYDRCODE` sidecar for `d` under `codec`, page-grouped
    /// exactly as a store with `config` would group its raw pages.
    fn write_coded_sidecar(d: &Dataset, config: &StorageConfig, path: &Path) {
        let len = d.series_len();
        let spp = (config.page_bytes as usize / (4 * len)).max(1);
        let flat = d.as_flat();
        let n = flat.len() / len;
        let mut bytes = CodedHeader {
            codec: config.codec,
            series_len: len as u64,
            records: n as u64,
            series_per_page: spp as u64,
            source_fingerprint: 0,
            payload_fingerprint: 0,
        }
        .encode()
        .to_vec();
        for page in 0..n.div_ceil(spp) {
            let lo = page * spp * len;
            let hi = ((page + 1) * spp).min(n) * len;
            bytes.extend_from_slice(&CodedPage::encode(&flat[lo..hi], len, config.codec).to_disk_bytes());
        }
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn sealed_refine_answers_match_raw_store_bit_for_bit() {
        let d = varied_dataset(100, 16);
        let raw = SeriesStore::from_dataset(&d, tiered_config(PageCodec::F32)).unwrap();
        let mut query: Vec<f32> = d.get(37).unwrap().to_vec();
        query.iter_mut().for_each(|v| *v += 0.25);

        let (want, raw_stats) = one_nn_scan(&raw, &query);
        assert!(!want.is_empty());
        for codec in [PageCodec::U8, PageCodec::F16] {
            let mut coded = SeriesStore::from_dataset(&d, tiered_config(codec)).unwrap();
            assert_eq!(coded.sealed(), 0, "fresh builds are raw even under a coded config");
            coded.seal_coded();
            assert_eq!(coded.sealed(), 100);
            let (got, coded_stats) = one_nn_scan(&coded, &query);
            assert_eq!(got, want, "{} accept sequence diverged", codec.name());
            assert!(
                coded_stats.bytes_read < raw_stats.bytes_read,
                "{}: coded scan must be cheaper ({} vs {} bytes)",
                codec.name(),
                coded_stats.bytes_read,
                raw_stats.bytes_read,
            );

            // Candidate-at-a-time refinement agrees with the raw kernel at
            // every record and every bound tightness.
            let mut best = f32::INFINITY;
            for r in 0..coded.len() {
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let coded_d = coded.refine(r, &query, best, &mut s1);
                let series = raw.read(r, &mut s2);
                let raw_d = hydra_core::euclidean_early_abandon(&query, &series, best);
                if let Some(d) = raw_d {
                    assert_eq!(
                        coded_d.map(f32::to_bits),
                        Some(d.to_bits()),
                        "{} record {r}",
                        codec.name()
                    );
                    best = best.min(d);
                } else {
                    // The coded probe may keep a candidate the raw kernel
                    // abandons (its bound is conservative), but the exact
                    // re-check then abandons it too.
                    assert_eq!(coded_d, None, "{} record {r}", codec.name());
                }
            }
        }
    }

    #[test]
    fn coded_file_tier_matches_coded_resident_tier_exactly() {
        let d = varied_dataset(100, 16);
        let mut query: Vec<f32> = d.get(11).unwrap().to_vec();
        query[3] += 4.0;

        for codec in [PageCodec::U8, PageCodec::F16] {
            let config = tiered_config(codec);
            let mut resident = SeriesStore::from_dataset(&d, config.clone()).unwrap();
            resident.seal_coded();
            resident.reset_io();

            let dir = std::env::temp_dir();
            let flat = dir.join(format!(
                "hydra-storage-coded-{}-{}.flat",
                std::process::id(),
                codec.name()
            ));
            let sidecar = dir.join(format!(
                "hydra-storage-coded-{}-{}.coded",
                std::process::id(),
                codec.name()
            ));
            let mut bytes = Vec::new();
            for &v in d.as_flat() {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            std::fs::write(&flat, &bytes).unwrap();
            write_coded_sidecar(&d, &config, &sidecar);
            let mut file = SeriesStore::file_backed(
                &flat,
                FileSpan { offset: 0, records: 100 },
                16,
                config.clone(),
            )
            .unwrap();
            file.attach_coded_file(&sidecar).unwrap();
            assert_eq!(file.sealed(), 100);

            let (res_acc, res_stats) = one_nn_scan(&resident, &query);
            let (file_acc, file_stats) = one_nn_scan(&file, &query);
            assert_eq!(file_acc, res_acc, "{} answers diverged", codec.name());
            assert_eq!(
                file_stats, res_stats,
                "{}: the resident tier must simulate exactly what the file tier measures",
                codec.name()
            );
            assert_eq!(file.io_snapshot(), resident.io_snapshot());
            let snap = file.io_snapshot();
            assert!(snap.compressed_bytes_read > 0);
            assert!(
                snap.compressed_bytes_read <= snap.bytes_read,
                "compressed bytes are a subset of all bytes"
            );
            std::fs::remove_file(&flat).ok();
            std::fs::remove_file(&sidecar).ok();
        }
    }

    #[test]
    fn coded_scan_reads_fewer_bytes_at_equal_pool_size() {
        let d = varied_dataset(256, 16);
        let scan = |codec: PageCodec| {
            let mut store = SeriesStore::from_dataset(&d, tiered_config(codec)).unwrap();
            store.seal_coded();
            store.reset_io();
            let query: Vec<f32> = d.get(0).unwrap().to_vec();
            let (_, stats) = one_nn_scan(&store, &query);
            stats
        };
        let raw = scan(PageCodec::F32);
        let u8s = scan(PageCodec::U8);
        let f16s = scan(PageCodec::F16);
        // Per-series logical charges: 64 raw, 4+16=20 for u8, 4+32=36 for
        // f16 — plus per-survivor exact reads, which quantization keeps
        // rare. The issue's acceptance bar is >= 3x for u8.
        assert!(
            u8s.bytes_read * 3 <= raw.bytes_read,
            "u8 must read >=3x fewer bytes ({} vs {})",
            u8s.bytes_read,
            raw.bytes_read
        );
        assert!(f16s.bytes_read < raw.bytes_read);
        assert!(u8s.bytes_read < f16s.bytes_read);
    }

    #[test]
    fn appended_tail_records_stay_raw_after_sealing() {
        let d = varied_dataset(20, 8);
        let mut store = SeriesStore::from_dataset(
            &d,
            StorageConfig {
                page_bytes: 128,
                buffer_pool_pages: 4,
                codec: PageCodec::U8,
                io: FileIoMode::Pread,
            },
        )
        .unwrap();
        store.seal_coded();
        assert_eq!(store.sealed(), 20);
        let fresh: Vec<f32> = (0..8).map(|j| j as f32 * 0.5 - 2.0).collect();
        store.append(&fresh).unwrap();
        assert_eq!(store.sealed(), 20, "appends never silently join the coded tier");

        // Refining the tail record charges full raw bytes and returns the
        // exact distance.
        let query = vec![0.0f32; 8];
        let mut stats = QueryStats::new();
        let got = store.refine(20, &query, f32::INFINITY, &mut stats).unwrap();
        let want = hydra_core::euclidean(&query, &fresh);
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats.bytes_read, 32, "tail refinement reads raw f32 bytes");
        assert_eq!(store.io_snapshot().compressed_bytes_read, 0);

        // A scan straddling the seal boundary covers both tiers.
        let mut seen = Vec::new();
        let mut stats = QueryStats::new();
        store.scan_refine(18, 3, &query, f32::INFINITY, &mut stats, &mut |id, _| {
            seen.push(id);
            f32::INFINITY
        });
        assert_eq!(seen, vec![18, 19, 20]);
    }

    #[test]
    fn attach_coded_file_rejects_foreign_sidecars() {
        let d = varied_dataset(30, 8);
        let config = StorageConfig {
            page_bytes: 128,
            buffer_pool_pages: 4,
            codec: PageCodec::U8,
            io: FileIoMode::Pread,
        };
        let dir = std::env::temp_dir();
        let flat = dir.join(format!("hydra-storage-badcoded-{}.flat", std::process::id()));
        let mut bytes = Vec::new();
        for &v in d.as_flat() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        std::fs::write(&flat, &bytes).unwrap();
        let mut store = SeriesStore::file_backed(
            &flat,
            FileSpan { offset: 0, records: 30 },
            8,
            config.clone(),
        )
        .unwrap();

        // Sidecar coded for a different codec.
        let sidecar = dir.join(format!("hydra-storage-badcoded-{}.f16", std::process::id()));
        write_coded_sidecar(&d, &config.clone().with_page_codec(PageCodec::F16), &sidecar);
        assert!(store.attach_coded_file(&sidecar).is_err());

        // Truncated payload.
        let good = dir.join(format!("hydra-storage-badcoded-{}.u8", std::process::id()));
        write_coded_sidecar(&d, &config, &good);
        let full = std::fs::read(&good).unwrap();
        std::fs::write(&good, &full[..full.len() - 1]).unwrap();
        assert!(store.attach_coded_file(&good).is_err());

        // Restored, it attaches.
        std::fs::write(&good, &full).unwrap();
        store.attach_coded_file(&good).unwrap();
        assert_eq!(store.sealed(), 30);

        // Header byte-layout sanity: total size is header + page records.
        assert_eq!(
            full.len() as u64,
            CODED_HEADER_BYTES + 7 * page_disk_bytes(4, 8, PageCodec::U8) + page_disk_bytes(2, 8, PageCodec::U8),
        );
        std::fs::remove_file(&flat).ok();
        std::fs::remove_file(&sidecar).ok();
        std::fs::remove_file(&good).ok();
    }
}
