//! The simulated series store.

use hydra_core::{Dataset, Error, QueryStats, Result};
use parking_lot::Mutex;

use crate::buffer::BufferPool;

/// Configuration of the simulated storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Size of one disk page in bytes.
    pub page_bytes: usize,
    /// Capacity of the buffer pool in pages. Use a large value (or
    /// [`StorageConfig::in_memory`]) to model a dataset that fits in RAM.
    pub buffer_pool_pages: usize,
}

impl StorageConfig {
    /// The default on-disk configuration: 64 KiB pages and a pool of 128
    /// pages (8 MiB), small relative to the datasets used in experiments.
    pub fn on_disk() -> Self {
        Self {
            page_bytes: 64 * 1024,
            buffer_pool_pages: 128,
        }
    }

    /// A configuration whose pool always holds the entire dataset, so only
    /// cold (first-touch) reads are charged — the in-memory scenario.
    pub fn in_memory() -> Self {
        Self {
            page_bytes: 64 * 1024,
            buffer_pool_pages: usize::MAX / 2,
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self::on_disk()
    }
}

/// Cumulative I/O counters of a store since creation (or the last reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages read that required a seek (non-adjacent to the previous read).
    pub random_ios: u64,
    /// Pages read contiguously after the previous one.
    pub sequential_ios: u64,
    /// Total bytes charged to reads.
    pub bytes_read: u64,
    /// Buffer-pool hits (no I/O charged).
    pub pool_hits: u64,
}

#[derive(Debug)]
struct AccessState {
    pool: BufferPool,
    last_page: Option<u64>,
    totals: IoSnapshot,
}

/// A flat, append-only store of fixed-length series with simulated paged
/// access.
///
/// Record ids are assigned in append order; indexes lay out their leaves by
/// appending leaf contents contiguously, so a leaf scan is a sequential read
/// and a jump between leaves is a random read — matching the layout of the
/// original on-disk implementations.
#[derive(Debug)]
pub struct SeriesStore {
    series_len: usize,
    config: StorageConfig,
    data: Vec<f32>,
    state: Mutex<AccessState>,
}

impl SeriesStore {
    /// Creates an empty store for series of length `series_len`.
    pub fn new(series_len: usize, config: StorageConfig) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidParameter(
                "series length must be positive".into(),
            ));
        }
        if config.page_bytes < std::mem::size_of::<f32>() {
            return Err(Error::InvalidParameter(
                "page size must hold at least one value".into(),
            ));
        }
        Ok(Self {
            series_len,
            config,
            data: Vec::new(),
            state: Mutex::new(AccessState {
                pool: BufferPool::new(config.buffer_pool_pages),
                last_page: None,
                totals: IoSnapshot::default(),
            }),
        })
    }

    /// Creates a store populated with the contents of a dataset, preserving
    /// record ids = dataset positions.
    pub fn from_dataset(dataset: &Dataset, config: StorageConfig) -> Result<Self> {
        let mut store = Self::new(dataset.series_len(), config)?;
        store.data.extend_from_slice(dataset.as_flat());
        Ok(store)
    }

    /// Appends one series, returning its record id.
    pub fn append(&mut self, series: &[f32]) -> Result<usize> {
        if series.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: series.len(),
            });
        }
        let id = self.len();
        self.data.extend_from_slice(series);
        Ok(id)
    }

    /// Number of series stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.series_len
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Length of each stored series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Total size of the stored raw payload in bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// The storage configuration in use.
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// The raw flat payload in record order, bypassing the simulated I/O
    /// accounting entirely (no pool warm-up, no counters). This is a
    /// maintenance hatch for persistence — fingerprinting and snapshotting
    /// must not perturb the I/O economics the store exists to measure —
    /// and must never be used on a query path.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Bytes occupied by one series.
    fn series_bytes(&self) -> u64 {
        (self.series_len * std::mem::size_of::<f32>()) as u64
    }

    fn series_per_page(&self) -> u64 {
        (self.config.page_bytes as u64 / self.series_bytes()).max(1)
    }

    fn page_of(&self, record: usize) -> u64 {
        record as u64 / self.series_per_page()
    }

    /// Reads one series, charging simulated I/O to both the per-query
    /// `stats` and the store-wide totals.
    ///
    /// # Panics
    /// Panics if `record` is out of bounds.
    pub fn read(&self, record: usize, stats: &mut QueryStats) -> &[f32] {
        assert!(record < self.len(), "record {record} out of bounds");
        self.charge_pages(self.page_of(record), self.page_of(record), stats);
        stats.bytes_read += self.series_bytes();
        let start = record * self.series_len;
        &self.data[start..start + self.series_len]
    }

    /// Reads `count` consecutive series starting at `start`, invoking
    /// `visit(record_id, series)` for each. The contiguous range is charged
    /// as one random positioning followed by sequential page reads.
    pub fn read_range(
        &self,
        start: usize,
        count: usize,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    ) {
        if count == 0 {
            return;
        }
        let end = (start + count).min(self.len());
        assert!(start < self.len(), "start {start} out of bounds");
        self.charge_pages(self.page_of(start), self.page_of(end - 1), stats);
        stats.bytes_read += self.series_bytes() * (end - start) as u64;
        for record in start..end {
            let off = record * self.series_len;
            visit(record, &self.data[off..off + self.series_len]);
        }
    }

    /// Charges page accesses for the inclusive page range `[first, last]`.
    fn charge_pages(&self, first: u64, last: u64, stats: &mut QueryStats) {
        let mut state = self.state.lock();
        for page in first..=last {
            if state.pool.access(page) {
                state.totals.pool_hits += 1;
            } else {
                let sequential = state.last_page == Some(page.wrapping_sub(1)) || state.last_page == Some(page);
                if sequential {
                    state.totals.sequential_ios += 1;
                    stats.sequential_ios += 1;
                } else {
                    state.totals.random_ios += 1;
                    stats.random_ios += 1;
                }
                state.totals.bytes_read += self.config.page_bytes as u64;
            }
            state.last_page = Some(page);
        }
    }

    /// Snapshot of cumulative I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.state.lock().totals
    }

    /// Clears the buffer pool and resets cumulative counters (the paper
    /// clears caches before each experiment step).
    pub fn reset_io(&self) {
        let mut state = self.state.lock();
        state.pool.clear();
        state.last_page = None;
        state.totals = IoSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(n: usize, len: usize, config: StorageConfig) -> SeriesStore {
        let mut d = Dataset::new(len).unwrap();
        for i in 0..n {
            let s: Vec<f32> = (0..len).map(|j| (i * len + j) as f32).collect();
            d.push(&s).unwrap();
        }
        SeriesStore::from_dataset(&d, config).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(SeriesStore::new(0, StorageConfig::default()).is_err());
        assert!(SeriesStore::new(
            8,
            StorageConfig {
                page_bytes: 1,
                buffer_pool_pages: 1
            }
        )
        .is_err());
        let mut s = SeriesStore::new(4, StorageConfig::default()).unwrap();
        assert!(s.is_empty());
        assert!(s.append(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(s.append(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.series_len(), 4);
        assert_eq!(s.total_bytes(), 16);
    }

    #[test]
    fn read_returns_correct_series_and_charges_bytes() {
        let store = small_store(10, 4, StorageConfig::on_disk());
        let mut stats = QueryStats::new();
        let s = store.read(3, &mut stats);
        assert_eq!(s, &[12.0, 13.0, 14.0, 15.0]);
        assert_eq!(stats.bytes_read, 16);
    }

    #[test]
    fn sequential_scan_is_mostly_sequential_io() {
        // Page = 64 values = 16 series of length 4.
        let config = StorageConfig {
            page_bytes: 256,
            buffer_pool_pages: 0,
        };
        let store = small_store(64, 4, config);
        let mut stats = QueryStats::new();
        store.read_range(0, 64, &mut stats, &mut |_, _| {});
        // 4 pages: the first positioning is random, the rest sequential.
        assert_eq!(stats.random_ios, 1);
        assert_eq!(stats.sequential_ios, 3);
        assert_eq!(stats.bytes_read, 64 * 16);
    }

    #[test]
    fn scattered_reads_are_random_io() {
        let config = StorageConfig {
            page_bytes: 256, // 16 series/page
            buffer_pool_pages: 0,
        };
        let store = small_store(256, 4, config);
        let mut stats = QueryStats::new();
        // Jump between far-apart pages.
        for r in [0usize, 128, 16, 240, 64] {
            store.read(r, &mut stats);
        }
        assert_eq!(stats.random_ios, 5);
        assert_eq!(stats.sequential_ios, 0);
    }

    #[test]
    fn buffer_pool_absorbs_repeated_access() {
        let config = StorageConfig {
            page_bytes: 256,
            buffer_pool_pages: 1024,
        };
        let store = small_store(64, 4, config);
        let mut stats = QueryStats::new();
        store.read(5, &mut stats);
        store.read(6, &mut stats); // same page -> pool hit
        assert_eq!(stats.random_ios + stats.sequential_ios, 1);
        let snap = store.io_snapshot();
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.random_ios, 1);
    }

    #[test]
    fn reset_io_clears_totals_and_pool() {
        let store = small_store(64, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        store.read(0, &mut stats);
        assert!(store.io_snapshot().random_ios > 0);
        store.reset_io();
        assert_eq!(store.io_snapshot(), IoSnapshot::default());
        let mut stats2 = QueryStats::new();
        store.read(0, &mut stats2);
        assert_eq!(stats2.random_ios, 1, "after reset the first read misses again");
    }

    #[test]
    fn read_range_clamps_to_len() {
        let store = small_store(10, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        let mut seen = Vec::new();
        store.read_range(8, 100, &mut stats, &mut |id, _| seen.push(id));
        assert_eq!(seen, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let store = small_store(4, 4, StorageConfig::in_memory());
        let mut stats = QueryStats::new();
        let _ = store.read(100, &mut stats);
    }
}
