//! # hydra-storage
//!
//! Paged storage with a buffer pool and I/O accounting — resident
//! (simulated) or genuinely file-backed.
//!
//! The paper evaluates on-disk behaviour on 25–250 GB datasets with a
//! RAM-limited server, and reports two implementation-independent measures:
//! the number of random disk accesses and the percentage of data accessed.
//! This crate reproduces those measures at laptop scale. Raw series live in
//! a [`SeriesStore`] with two backings behind one API:
//!
//! * **Resident**: every value in one flat vector; the [`BufferPool`]
//!   tracks page *ids* only and the counters simulate what a spinning disk
//!   would have charged. This is the build-time (and historical) mode.
//! * **File-backed** ([`SeriesStore::file_backed`]): the payload lives in a
//!   file; the pool caches real page frames with LRU eviction, a miss is a
//!   page-granular `pread`, and the counters are *measurements* — which is
//!   what lets the disk-resident zoo serve collections whose raw series
//!   exceed the configured pool.
//!
//! Both backings share one accounting path, so for the same access
//! sequence and [`StorageConfig`] they report identical
//! [`hydra_core::QueryStats`]; only [`IoSnapshot::bytes_read`] differs
//! (simulated page charges vs. real transfers).
//!
//! Indexes route all raw-data reads through the store, so the counters they
//! report reflect the same access-pattern economics that drive the paper's
//! on-disk results: tree indexes with few, large leaves incur few random
//! I/Os; skip-sequential methods read summaries sequentially and pay one
//! random I/O per refined candidate; in-memory methods configure the pool
//! to hold the whole dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod coded;
pub mod store;

pub use buffer::BufferPool;
pub use coded::{CodedHeader, CodedPage, PageCodec, CODED_HEADER_BYTES};
pub use store::{FileIoMode, FileSpan, IoSnapshot, SeriesRead, SeriesStore, StorageConfig};
