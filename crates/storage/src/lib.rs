//! # hydra-storage
//!
//! Simulated paged storage with a buffer pool and I/O accounting.
//!
//! The paper evaluates on-disk behaviour on 25–250 GB datasets with a
//! RAM-limited server, and reports two implementation-independent measures:
//! the number of random disk accesses and the percentage of data accessed.
//! This crate reproduces those measures at laptop scale: raw series live in
//! a [`SeriesStore`] that charges page-granular I/O whenever an access
//! misses the (capacity-bounded) buffer pool, distinguishing *random* from
//! *sequential* page reads exactly like a spinning-disk cost model would.
//!
//! Indexes route all raw-data reads through the store, so the counters they
//! report (via [`hydra_core::QueryStats`]) reflect the same access-pattern
//! economics that drive the paper's on-disk results: tree indexes with few,
//! large leaves incur few random I/Os; skip-sequential methods read
//! summaries sequentially and pay one random I/O per refined candidate;
//! in-memory methods configure the pool to hold the whole dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod store;

pub use buffer::BufferPool;
pub use store::{IoSnapshot, SeriesStore, StorageConfig};
