//! The compressed page tier: per-page affine u8 quantization and f16
//! truncation of series pages.
//!
//! A **coded page** stores every series of one buffer-pool page in a
//! reduced form — one byte (u8) or two (f16) per value instead of four —
//! plus, per series, the exact Euclidean norm of the quantization residual
//! `err = ‖series − decode(codes)‖`. Scans prune candidates on the decoded
//! approximation under the *conservative* bound `best_so_far + err`: by
//! the triangle inequality the true distance satisfies
//! `d(q, x) ≥ d(q, decode(x)) − err`, so a candidate abandoned at that
//! widened bound provably cannot beat the best answer, and only the
//! survivors pay an exact-f32 read. Every returned distance is recomputed
//! from exact f32 values with the same canonical kernel
//! ([`hydra_core::distance`]), which is what keeps answers **bit-identical**
//! to a raw-f32 store while `bytes_read` shrinks by roughly the code
//! width ratio.
//!
//! ## Codecs
//!
//! * [`PageCodec::F32`] — raw pages, no coded tier (the previous
//!   behaviour, and the default).
//! * [`PageCodec::U8`] — per-page affine quantization: the page header
//!   carries `min` and `scale`, each value encodes as
//!   `round((v − min) / scale)` clamped to `0..=255` and decodes as
//!   `min + code · scale` (Seismic-style `QuantizedSummary` layout,
//!   ~3.9× smaller at typical series lengths).
//! * [`PageCodec::F16`] — IEEE 754 binary16 truncation
//!   (round-to-nearest-even, via [`hydra_core::half`]), ~2× smaller with
//!   much tighter residuals.
//!
//! Encoding is total: non-finite inputs yield an infinite residual norm
//! for the affected series, which simply disables pruning for it (every
//! probe falls through to the exact read) — correctness never depends on
//! the data being well-behaved.
//!
//! ## On-disk form
//!
//! File-backed stores read coded pages from a `HYDRCODE` sidecar file
//! (written by `hydra-persist` next to the flat f32 series file): a
//! 64-byte header ([`CodedHeader`]) followed by fixed-stride page records
//! — `[min f32][scale f32][errs f32 × count][codes width × len × count]`,
//! every page at stride [`page_disk_bytes`] of a full page so offsets are
//! computable, the last page possibly holding fewer series.

use hydra_core::{f16_bits_from_f32, f32_from_f16_bits, Error, Result};

/// Magic bytes of a coded sidecar file.
pub const CODED_MAGIC: [u8; 8] = *b"HYDRCODE";
/// Version of the coded sidecar layout.
pub const CODED_VERSION: u32 = 1;
/// Size of the [`CodedHeader`] on disk.
pub const CODED_HEADER_BYTES: u64 = 64;

/// How a [`crate::SeriesStore`] encodes its sealed pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageCodec {
    /// Raw f32 pages — no coded tier (the default).
    #[default]
    F32,
    /// Per-page affine u8 quantization (min/scale header), ~4× smaller.
    U8,
    /// IEEE 754 binary16 values, 2× smaller.
    F16,
}

impl PageCodec {
    /// Bytes per encoded value.
    pub fn code_bytes(self) -> usize {
        match self {
            PageCodec::F32 => 4,
            PageCodec::U8 => 1,
            PageCodec::F16 => 2,
        }
    }

    /// Stable lowercase name, as accepted by `--page-codec`.
    pub fn name(self) -> &'static str {
        match self {
            PageCodec::F32 => "f32",
            PageCodec::U8 => "u8",
            PageCodec::F16 => "f16",
        }
    }

    /// Parses a `--page-codec` value.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] for anything but `u8`, `f16`, `f32`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "f32" => Ok(PageCodec::F32),
            "u8" => Ok(PageCodec::U8),
            "f16" => Ok(PageCodec::F16),
            other => Err(Error::InvalidParameter(format!(
                "unknown page codec '{other}' (expected u8, f16 or f32)"
            ))),
        }
    }

    /// The header tag byte identifying this codec on disk.
    pub fn tag(self) -> u8 {
        match self {
            PageCodec::F32 => 0,
            PageCodec::U8 => 1,
            PageCodec::F16 => 2,
        }
    }

    /// Inverse of [`PageCodec::tag`].
    ///
    /// # Errors
    /// [`Error::Storage`] for an unknown tag.
    pub fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(PageCodec::F32),
            1 => Ok(PageCodec::U8),
            2 => Ok(PageCodec::F16),
            other => Err(Error::Storage(format!("unknown page codec tag {other}"))),
        }
    }
}

/// The encoded values of one page, in the codec's native width.
#[derive(Debug, Clone, PartialEq)]
pub enum PageCodes {
    /// One byte per value (affine codes).
    U8(Vec<u8>),
    /// One binary16 bit pattern per value.
    F16(Vec<u16>),
}

/// One encoded page: the affine header, per-series residual norms, and
/// the packed codes of `count` series.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedPage {
    /// Smallest finite value on the page (u8 codec; 0 for f16).
    pub min: f32,
    /// Quantization step (u8 codec; 1 for f16).
    pub scale: f32,
    /// Per-series residual norm `‖series − decode(codes)‖`, rounded *up*:
    /// an infinite entry disables pruning for that series.
    pub errs: Vec<f32>,
    /// Packed codes, `series_len` values per series.
    pub codes: PageCodes,
}

impl CodedPage {
    /// Encodes `values` (the concatenation of whole series, record order)
    /// with `codec`. `values.len()` must be a multiple of `series_len`.
    ///
    /// # Panics
    /// Panics if `codec` is [`PageCodec::F32`] (raw pages are not encoded)
    /// or the length is not a series multiple.
    pub fn encode(values: &[f32], series_len: usize, codec: PageCodec) -> Self {
        assert!(series_len > 0 && values.len() % series_len == 0);
        let count = values.len() / series_len;
        let (min, scale) = match codec {
            PageCodec::U8 => affine_params(values),
            PageCodec::F16 => (0.0, 1.0),
            PageCodec::F32 => panic!("f32 pages are stored raw, not encoded"),
        };
        let mut errs = Vec::with_capacity(count);
        let codes = match codec {
            PageCodec::U8 => {
                let mut codes = Vec::with_capacity(values.len());
                for series in values.chunks_exact(series_len) {
                    let mut residual = 0.0f64;
                    for &v in series {
                        let q = ((v - min) / scale).round();
                        let c = if q.is_finite() {
                            q.clamp(0.0, 255.0) as u8
                        } else {
                            0
                        };
                        codes.push(c);
                        let d = (v - (min + c as f32 * scale)) as f64;
                        residual += d * d;
                    }
                    errs.push(inflate_residual(residual));
                }
                PageCodes::U8(codes)
            }
            PageCodec::F16 => {
                let mut codes = Vec::with_capacity(values.len());
                for series in values.chunks_exact(series_len) {
                    let mut residual = 0.0f64;
                    for &v in series {
                        let c = f16_bits_from_f32(v);
                        codes.push(c);
                        let d = (v - f32_from_f16_bits(c)) as f64;
                        residual += d * d;
                    }
                    errs.push(inflate_residual(residual));
                }
                PageCodes::F16(codes)
            }
            PageCodec::F32 => unreachable!(),
        };
        Self {
            min,
            scale,
            errs,
            codes,
        }
    }

    /// Number of series on this page.
    pub fn count(&self) -> usize {
        self.errs.len()
    }

    /// Decodes series `idx` into `out` — exactly the values the fused
    /// kernels see (test/diagnostic path).
    pub fn decode_series(&self, idx: usize, series_len: usize, out: &mut Vec<f32>) {
        out.clear();
        let range = idx * series_len..(idx + 1) * series_len;
        match &self.codes {
            PageCodes::U8(c) => {
                out.extend(c[range].iter().map(|&b| self.min + b as f32 * self.scale))
            }
            PageCodes::F16(c) => out.extend(c[range].iter().map(|&b| f32_from_f16_bits(b))),
        }
    }

    /// Approximate heap footprint in f32-equivalents (for buffer-pool
    /// accounting).
    pub fn footprint_values(&self) -> usize {
        let code_bytes = match &self.codes {
            PageCodes::U8(c) => c.len(),
            PageCodes::F16(c) => c.len() * 2,
        };
        self.errs.len() + code_bytes.div_ceil(4) + 2
    }

    /// Serializes this page into its on-disk record (without padding to
    /// the full-page stride; the last page of a file is naturally short).
    pub fn to_disk_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.scale.to_bits().to_le_bytes());
        for &e in &self.errs {
            out.extend_from_slice(&e.to_bits().to_le_bytes());
        }
        match &self.codes {
            PageCodes::U8(c) => out.extend_from_slice(c),
            PageCodes::F16(c) => {
                for &v in c {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses one on-disk page record of `count` series.
    ///
    /// # Errors
    /// [`Error::Storage`] if `bytes` is not exactly the record size.
    pub fn from_disk_bytes(
        bytes: &[u8],
        count: usize,
        series_len: usize,
        codec: PageCodec,
    ) -> Result<Self> {
        let expect = page_disk_bytes(count, series_len, codec);
        if bytes.len() as u64 != expect {
            return Err(Error::Storage(format!(
                "coded page holds {} bytes, expected {expect}",
                bytes.len()
            )));
        }
        let f32_at = |off: usize| {
            f32::from_bits(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()))
        };
        let min = f32_at(0);
        let scale = f32_at(4);
        let errs: Vec<f32> = (0..count).map(|i| f32_at(8 + i * 4)).collect();
        let codes_off = 8 + count * 4;
        let codes = match codec {
            PageCodec::U8 => PageCodes::U8(bytes[codes_off..].to_vec()),
            PageCodec::F16 => PageCodes::F16(
                bytes[codes_off..]
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            PageCodec::F32 => {
                return Err(Error::Storage("f32 pages are never coded".into()));
            }
        };
        Ok(Self {
            min,
            scale,
            errs,
            codes,
        })
    }
}

/// On-disk size of a coded page record holding `count` series.
pub fn page_disk_bytes(count: usize, series_len: usize, codec: PageCodec) -> u64 {
    8 + (count * 4) as u64 + (count * series_len * codec.code_bytes()) as u64
}

/// Logical bytes one coded series charges to a query: the residual norm
/// plus the packed codes.
pub fn coded_series_bytes(series_len: usize, codec: PageCodec) -> u64 {
    4 + (series_len * codec.code_bytes()) as u64
}

/// The affine parameters of a u8 page: `min` over the finite values and
/// `scale = (max − min) / 255`, degenerating to `(0, 1)` when the page is
/// constant or holds no finite value (codes then all decode to `min`).
fn affine_params(values: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    let scale = (max - min) / 255.0;
    if scale.is_finite() && scale > 0.0 {
        (min, scale)
    } else {
        (min, 1.0)
    }
}

/// Rounds a residual norm *up* so the pruning bound stays conservative
/// against its own floating-point evaluation; non-finite residuals become
/// `+∞` (pruning disabled for the series).
fn inflate_residual(sum_sq: f64) -> f32 {
    let err = sum_sq.sqrt();
    if err.is_finite() {
        (err * 1.000_001 + 1e-7) as f32
    } else {
        f32::INFINITY
    }
}

/// The widened early-abandonment bound for pruning on a decoded
/// approximation: `best_so_far + err` plus a small guard absorbing the
/// float rounding of the kernel's partial sums. Every failure mode rounds
/// toward *not* pruning: an infinite bound (or overflow) never prunes.
pub fn conservative_threshold(best_so_far: f32, err: f32) -> f32 {
    if !best_so_far.is_finite() {
        return best_so_far;
    }
    let t = best_so_far + err;
    t + t * 1e-3 + 1e-3
}

/// Header of a `HYDRCODE` sidecar file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedHeader {
    /// Codec of every page in the file.
    pub codec: PageCodec,
    /// Length of each series.
    pub series_len: u64,
    /// Number of encoded series.
    pub records: u64,
    /// Series per (full) page — pins the page grouping, which must match
    /// the attaching store's [`crate::StorageConfig::page_bytes`].
    pub series_per_page: u64,
    /// Fingerprint of the *source* f32 payload the codes were derived
    /// from, tying the cache to its raw file.
    pub source_fingerprint: u64,
    /// Fingerprint of the coded payload itself (everything after the
    /// header), for integrity validation on reuse.
    pub payload_fingerprint: u64,
}

impl CodedHeader {
    /// Serializes the header into its fixed 64-byte form.
    pub fn encode(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[0..8].copy_from_slice(&CODED_MAGIC);
        out[8..12].copy_from_slice(&CODED_VERSION.to_le_bytes());
        out[12] = self.codec.tag();
        out[16..24].copy_from_slice(&self.series_len.to_le_bytes());
        out[24..32].copy_from_slice(&self.records.to_le_bytes());
        out[32..40].copy_from_slice(&self.series_per_page.to_le_bytes());
        out[40..48].copy_from_slice(&self.source_fingerprint.to_le_bytes());
        out[48..56].copy_from_slice(&self.payload_fingerprint.to_le_bytes());
        out
    }

    /// Parses and validates a 64-byte header.
    ///
    /// # Errors
    /// [`Error::Storage`] on a wrong magic, version, or codec tag.
    pub fn decode(bytes: &[u8; 64]) -> Result<Self> {
        if bytes[0..8] != CODED_MAGIC {
            return Err(Error::Storage("not a HYDRCODE file".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != CODED_VERSION {
            return Err(Error::Storage(format!(
                "unsupported HYDRCODE version {version}"
            )));
        }
        let u64_at =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        Ok(Self {
            codec: PageCodec::from_tag(bytes[12])?,
            series_len: u64_at(16),
            records: u64_at(24),
            series_per_page: u64_at(32),
            source_fingerprint: u64_at(40),
            payload_fingerprint: u64_at(48),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_values(count: usize, len: usize) -> Vec<f32> {
        (0..count * len)
            .map(|i| (i as f32 * 0.7).sin() * 5.0 - 1.0)
            .collect()
    }

    #[test]
    fn codec_names_tags_and_parsing_round_trip() {
        for codec in [PageCodec::F32, PageCodec::U8, PageCodec::F16] {
            assert_eq!(PageCodec::parse(codec.name()).unwrap(), codec);
            assert_eq!(PageCodec::from_tag(codec.tag()).unwrap(), codec);
        }
        assert!(PageCodec::parse("lz4").is_err());
        assert!(PageCodec::from_tag(9).is_err());
        assert_eq!(PageCodec::default(), PageCodec::F32);
        assert_eq!(PageCodec::U8.code_bytes(), 1);
        assert_eq!(PageCodec::F16.code_bytes(), 2);
    }

    #[test]
    fn u8_residual_norm_bounds_the_true_decode_error() {
        let len = 16;
        let values = page_values(5, len);
        let page = CodedPage::encode(&values, len, PageCodec::U8);
        assert_eq!(page.count(), 5);
        let mut decoded = Vec::new();
        for (idx, series) in values.chunks_exact(len).enumerate() {
            page.decode_series(idx, len, &mut decoded);
            let true_err = hydra_core::euclidean(series, &decoded);
            assert!(
                page.errs[idx] >= true_err,
                "series {idx}: stored err {} < true err {true_err}",
                page.errs[idx]
            );
            // And not wildly inflated: one quantization step per value.
            assert!(page.errs[idx] <= page.scale * (len as f32).sqrt() + 1e-3);
        }
    }

    #[test]
    fn f16_residuals_are_much_tighter_than_u8() {
        let len = 32;
        let values = page_values(4, len);
        let u8_page = CodedPage::encode(&values, len, PageCodec::U8);
        let f16_page = CodedPage::encode(&values, len, PageCodec::F16);
        for idx in 0..4 {
            assert!(f16_page.errs[idx] < u8_page.errs[idx]);
        }
    }

    #[test]
    fn encode_is_total_on_hostile_values() {
        let values = vec![f32::INFINITY, f32::NAN, 1.0, -2.0];
        for codec in [PageCodec::U8, PageCodec::F16] {
            let page = CodedPage::encode(&values, 2, codec);
            // The series containing non-finite values must never prune.
            assert_eq!(page.errs[0], f32::INFINITY, "{codec:?}");
            assert!(page.errs[1].is_finite());
        }
        // A constant page degenerates gracefully.
        let flat = CodedPage::encode(&[3.0; 8], 4, PageCodec::U8);
        let mut out = Vec::new();
        flat.decode_series(1, 4, &mut out);
        assert_eq!(out, vec![3.0; 4]);
        assert!(flat.errs.iter().all(|&e| e <= 1e-6));
    }

    #[test]
    fn disk_round_trip_is_exact() {
        let len = 7;
        for codec in [PageCodec::U8, PageCodec::F16] {
            let page = CodedPage::encode(&page_values(3, len), len, codec);
            let bytes = page.to_disk_bytes();
            assert_eq!(bytes.len() as u64, page_disk_bytes(3, len, codec));
            let back = CodedPage::from_disk_bytes(&bytes, 3, len, codec).unwrap();
            assert_eq!(back, page);
            assert!(CodedPage::from_disk_bytes(&bytes[1..], 3, len, codec).is_err());
        }
    }

    #[test]
    fn header_round_trip_and_validation() {
        let h = CodedHeader {
            codec: PageCodec::U8,
            series_len: 96,
            records: 1000,
            series_per_page: 170,
            source_fingerprint: 0xDEAD_BEEF,
            payload_fingerprint: 0xFEED_FACE,
        };
        let bytes = h.encode();
        assert_eq!(CodedHeader::decode(&bytes).unwrap(), h);
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(CodedHeader::decode(&bad).is_err());
        let mut wrong_version = bytes;
        wrong_version[8] = 99;
        assert!(CodedHeader::decode(&wrong_version).is_err());
    }

    #[test]
    fn conservative_threshold_never_narrows_the_bound() {
        assert_eq!(conservative_threshold(f32::INFINITY, 1.0), f32::INFINITY);
        let t = conservative_threshold(10.0, 0.5);
        assert!(t > 10.5);
        // Overflow degrades to "never prune", not to a narrow bound.
        assert_eq!(conservative_threshold(f32::MAX, f32::MAX), f32::INFINITY);
        assert_eq!(conservative_threshold(1.0, f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn byte_economics_match_the_advertised_ratios() {
        // len=256: raw series = 1024 bytes; u8 codes + err = 260 (3.94x);
        // f16 = 516 (1.98x).
        assert_eq!(coded_series_bytes(256, PageCodec::U8), 260);
        assert_eq!(coded_series_bytes(256, PageCodec::F16), 516);
        assert_eq!(page_disk_bytes(16, 256, PageCodec::U8), 8 + 64 + 4096);
    }
}
