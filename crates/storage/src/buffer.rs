//! A capacity-bounded LRU buffer pool of page identifiers.
//!
//! The pool does not hold page *contents* (the simulated store keeps all
//! values in one flat vector); it only tracks which pages would currently be
//! resident in memory, which is all that is needed to decide whether an
//! access costs an I/O.

use std::collections::{BTreeMap, HashMap};

/// LRU set of page ids with a fixed capacity.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page -> last-use timestamp
    pages: HashMap<u64, u64>,
    /// last-use timestamp -> page (for O(log n) eviction)
    lru: BTreeMap<u64, u64>,
    clock: u64,
}

impl BufferPool {
    /// Creates a pool able to hold `capacity` pages. A capacity of zero
    /// means every access misses (pure cold-cache disk behaviour).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Records an access to `page`. Returns `true` if the page was already
    /// resident (hit), `false` if it had to be "read from disk" (miss).
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        if let Some(ts) = self.pages.get_mut(&page) {
            self.lru.remove(ts);
            *ts = self.clock;
            self.lru.insert(self.clock, page);
            return true;
        }
        if self.capacity == 0 {
            return false;
        }
        if self.pages.len() >= self.capacity {
            // Evict the least recently used page.
            if let Some((&oldest_ts, &victim)) = self.lru.iter().next() {
                self.lru.remove(&oldest_ts);
                self.pages.remove(&victim);
            }
        }
        self.pages.insert(page, self.clock);
        self.lru.insert(self.clock, page);
        false
    }

    /// Whether `page` is currently resident (without touching recency).
    pub fn contains(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Drops every resident page (the paper clears OS caches between the
    /// index-building and query-answering steps).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut p = BufferPool::new(4);
        assert!(!p.access(1));
        assert!(p.access(1));
        assert_eq!(p.len(), 1);
        assert!(p.contains(1));
        assert!(!p.is_empty());
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.access(1);
        p.access(2);
        p.access(1); // 1 is now more recent than 2
        p.access(3); // evicts 2
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(7));
        assert!(!p.access(7));
        assert!(p.is_empty());
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut p = BufferPool::new(8);
        for i in 0..5 {
            p.access(i);
        }
        p.clear();
        assert!(p.is_empty());
        assert!(!p.access(0), "after clear, accesses miss again");
    }

    #[test]
    fn large_workload_respects_capacity() {
        let mut p = BufferPool::new(16);
        for i in 0..10_000u64 {
            p.access(i % 64);
        }
        assert!(p.len() <= 16);
    }
}
