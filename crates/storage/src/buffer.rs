//! A capacity-bounded LRU buffer pool of disk pages.
//!
//! The pool serves two backings of [`crate::SeriesStore`]:
//!
//! * **Resident** (simulated) stores keep every value in one flat vector,
//!   so the pool only tracks page *identifiers* ([`BufferPool::access`]) —
//!   enough to decide whether an access would have cost an I/O.
//! * **File-backed** stores have no resident copy: the pool caches the
//!   actual page *contents* as shared frames ([`BufferPool::fetch`] /
//!   [`BufferPool::install`]), and an eviction really drops bytes that the
//!   next access must `pread` back from disk.
//!
//! Both entry points share one LRU: the hit/miss/eviction sequence for a
//! given access pattern and capacity is identical whether frames are
//! cached or not, which is what lets a file-backed store reproduce the
//! simulated store's I/O accounting exactly.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::coded::CodedPage;

/// The cached contents of one page. A store caches either raw f32 frames
/// (the f32 codec) or coded pages (the u8/f16 codecs) — one kind per
/// store, but the pool itself is agnostic: hit/miss/eviction decisions
/// depend only on page identity, never on the frame representation.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A raw page frame of f32 values.
    Raw(Arc<[f32]>),
    /// A compressed page (u8/f16 codes plus residual norms).
    Coded(Arc<CodedPage>),
}

impl Frame {
    /// Approximate footprint in f32-equivalents, for
    /// [`BufferPool::resident_values`].
    fn values(&self) -> usize {
        match self {
            Frame::Raw(f) => f.len(),
            Frame::Coded(p) => p.footprint_values(),
        }
    }

    /// The raw f32 frame, if this is one.
    pub fn as_raw(&self) -> Option<Arc<[f32]>> {
        match self {
            Frame::Raw(f) => Some(Arc::clone(f)),
            Frame::Coded(_) => None,
        }
    }

    /// The coded page, if this is one.
    pub fn as_coded(&self) -> Option<Arc<CodedPage>> {
        match self {
            Frame::Coded(p) => Some(Arc::clone(p)),
            Frame::Raw(_) => None,
        }
    }
}

/// One resident page: its recency timestamp and, for file-backed stores,
/// the cached frame contents.
#[derive(Debug)]
struct Slot {
    ts: u64,
    frame: Option<Frame>,
}

/// LRU set of pages with a fixed capacity, optionally caching page bytes.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page -> slot (timestamp + optional cached frame)
    pages: HashMap<u64, Slot>,
    /// last-use timestamp -> page (for O(log n) eviction)
    lru: BTreeMap<u64, u64>,
    clock: u64,
    evictions: u64,
    /// Total `f32` values held by cached frames (0 in id-only mode).
    resident_values: usize,
}

impl BufferPool {
    /// Creates a pool able to hold `capacity` pages. A capacity of zero
    /// means every access misses (pure cold-cache disk behaviour).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            evictions: 0,
            resident_values: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Pages evicted since creation (or the last [`BufferPool::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total `f32` values held by cached frames — the pool's real memory
    /// footprint in file-backed mode (always 0 in id-only mode).
    pub fn resident_values(&self) -> usize {
        self.resident_values
    }

    /// Marks `page` as most recently used. Returns `true` if it was
    /// resident.
    fn touch(&mut self, page: u64) -> bool {
        self.clock += 1;
        if let Some(slot) = self.pages.get_mut(&page) {
            self.lru.remove(&slot.ts);
            slot.ts = self.clock;
            self.lru.insert(self.clock, page);
            true
        } else {
            false
        }
    }

    /// Evicts the least recently used page if the pool is full.
    fn make_room(&mut self) {
        if self.pages.len() >= self.capacity {
            if let Some((&oldest_ts, &victim)) = self.lru.iter().next() {
                self.lru.remove(&oldest_ts);
                if let Some(slot) = self.pages.remove(&victim) {
                    if let Some(frame) = slot.frame {
                        self.resident_values -= frame.values();
                    }
                }
                self.evictions += 1;
            }
        }
    }

    fn insert_slot(&mut self, page: u64, frame: Option<Frame>) {
        if self.capacity == 0 {
            return;
        }
        // A fresh timestamp of its own: an install is not required to be
        // paired with a fetch, so it must never reuse the clock value of an
        // earlier touch (two LRU entries would collide).
        self.clock += 1;
        self.make_room();
        if let Some(frame) = &frame {
            self.resident_values += frame.values();
        }
        self.pages.insert(
            page,
            Slot {
                ts: self.clock,
                frame,
            },
        );
        self.lru.insert(self.clock, page);
    }

    /// Records an id-only access to `page` (resident/simulated stores).
    /// Returns `true` if the page was already resident (hit), `false` if it
    /// had to be "read from disk" (miss, now cached).
    pub fn access(&mut self, page: u64) -> bool {
        if self.touch(page) {
            return true;
        }
        self.insert_slot(page, None);
        false
    }

    /// Looks up the cached frame of `page` (file-backed stores). A hit
    /// touches recency and returns a shared handle to the frame; a miss
    /// returns `None` — the caller reads the page from disk and
    /// [`BufferPool::install`]s it.
    pub fn fetch(&mut self, page: u64) -> Option<Frame> {
        if self.touch(page) {
            self.pages.get(&page).and_then(|slot| slot.frame.clone())
        } else {
            None
        }
    }

    /// Caches the frame a [`BufferPool::fetch`] miss loaded from disk,
    /// evicting the least recently used page if the pool is full. A
    /// zero-capacity pool caches nothing.
    pub fn install(&mut self, page: u64, frame: Frame) {
        debug_assert!(
            !self.pages.contains_key(&page),
            "install after a fetch hit would duplicate page {page}"
        );
        self.insert_slot(page, Some(frame));
    }

    /// Whether `page` is currently resident (without touching recency).
    pub fn contains(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Drops `page` from the pool if resident, without counting an
    /// eviction — this is an *invalidation* (the cached frame no longer
    /// reflects the store, e.g. because an append extended the page), not a
    /// capacity decision. The next access misses and reloads fresh bytes.
    pub fn remove(&mut self, page: u64) {
        if let Some(slot) = self.pages.remove(&page) {
            self.lru.remove(&slot.ts);
            if let Some(frame) = slot.frame {
                self.resident_values -= frame.values();
            }
        }
    }

    /// Drops every resident page and zeroes the eviction counter (the paper
    /// clears OS caches between the index-building and query-answering
    /// steps).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lru.clear();
        self.evictions = 0;
        self.resident_values = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut p = BufferPool::new(4);
        assert!(!p.access(1));
        assert!(p.access(1));
        assert_eq!(p.len(), 1);
        assert!(p.contains(1));
        assert!(!p.is_empty());
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.evictions(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.access(1);
        p.access(2);
        p.access(1); // 1 is now more recent than 2
        p.access(3); // evicts 2
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.evictions(), 1);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(7));
        assert!(!p.access(7));
        assert!(p.is_empty());
        assert_eq!(p.evictions(), 0);
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut p = BufferPool::new(8);
        for i in 0..5 {
            p.access(i);
        }
        p.clear();
        assert!(p.is_empty());
        assert!(!p.access(0), "after clear, accesses miss again");
    }

    #[test]
    fn large_workload_respects_capacity() {
        let mut p = BufferPool::new(16);
        for i in 0..10_000u64 {
            p.access(i % 64);
        }
        assert!(p.len() <= 16);
        assert!(p.evictions() > 0);
    }

    fn frame(values: &[f32]) -> Frame {
        Frame::Raw(Arc::from(values.to_vec()))
    }

    #[test]
    fn fetch_and_install_cache_real_frames() {
        let mut p = BufferPool::new(2);
        assert!(p.fetch(0).is_none(), "cold pool misses");
        p.install(0, frame(&[1.0, 2.0]));
        assert_eq!(
            p.fetch(0).and_then(|f| f.as_raw()).as_deref(),
            Some(&[1.0f32, 2.0][..])
        );
        assert_eq!(p.resident_values(), 2);
        p.install(1, frame(&[3.0]));
        assert_eq!(p.resident_values(), 3);
        // Touch 0, then install 2: the LRU victim is 1 and its bytes are
        // genuinely dropped.
        assert!(p.fetch(0).is_some());
        p.install(2, frame(&[4.0, 5.0, 6.0]));
        assert!(p.fetch(1).is_none(), "evicted frame is gone");
        assert_eq!(p.evictions(), 1);
        assert_eq!(p.resident_values(), 5);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn capacity_one_pool_holds_exactly_the_last_frame() {
        let mut p = BufferPool::new(1);
        // Pinned hit/miss/eviction sequence for pages 0,0,1,0 at capacity 1:
        // miss, hit, miss(evict 0), miss(evict 1).
        assert!(p.fetch(0).is_none());
        p.install(0, frame(&[0.0]));
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        p.install(1, frame(&[1.0]));
        assert!(p.fetch(0).is_none());
        p.install(0, frame(&[0.0]));
        assert_eq!(p.evictions(), 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.resident_values(), 1);
    }

    #[test]
    fn zero_capacity_never_caches_frames() {
        let mut p = BufferPool::new(0);
        assert!(p.fetch(3).is_none());
        p.install(3, frame(&[9.0]));
        assert!(p.fetch(3).is_none());
        assert_eq!(p.resident_values(), 0);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn remove_invalidates_without_counting_an_eviction() {
        let mut p = BufferPool::new(2);
        p.install(0, frame(&[1.0, 2.0]));
        p.install(1, frame(&[3.0]));
        p.remove(0);
        assert!(!p.contains(0));
        assert!(p.fetch(0).is_none(), "an invalidated page must miss");
        assert_eq!(p.evictions(), 0, "invalidation is not an eviction");
        assert_eq!(p.resident_values(), 1);
        assert_eq!(p.len(), 1);
        // Removing an absent page is a no-op.
        p.remove(42);
        assert_eq!(p.len(), 1);
        // The freed slot is genuinely reusable without evicting.
        p.install(2, frame(&[4.0]));
        assert_eq!(p.evictions(), 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn id_only_and_frame_modes_share_one_lru_policy() {
        // The same access pattern at the same capacity produces the same
        // hit/miss sequence through both entry points.
        let pattern = [0u64, 1, 2, 0, 3, 1, 1, 4, 0];
        let capacity = 2;
        let mut id_only = BufferPool::new(capacity);
        let id_hits: Vec<bool> = pattern.iter().map(|&pg| id_only.access(pg)).collect();
        let mut framed = BufferPool::new(capacity);
        let frame_hits: Vec<bool> = pattern
            .iter()
            .map(|&pg| {
                if framed.fetch(pg).is_some() {
                    true
                } else {
                    framed.install(pg, frame(&[pg as f32]));
                    false
                }
            })
            .collect();
        assert_eq!(id_hits, frame_hits);
        assert_eq!(id_only.evictions(), framed.evictions());
    }

    #[test]
    fn coded_frames_share_the_pool_and_its_accounting() {
        use crate::coded::{CodedPage, PageCodec};
        let mut p = BufferPool::new(1);
        let page = Arc::new(CodedPage::encode(&[1.0, 2.0, 3.0, 4.0], 2, PageCodec::U8));
        p.install(0, Frame::Coded(Arc::clone(&page)));
        let hit = p.fetch(0).expect("installed frame is resident");
        assert!(hit.as_coded().is_some());
        assert!(hit.as_raw().is_none(), "a coded frame is not a raw one");
        assert!(p.resident_values() > 0);
        p.remove(0);
        assert_eq!(p.resident_values(), 0, "footprint accounting balances");
    }
}
