//! A capacity-bounded LRU buffer pool of disk pages.
//!
//! The pool serves two backings of [`crate::SeriesStore`]:
//!
//! * **Resident** (simulated) stores keep every value in one flat vector,
//!   so the pool only tracks page *identifiers* ([`BufferPool::access`]) —
//!   enough to decide whether an access would have cost an I/O.
//! * **File-backed** stores have no resident copy: the pool caches the
//!   actual page *contents* as shared frames ([`BufferPool::fetch`] /
//!   [`BufferPool::install`]), and an eviction really drops bytes that the
//!   next access must `pread` back from disk.
//!
//! Both entry points share one LRU: the hit/miss/eviction sequence for a
//! given access pattern and capacity is identical whether frames are
//! cached or not, which is what lets a file-backed store reproduce the
//! simulated store's I/O accounting exactly.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::coded::CodedPage;

/// The cached contents of one page. A store caches either raw f32 frames
/// (the f32 codec) or coded pages (the u8/f16 codecs) — one kind per
/// store, but the pool itself is agnostic: hit/miss/eviction decisions
/// depend only on page identity, never on the frame representation.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A raw page frame of f32 values.
    Raw(Arc<[f32]>),
    /// A compressed page (u8/f16 codes plus residual norms).
    Coded(Arc<CodedPage>),
}

impl Frame {
    /// Approximate footprint in f32-equivalents, for
    /// [`BufferPool::resident_values`].
    fn values(&self) -> usize {
        match self {
            Frame::Raw(f) => f.len(),
            Frame::Coded(p) => p.footprint_values(),
        }
    }

    /// The raw f32 frame, if this is one.
    pub fn as_raw(&self) -> Option<Arc<[f32]>> {
        match self {
            Frame::Raw(f) => Some(Arc::clone(f)),
            Frame::Coded(_) => None,
        }
    }

    /// The coded page, if this is one.
    pub fn as_coded(&self) -> Option<Arc<CodedPage>> {
        match self {
            Frame::Coded(p) => Some(Arc::clone(p)),
            Frame::Raw(_) => None,
        }
    }
}

/// One resident page: its recency timestamp and, for file-backed stores,
/// the cached frame contents.
#[derive(Debug)]
struct Slot {
    ts: u64,
    frame: Option<Frame>,
}

/// LRU set of pages with a fixed capacity, optionally caching page bytes.
///
/// Pages can additionally be **pinned** ([`BufferPool::pin`]): a batch that
/// knows its working set up front pins those pages so that its own
/// scattered accesses cannot evict them mid-batch. Pinning never changes
/// the hit/miss accounting of an access — it only constrains the *victim
/// choice*: eviction takes the least recently used unpinned page, and if
/// every resident page is pinned the pool degrades to read-through (the
/// new page is served but not cached). Pins are reference-counted so
/// concurrent batches compose.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page -> slot (timestamp + optional cached frame)
    pages: HashMap<u64, Slot>,
    /// last-use timestamp -> page (for O(log n) eviction)
    lru: BTreeMap<u64, u64>,
    /// page -> pin count (pages a running batch declared as working set)
    pins: HashMap<u64, u32>,
    clock: u64,
    evictions: u64,
    /// Total `f32` values held by cached frames (0 in id-only mode).
    resident_values: usize,
}

impl BufferPool {
    /// Creates a pool able to hold `capacity` pages. A capacity of zero
    /// means every access misses (pure cold-cache disk behaviour).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            pins: HashMap::new(),
            clock: 0,
            evictions: 0,
            resident_values: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Pages evicted since creation (or the last [`BufferPool::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total `f32` values held by cached frames — the pool's real memory
    /// footprint in file-backed mode (always 0 in id-only mode).
    pub fn resident_values(&self) -> usize {
        self.resident_values
    }

    /// Marks `page` as most recently used. Returns `true` if it was
    /// resident.
    fn touch(&mut self, page: u64) -> bool {
        self.clock += 1;
        if let Some(slot) = self.pages.get_mut(&page) {
            self.lru.remove(&slot.ts);
            slot.ts = self.clock;
            self.lru.insert(self.clock, page);
            true
        } else {
            false
        }
    }

    /// Makes a slot available, evicting the least recently used *unpinned*
    /// page if the pool is full. Returns `false` when no slot could be
    /// freed because every resident page is pinned — the caller then skips
    /// caching (read-through).
    fn make_room(&mut self) -> bool {
        if self.pages.len() < self.capacity {
            return true;
        }
        let victim = self
            .lru
            .iter()
            .find(|(_, page)| !self.pins.contains_key(page))
            .map(|(&ts, &page)| (ts, page));
        let Some((oldest_ts, victim)) = victim else {
            return false;
        };
        self.lru.remove(&oldest_ts);
        if let Some(slot) = self.pages.remove(&victim) {
            if let Some(frame) = slot.frame {
                self.resident_values -= frame.values();
            }
        }
        self.evictions += 1;
        true
    }

    fn insert_slot(&mut self, page: u64, frame: Option<Frame>) {
        if self.capacity == 0 {
            return;
        }
        // A fresh timestamp of its own: an install is not required to be
        // paired with a fetch, so it must never reuse the clock value of an
        // earlier touch (two LRU entries would collide).
        self.clock += 1;
        if !self.make_room() {
            return;
        }
        if let Some(frame) = &frame {
            self.resident_values += frame.values();
        }
        self.pages.insert(
            page,
            Slot {
                ts: self.clock,
                frame,
            },
        );
        self.lru.insert(self.clock, page);
    }

    /// Records an id-only access to `page` (resident/simulated stores).
    /// Returns `true` if the page was already resident (hit), `false` if it
    /// had to be "read from disk" (miss, now cached).
    pub fn access(&mut self, page: u64) -> bool {
        if self.touch(page) {
            return true;
        }
        self.insert_slot(page, None);
        false
    }

    /// Looks up the cached frame of `page` (file-backed stores). A hit
    /// touches recency and returns a shared handle to the frame; a miss
    /// returns `None` — the caller reads the page from disk and
    /// [`BufferPool::install`]s it.
    pub fn fetch(&mut self, page: u64) -> Option<Frame> {
        if self.touch(page) {
            self.pages.get(&page).and_then(|slot| slot.frame.clone())
        } else {
            None
        }
    }

    /// Caches the frame a [`BufferPool::fetch`] miss loaded from disk,
    /// evicting the least recently used page if the pool is full. A
    /// zero-capacity pool caches nothing.
    pub fn install(&mut self, page: u64, frame: Frame) {
        debug_assert!(
            !self.pages.contains_key(&page),
            "install after a fetch hit would duplicate page {page}"
        );
        self.insert_slot(page, Some(frame));
    }

    /// Whether `page` is currently resident (without touching recency).
    pub fn contains(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Pins `page`: while pinned it is never chosen as an eviction victim.
    /// Pinning is reference-counted ([`BufferPool::unpin`] releases one
    /// count) and independent of residency — pinning a non-resident page
    /// protects it from the moment it is cached. Pins never change
    /// hit/miss accounting, only victim choice.
    pub fn pin(&mut self, page: u64) {
        *self.pins.entry(page).or_insert(0) += 1;
    }

    /// Releases one pin count of `page`; at zero the page rejoins the
    /// plain LRU victim order at its current recency. Unpinning a page
    /// that was never pinned is a no-op.
    pub fn unpin(&mut self, page: u64) {
        if let Some(count) = self.pins.get_mut(&page) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&page);
            }
        }
    }

    /// Whether `page` currently holds at least one pin.
    pub fn is_pinned(&self, page: u64) -> bool {
        self.pins.contains_key(&page)
    }

    /// Number of distinct currently pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.pins.len()
    }

    /// Drops `page` from the pool if resident, without counting an
    /// eviction — this is an *invalidation* (the cached frame no longer
    /// reflects the store, e.g. because an append extended the page), not a
    /// capacity decision. The next access misses and reloads fresh bytes.
    pub fn remove(&mut self, page: u64) {
        if let Some(slot) = self.pages.remove(&page) {
            self.lru.remove(&slot.ts);
            if let Some(frame) = slot.frame {
                self.resident_values -= frame.values();
            }
        }
    }

    /// Drops every resident page and zeroes the eviction counter (the paper
    /// clears OS caches between the index-building and query-answering
    /// steps). Pins are left in place: they belong to an in-flight batch,
    /// not to the cache contents.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lru.clear();
        self.evictions = 0;
        self.resident_values = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut p = BufferPool::new(4);
        assert!(!p.access(1));
        assert!(p.access(1));
        assert_eq!(p.len(), 1);
        assert!(p.contains(1));
        assert!(!p.is_empty());
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.evictions(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.access(1);
        p.access(2);
        p.access(1); // 1 is now more recent than 2
        p.access(3); // evicts 2
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.evictions(), 1);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(7));
        assert!(!p.access(7));
        assert!(p.is_empty());
        assert_eq!(p.evictions(), 0);
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut p = BufferPool::new(8);
        for i in 0..5 {
            p.access(i);
        }
        p.clear();
        assert!(p.is_empty());
        assert!(!p.access(0), "after clear, accesses miss again");
    }

    #[test]
    fn large_workload_respects_capacity() {
        let mut p = BufferPool::new(16);
        for i in 0..10_000u64 {
            p.access(i % 64);
        }
        assert!(p.len() <= 16);
        assert!(p.evictions() > 0);
    }

    fn frame(values: &[f32]) -> Frame {
        Frame::Raw(Arc::from(values.to_vec()))
    }

    #[test]
    fn fetch_and_install_cache_real_frames() {
        let mut p = BufferPool::new(2);
        assert!(p.fetch(0).is_none(), "cold pool misses");
        p.install(0, frame(&[1.0, 2.0]));
        assert_eq!(
            p.fetch(0).and_then(|f| f.as_raw()).as_deref(),
            Some(&[1.0f32, 2.0][..])
        );
        assert_eq!(p.resident_values(), 2);
        p.install(1, frame(&[3.0]));
        assert_eq!(p.resident_values(), 3);
        // Touch 0, then install 2: the LRU victim is 1 and its bytes are
        // genuinely dropped.
        assert!(p.fetch(0).is_some());
        p.install(2, frame(&[4.0, 5.0, 6.0]));
        assert!(p.fetch(1).is_none(), "evicted frame is gone");
        assert_eq!(p.evictions(), 1);
        assert_eq!(p.resident_values(), 5);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn capacity_one_pool_holds_exactly_the_last_frame() {
        let mut p = BufferPool::new(1);
        // Pinned hit/miss/eviction sequence for pages 0,0,1,0 at capacity 1:
        // miss, hit, miss(evict 0), miss(evict 1).
        assert!(p.fetch(0).is_none());
        p.install(0, frame(&[0.0]));
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        p.install(1, frame(&[1.0]));
        assert!(p.fetch(0).is_none());
        p.install(0, frame(&[0.0]));
        assert_eq!(p.evictions(), 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.resident_values(), 1);
    }

    #[test]
    fn zero_capacity_never_caches_frames() {
        let mut p = BufferPool::new(0);
        assert!(p.fetch(3).is_none());
        p.install(3, frame(&[9.0]));
        assert!(p.fetch(3).is_none());
        assert_eq!(p.resident_values(), 0);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn remove_invalidates_without_counting_an_eviction() {
        let mut p = BufferPool::new(2);
        p.install(0, frame(&[1.0, 2.0]));
        p.install(1, frame(&[3.0]));
        p.remove(0);
        assert!(!p.contains(0));
        assert!(p.fetch(0).is_none(), "an invalidated page must miss");
        assert_eq!(p.evictions(), 0, "invalidation is not an eviction");
        assert_eq!(p.resident_values(), 1);
        assert_eq!(p.len(), 1);
        // Removing an absent page is a no-op.
        p.remove(42);
        assert_eq!(p.len(), 1);
        // The freed slot is genuinely reusable without evicting.
        p.install(2, frame(&[4.0]));
        assert_eq!(p.evictions(), 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn id_only_and_frame_modes_share_one_lru_policy() {
        // The same access pattern at the same capacity produces the same
        // hit/miss sequence through both entry points.
        let pattern = [0u64, 1, 2, 0, 3, 1, 1, 4, 0];
        let capacity = 2;
        let mut id_only = BufferPool::new(capacity);
        let id_hits: Vec<bool> = pattern.iter().map(|&pg| id_only.access(pg)).collect();
        let mut framed = BufferPool::new(capacity);
        let frame_hits: Vec<bool> = pattern
            .iter()
            .map(|&pg| {
                if framed.fetch(pg).is_some() {
                    true
                } else {
                    framed.install(pg, frame(&[pg as f32]));
                    false
                }
            })
            .collect();
        assert_eq!(id_hits, frame_hits);
        assert_eq!(id_only.evictions(), framed.evictions());
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut p = BufferPool::new(2);
        p.pin(0);
        p.access(0);
        for page in 1..20u64 {
            p.access(page);
        }
        assert!(p.contains(0), "pinned page survived the sweep");
        assert!(p.is_pinned(0));
        assert_eq!(p.len(), 2);
        p.unpin(0);
        // Unpinned, it is the LRU victim again.
        p.access(100);
        assert!(!p.contains(0), "after release the plain LRU order applies");
    }

    #[test]
    fn fully_pinned_pool_degrades_to_read_through() {
        let mut p = BufferPool::new(1);
        p.pin(0);
        assert!(!p.access(0));
        let evictions_before = p.evictions();
        // The only slot is pinned: new pages are served but not cached,
        // and nothing is evicted.
        assert!(!p.access(1));
        assert!(!p.access(1), "read-through pages keep missing");
        assert!(p.access(0), "the pinned page is still resident");
        assert_eq!(p.evictions(), evictions_before);
        assert_eq!(p.len(), 1);
        p.unpin(0);
        assert!(!p.access(2));
        assert!(!p.contains(0), "release re-enables eviction");
    }

    #[test]
    fn pins_are_reference_counted() {
        let mut p = BufferPool::new(1);
        p.pin(3);
        p.pin(3);
        p.access(3);
        p.unpin(3);
        assert!(p.is_pinned(3), "one of two pins released");
        p.access(4);
        assert!(p.contains(3));
        p.unpin(3);
        assert!(!p.is_pinned(3));
        assert_eq!(p.pinned_pages(), 0);
        // Unpinning a never-pinned page is a no-op.
        p.unpin(77);
        p.access(5);
        assert!(!p.contains(3));
    }

    #[test]
    fn pinning_never_changes_hit_or_miss_accounting() {
        // The same access pattern with and without pins yields the same
        // hit/miss sequence whenever the pinned pages are the ones LRU
        // would have kept anyway.
        let pattern = [0u64, 1, 0, 1, 0, 1];
        let mut plain = BufferPool::new(2);
        let plain_hits: Vec<bool> = pattern.iter().map(|&pg| plain.access(pg)).collect();
        let mut pinned = BufferPool::new(2);
        pinned.pin(0);
        pinned.pin(1);
        let pinned_hits: Vec<bool> = pattern.iter().map(|&pg| pinned.access(pg)).collect();
        assert_eq!(plain_hits, pinned_hits);
        assert_eq!(plain.evictions(), pinned.evictions());
    }

    /// Reference LRU-with-pins model, mirroring the documented pool
    /// semantics move for move. The proptests below replay random op
    /// sequences against both and require identical observable state.
    struct ModelPool {
        capacity: usize,
        /// Resident pages, least recently used first.
        recency: Vec<u64>,
        pins: Vec<u64>,
        evictions: u64,
    }

    impl ModelPool {
        fn new(capacity: usize) -> Self {
            Self {
                capacity,
                recency: Vec::new(),
                pins: Vec::new(),
                evictions: 0,
            }
        }

        fn access(&mut self, page: u64) -> bool {
            if let Some(pos) = self.recency.iter().position(|&p| p == page) {
                self.recency.remove(pos);
                self.recency.push(page);
                return true;
            }
            if self.capacity == 0 {
                return false;
            }
            if self.recency.len() >= self.capacity {
                let victim = self
                    .recency
                    .iter()
                    .position(|p| !self.pins.contains(p));
                match victim {
                    Some(pos) => {
                        self.recency.remove(pos);
                        self.evictions += 1;
                    }
                    None => return false, // read-through: not cached
                }
            }
            self.recency.push(page);
            false
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Random op sequences (accesses, pins, unpins, invalidations) keep
        /// the pool in lock-step with the reference model: same residency,
        /// same eviction count, pinned pages never evicted, and the
        /// counting invariants `hits + misses == reads` and
        /// `evictions <= misses` hold throughout.
        #[test]
        fn random_ops_match_the_lru_pin_model(
            ops in collection::vec(0usize..96, 1..256),
            cap in 0usize..5,
        ) {
            let mut pool = BufferPool::new(cap);
            let mut model = ModelPool::new(cap);
            let (mut reads, mut hits, mut misses) = (0u64, 0u64, 0u64);
            for op in ops {
                let page = (op % 8) as u64;
                match op / 8 {
                    0..=7 => {
                        reads += 1;
                        let hit = pool.access(page);
                        prop_assert_eq!(hit, model.access(page));
                        if hit { hits += 1 } else { misses += 1 }
                    }
                    8 | 9 => {
                        pool.pin(page);
                        model.pins.push(page);
                    }
                    10 => {
                        if model.pins.contains(&page) {
                            pool.unpin(page);
                            let pos = model.pins.iter().position(|&p| p == page).unwrap();
                            model.pins.swap_remove(pos);
                        }
                    }
                    _ => {
                        pool.remove(page);
                        model.recency.retain(|&p| p != page);
                    }
                }
                // Residency and eviction totals agree with the model after
                // every single op — this subsumes "a pinned page is never
                // evicted" and "release restores plain LRU order".
                for probe in 0..8u64 {
                    prop_assert_eq!(
                        pool.contains(probe),
                        model.recency.contains(&probe),
                        "page {} residency drifted from the model", probe
                    );
                }
                prop_assert_eq!(pool.evictions(), model.evictions);
                prop_assert!(pool.len() <= cap);
            }
            prop_assert_eq!(hits + misses, reads);
            prop_assert!(pool.evictions() <= misses, "an eviction implies an earlier miss");
        }

        /// The id-only and frame entry points agree on hits, misses and
        /// evictions under pins too — the property that keeps resident and
        /// file-backed stores' I/O accounting identical during pinned
        /// batches.
        #[test]
        fn id_only_and_frame_modes_agree_under_pins(
            ops in collection::vec(0usize..48, 1..128),
            cap in 0usize..4,
        ) {
            let mut id_only = BufferPool::new(cap);
            let mut framed = BufferPool::new(cap);
            for op in ops {
                let page = (op % 8) as u64;
                match op / 8 {
                    0..=3 => {
                        let id_hit = id_only.access(page);
                        let frame_hit = if framed.fetch(page).is_some() {
                            true
                        } else {
                            framed.install(page, frame(&[page as f32]));
                            false
                        };
                        prop_assert_eq!(id_hit, frame_hit);
                    }
                    4 => {
                        id_only.pin(page);
                        framed.pin(page);
                    }
                    _ => {
                        id_only.unpin(page);
                        framed.unpin(page);
                    }
                }
                prop_assert_eq!(id_only.evictions(), framed.evictions());
                prop_assert_eq!(id_only.len(), framed.len());
            }
        }
    }

    #[test]
    fn coded_frames_share_the_pool_and_its_accounting() {
        use crate::coded::{CodedPage, PageCodec};
        let mut p = BufferPool::new(1);
        let page = Arc::new(CodedPage::encode(&[1.0, 2.0, 3.0, 4.0], 2, PageCodec::U8));
        p.install(0, Frame::Coded(Arc::clone(&page)));
        let hit = p.fetch(0).expect("installed frame is resident");
        assert!(hit.as_coded().is_some());
        assert!(hit.as_raw().is_none(), "a coded frame is not a raw one");
        assert!(p.resident_values() > 0);
        p.remove(0);
        assert_eq!(p.resident_values(), 0, "footprint accounting balances");
    }
}
