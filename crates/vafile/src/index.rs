//! Skip-sequential VA+file search.

use std::path::Path;

use hydra_core::{
    AnnIndex, Capabilities, Dataset, DistanceHistogram, Error, Neighbor, QueryStats,
    Representation, Result, SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{
    codec, fingerprint_dataset, DataSource, Fingerprint, PersistError, PersistentIndex, Section,
    SeriesFingerprinter, SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_storage::{SeriesStore, StorageConfig};
use hydra_summarize::quantization::ScalarQuantizer;
use hydra_summarize::DftSummarizer;

/// Configuration of a [`VaPlusFile`].
#[derive(Debug, Clone, Copy)]
pub struct VaPlusFileConfig {
    /// Number of DFT coefficients kept (the paper uses 16 reduced
    /// dimensions, i.e. 8 complex coefficients).
    pub dft_coefficients: usize,
    /// Bits per quantized dimension of the approximation file.
    pub bits_per_dim: u8,
    /// Simulated storage configuration for the raw series.
    pub storage: StorageConfig,
    /// Number of pairwise-distance samples for the δ-ε histogram.
    pub histogram_samples: usize,
    /// Seed for histogram sampling.
    pub seed: u64,
}

impl Default for VaPlusFileConfig {
    fn default() -> Self {
        Self {
            dft_coefficients: 8,
            bits_per_dim: 4,
            storage: StorageConfig::on_disk(),
            histogram_samples: 20_000,
            seed: 0xFA11E,
        }
    }
}

/// The VA+file index.
pub struct VaPlusFile {
    config: VaPlusFileConfig,
    series_len: usize,
    dft: DftSummarizer,
    quantizer: ScalarQuantizer,
    /// Quantized approximation of every series (the approximation file),
    /// kept in memory as in the paper's setup.
    approximations: Vec<Vec<u16>>,
    /// Exact DFT summaries (used to bound from below slightly more tightly
    /// when the cell is degenerate); not strictly required but cheap.
    store: SeriesStore,
    histogram: DistanceHistogram,
    num_series: usize,
    /// Content fingerprint of the dataset, captured at build/load time so
    /// snapshotting never has to re-read the (possibly file-backed) store.
    data_fingerprint: u64,
    /// Whether series were ingested after the build/load; a grown index's
    /// cached `data_fingerprint` is stale, so [`PersistentIndex::save`]
    /// recomputes it from a store scan instead.
    grown: bool,
}

impl VaPlusFile {
    /// Builds a VA+file over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty.
    pub fn build(dataset: &Dataset, config: VaPlusFileConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let series_len = dataset.series_len();
        let dft = DftSummarizer::new(series_len, config.dft_coefficients);

        // Transform everything, then train the per-dimension quantizer on
        // the transformed data (the "+" of VA+: adaptive, equi-depth cells).
        let summaries: Vec<Vec<f32>> = dataset.iter().map(|s| dft.transform(s)).collect();
        let refs: Vec<&[f32]> = summaries.iter().map(|v| v.as_slice()).collect();
        let quantizer = ScalarQuantizer::train(&refs, config.bits_per_dim);
        let approximations: Vec<Vec<u16>> = summaries.iter().map(|s| quantizer.encode(s)).collect();

        let store = SeriesStore::from_dataset(dataset, config.storage)?;
        store.reset_io();
        Ok(Self {
            config,
            series_len,
            dft,
            quantizer,
            approximations,
            store,
            histogram: DistanceHistogram::from_dataset(
                dataset,
                config.histogram_samples,
                256,
                config.seed,
            ),
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
            grown: false,
        })
    }

    /// The content fingerprint of the collection as currently held: the
    /// build/load-time cache while pristine, or a fresh dataset-order store
    /// scan once the index has grown (the store keeps dataset order, so the
    /// scan reproduces [`fingerprint_dataset`] of the grown collection).
    fn current_data_fingerprint(&self) -> u64 {
        if !self.grown {
            return self.data_fingerprint;
        }
        let mut f = SeriesFingerprinter::new(self.series_len, self.num_series);
        self.store.for_each_series(&mut |_, series| {
            f.push_series(series);
        });
        f.finish()
    }

    /// Re-derives everything a fresh build computes — DFT summaries, the
    /// equi-depth quantizer, the whole approximation file and the δ-ε
    /// histogram — from an unaccounted scan of the (grown) store. Eager
    /// re-quantization is what makes streaming ingest *equivalent* to a
    /// fresh build: both paths train the quantizer over exactly the same
    /// summaries in the same order, so every derived byte matches.
    fn requantize_all(&mut self) {
        let dft = &self.dft;
        let mut summaries: Vec<Vec<f32>> = Vec::with_capacity(self.num_series);
        self.store.for_each_series(&mut |_, series| {
            summaries.push(dft.transform(series));
        });
        let refs: Vec<&[f32]> = summaries.iter().map(|v| v.as_slice()).collect();
        self.quantizer = ScalarQuantizer::train(&refs, self.config.bits_per_dim);
        self.approximations = summaries.iter().map(|s| self.quantizer.encode(s)).collect();
        let store = &self.store;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        self.histogram = DistanceHistogram::from_pairwise(
            self.num_series,
            self.config.histogram_samples,
            256,
            self.config.seed,
            |i, j| {
                store.read_uncharged(i, &mut a);
                store.read_uncharged(j, &mut b);
                hydra_core::euclidean(&a, &b)
            },
        );
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &VaPlusFileConfig {
        &self.config
    }

    /// The distance histogram used for δ-ε-approximate search.
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// The simulated storage layer holding the raw series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Number of quantization cells per reduced dimension.
    pub fn cells_per_dim(&self) -> usize {
        self.quantizer.cells()
    }

    /// Shared precondition check of [`AnnIndex::search`] and
    /// [`AnnIndex::search_batch`] (one code path so the two entry points
    /// cannot drift apart). VA+file supports every mode, so only the
    /// dimension is checked.
    fn validate(&self, query: &[f32]) -> Result<()> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        Ok(())
    }

    /// Skip-sequential search shared by every mode.
    ///
    /// Phase 1 scans the approximation file, computing a lower bound per
    /// candidate (and, for exact/ε modes, maintaining the k-th smallest
    /// upper bound to pre-prune). Phase 2 refines candidates in increasing
    /// lower-bound order, reading raw series from disk, until the lower
    /// bound exceeds `bsf / (1 + ε)` (or the candidate budget is exhausted
    /// in ng mode, or the δ stop condition fires).
    ///
    /// `candidates` is a reusable scratch buffer (cleared on entry) sized by
    /// the phase-1 scan; batched callers allocate it once per batch instead
    /// of once per query.
    fn skip_sequential(
        &self,
        query: &[f32],
        params: &SearchParams,
        candidates: &mut Vec<(f32, usize)>,
    ) -> SearchResult {
        let mut stats = QueryStats::new();
        let k = params.k.max(1);
        let epsilon = params.mode.epsilon().max(0.0);
        let one_plus_eps = 1.0 + epsilon;
        let (nprobe, r_delta) = match params.mode {
            SearchMode::Ng { nprobe } => (Some(nprobe.max(1)), 0.0),
            SearchMode::DeltaEpsilon { delta, .. } if delta < 1.0 => {
                (None, self.histogram.r_delta(delta))
            }
            _ => (None, 0.0),
        };

        // Phase 1: sequential scan of the in-memory approximation file.
        let query_summary = self.dft.transform(query);
        candidates.clear();
        candidates.reserve(self.num_series);
        let mut upper_topk = TopK::new(k);
        for (id, code) in self.approximations.iter().enumerate() {
            stats.lower_bound_computations += 1;
            let lb = self.quantizer.lower_bound(&query_summary, code);
            let ub = self.quantizer.upper_bound(&query_summary, code);
            upper_topk.push(Neighbor::new(id, ub));
            candidates.push((lb, id));
        }
        // Pre-prune: candidates whose lower bound exceeds the k-th smallest
        // upper bound can never be in the answer (classic VA-file phase-1
        // filter). The filter keeps a superset of the exact answer, so it is
        // valid for every guarantee level.
        let ub_threshold = upper_topk.kth_distance();
        candidates.retain(|(lb, _)| *lb <= ub_threshold);
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Phase 2: refine in increasing lower-bound order.
        let mut top = TopK::new(k);
        let delta_threshold = one_plus_eps * r_delta;
        let mut refined = 0usize;
        for &(lb, id) in candidates.iter() {
            let bsf = top.kth_distance();
            if lb > bsf / one_plus_eps {
                break;
            }
            if let Some(limit) = nprobe {
                if refined >= limit {
                    break;
                }
            }
            stats.series_scanned += 1;
            stats.distance_computations += 1;
            if let Some(d) = self.store.refine(id, query, bsf, &mut stats) {
                top.push(Neighbor::new(id, d));
            }
            refined += 1;
            if r_delta > 0.0 && top.is_full() && top.kth_distance() <= delta_threshold {
                stats.delta_stop_triggered = true;
                break;
            }
        }
        stats.leaves_visited = refined as u64;
        SearchResult::new(top.into_sorted(), stats)
    }

    /// The first `prefix` records phase 2 would refine for `query`: the
    /// smallest phase-1 lower bounds, computed uncharged (no stats, no
    /// store reads) so the batch scheduler can declare a working set before
    /// any query runs. Appends one single-record range per candidate (the
    /// store is dataset-ordered, so the id is the record).
    fn predicted_candidates(&self, query: &[f32], prefix: usize, out: &mut Vec<(usize, usize)>) {
        let query_summary = self.dft.transform(query);
        let mut lbs: Vec<(f32, usize)> = self
            .approximations
            .iter()
            .enumerate()
            .map(|(id, code)| (self.quantizer.lower_bound(&query_summary, code), id))
            .collect();
        let cut = prefix.min(lbs.len());
        if cut == 0 {
            return;
        }
        if cut < lbs.len() {
            lbs.select_nth_unstable_by(cut - 1, |a, b| a.0.total_cmp(&b.0));
        }
        out.extend(lbs[..cut].iter().map(|&(_, id)| (id, 1)));
    }
}

/// Everything that shapes a VA+file build, hashed together with the dataset
/// content (see [`PersistentIndex`]). The storage configuration is
/// deliberately **not** hashed — it shapes only I/O economics, never the
/// quantizer or its answers, so a snapshot may be served with any pool
/// (`--pool-pages`) and either backing.
fn snapshot_fingerprint(config: &VaPlusFileConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(VaPlusFile::KIND);
    f.push_usize(config.dft_coefficients);
    f.push_u64(config.bits_per_dim as u64);
    f.push_usize(config.histogram_samples);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for VaPlusFile {
    type Config = VaPlusFileConfig;
    const KIND: &'static str = "va+file";

    /// Snapshots the trained equi-depth quantizer, the whole approximation
    /// file and the δ-ε histogram. The DFT summarizer is stateless (it is
    /// fully determined by the configuration) and the raw series store is
    /// re-attached from the dataset at load time (resident, or file-backed
    /// straight onto the dataset snapshot), so neither is stored.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.current_data_fingerprint()),
        );

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.num_series);
        w.push(meta);

        let mut quant = Section::new();
        codec::put_scalar_quantizer(&mut quant, &self.quantizer);
        w.push(quant);

        // The approximation file, flattened (every code has quantizer.dims()
        // entries).
        let mut approx = Section::new();
        approx.put_usize(self.quantizer.dims());
        let flat: Vec<u16> = self.approximations.iter().flatten().copied().collect();
        approx.put_u16s(&flat);
        w.push(approx);

        let mut hist = Section::new();
        codec::put_histogram(&mut hist, &self.histogram);
        w.push(hist);

        w.write_to(path)
    }

    fn load(
        path: &Path,
        dataset: &Dataset,
        config: &VaPlusFileConfig,
    ) -> hydra_persist::Result<Self> {
        Self::load_backed(path, dataset, config, StoreBacking::Resident)
    }

    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &VaPlusFileConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        Self::load_from(path, DataSource::InMemory(dataset), config, backing)
    }

    /// Loads without ever materializing a streamed dataset: shape and
    /// fingerprint come from the source's header facts, and the raw series
    /// re-attach straight from the validated snapshot file.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &VaPlusFileConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = source.fingerprint();
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        if series_len != source.series_len() || num_series != source.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let quantizer = codec::get_scalar_quantizer(&mut sec)?;

        let mut sec = r.next_section()?;
        let dims = sec.get_usize()?;
        let flat = sec.get_u16s()?;
        if dims != quantizer.dims() || flat.len() != num_series * dims {
            return Err(PersistError::Corrupt(
                "approximation file does not match the quantizer shape".into(),
            ));
        }
        if flat.iter().any(|&c| c as usize >= quantizer.cells()) {
            return Err(PersistError::Corrupt(
                "approximation cell index exceeds the quantizer grid".into(),
            ));
        }
        let approximations: Vec<Vec<u16>> = flat.chunks(dims).map(|c| c.to_vec()).collect();

        let mut sec = r.next_section()?;
        let histogram = codec::get_histogram(&mut sec)?;

        let dft = DftSummarizer::new(series_len, config.dft_coefficients);
        if dft.summary_len() != dims {
            return Err(PersistError::Corrupt(
                "DFT summary length disagrees with the stored quantizer".into(),
            ));
        }
        let store = hydra_persist::backing::attach_dataset_order_store_from(
            path,
            source,
            config.storage,
            backing,
        )?;

        Ok(Self {
            config: *config,
            series_len,
            dft,
            quantizer,
            approximations,
            store,
            histogram,
            num_series,
            data_fingerprint,
            grown: false,
        })
    }
}

impl AnnIndex for VaPlusFile {
    fn name(&self) -> &'static str {
        "VA+file"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            streaming_insert: true,
            representation: Representation::Dft,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        // The approximation file plus the quantizer edges.
        self.approximations
            .iter()
            .map(|a| a.len() * std::mem::size_of::<u16>())
            .sum::<usize>()
            + self.quantizer.dims() * (self.quantizer.cells() + 1) * std::mem::size_of::<f32>()
    }

    fn store_counters(&self) -> Option<hydra_core::StoreCounters> {
        Some(self.store.counters())
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        self.validate(query)?;
        let mut candidates = Vec::new();
        Ok(self.skip_sequential(query, params, &mut candidates))
    }

    /// Streaming ingest by append-and-requantize: the batch is appended to
    /// the raw-series store (which keeps dataset order), then the quantizer,
    /// approximation file and histogram are re-derived over the grown
    /// collection exactly as a fresh build would derive them — so answers
    /// are bit-identical to building over the full collection at once.
    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        for series in batch {
            if series.len() != self.series_len {
                return Err(Error::DimensionMismatch {
                    expected: self.series_len,
                    found: series.len(),
                });
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        for series in batch {
            self.store.append(series)?;
            self.num_series += 1;
        }
        self.requantize_all();
        self.grown = true;
        // A fresh build hands out a store with clean I/O counters; ingest
        // restores the same post-build state.
        self.store.reset_io();
        Ok(())
    }

    /// Batched search: the phase-1 candidate buffer (one `(lower bound, id)`
    /// entry per stored series) is allocated once and reused across the
    /// whole batch. Answers, per-query CPU counters and `bytes_read` are
    /// identical to [`Self::search`]; the I/O-*operation* counters
    /// (`random_ios`/`sequential_ios`) can differ — a pool hit charges no
    /// operation at all, and hits depend on how the shared, order-sensitive
    /// buffer pool was warmed, exactly as between two sequential runs.
    ///
    /// On a file-backed store the batch also declares its working set: each
    /// query's most promising phase-2 candidates — the smallest phase-1
    /// lower bounds, which refinement reads first — are pinned in the
    /// buffer pool for the duration of the batch, so candidates shared
    /// across queries stay resident instead of being evicted between
    /// queries. No prefetch: the candidates are scattered single records,
    /// and the closing bound may prune them before they are ever read.
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        let pinned = if self.store.is_file_backed() && queries.len() > 1 {
            let prefix = match params.mode {
                SearchMode::Ng { nprobe } => nprobe.max(1),
                _ => 4 * params.k.max(1),
            };
            let mut ranges = Vec::new();
            for query in queries {
                if query.len() == self.series_len {
                    self.predicted_candidates(query, prefix, &mut ranges);
                }
            }
            self.store.pin_working_set(&ranges, false)
        } else {
            Vec::new()
        };
        let mut candidates = Vec::with_capacity(self.num_series);
        let results = queries
            .iter()
            .map(|query| {
                self.validate(query)?;
                Ok(self.skip_sequential(query, params, &mut candidates))
            })
            .collect();
        self.store.release_working_set(&pinned);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn build_small(n: usize, len: usize) -> (Dataset, VaPlusFile) {
        let data = random_walk(n, len, 23);
        let config = VaPlusFileConfig {
            dft_coefficients: 8,
            bits_per_dim: 4,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 3,
        };
        let va = VaPlusFile::build(&data, config).unwrap();
        (data, va)
    }

    #[test]
    fn build_rejects_empty_dataset() {
        let empty = Dataset::new(8).unwrap();
        assert!(VaPlusFile::build(&empty, VaPlusFileConfig::default()).is_err());
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let (data, va) = build_small(400, 64);
        for qi in [0usize, 57, 399] {
            let query = data.series(qi);
            let res = va.search(query, &SearchParams::exact(10)).unwrap();
            let gt = exact_knn(&data, query, 10);
            for (a, b) in res.neighbors.iter().zip(gt.iter()) {
                assert!(
                    (a.distance - b.distance).abs() < 1e-4,
                    "VA+file exact search must match brute force"
                );
            }
        }
    }

    #[test]
    fn exact_search_refines_fewer_series_than_a_full_scan() {
        let (data, va) = build_small(1000, 64);
        let q = data.series(3);
        let res = va.search(q, &SearchParams::exact(1)).unwrap();
        assert_eq!(res.neighbors[0].index, 3);
        assert!(
            (res.stats.series_scanned as usize) < data.len(),
            "the VA filter should prune raw-data accesses"
        );
    }

    #[test]
    fn epsilon_guarantee_holds_and_reduces_refinements() {
        let (data, va) = build_small(500, 64);
        let queries = random_walk(6, 64, 91);
        for q in queries.iter() {
            let exact = va.search(q, &SearchParams::exact(5)).unwrap();
            let relaxed = va.search(q, &SearchParams::epsilon(5, 2.0)).unwrap();
            let gt = exact_knn(&data, q, 5);
            let bound = 3.0 * gt[4].distance + 1e-4;
            for n in &relaxed.neighbors {
                assert!(n.distance <= bound);
            }
            assert!(relaxed.stats.series_scanned <= exact.stats.series_scanned);
        }
    }

    #[test]
    fn ng_mode_bounds_refined_candidates() {
        let (_, va) = build_small(500, 64);
        let queries = random_walk(3, 64, 5);
        for q in queries.iter() {
            let res = va.search(q, &SearchParams::ng(5, 10)).unwrap();
            assert!(res.stats.series_scanned <= 10);
            assert!(!res.neighbors.is_empty());
        }
    }

    #[test]
    fn delta_epsilon_mode_returns_sorted_answers() {
        let (data, va) = build_small(300, 64);
        let q = data.series(9);
        let res = va
            .search(q, &SearchParams::delta_epsilon(5, 0.9, 1.0))
            .unwrap();
        assert_eq!(res.neighbors.len(), 5);
        for w in res.neighbors.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn batch_search_matches_per_query_search() {
        let (_, va) = build_small(400, 64);
        let queries = random_walk(5, 64, 17);
        let refs: Vec<&[f32]> = queries.iter().collect();
        for params in [
            SearchParams::exact(5),
            SearchParams::ng(5, 10),
            SearchParams::delta_epsilon(5, 0.9, 1.0),
        ] {
            let batched = va.search_batch(&refs, &params);
            assert_eq!(batched.len(), refs.len());
            for (q, b) in refs.iter().zip(batched.iter()) {
                let s = va.search(q, &params).unwrap();
                let b = b.as_ref().unwrap();
                assert_eq!(b.neighbors.len(), s.neighbors.len());
                for (x, y) in b.neighbors.iter().zip(s.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                // CPU-side work is identical; only buffer-pool-dependent I/O
                // classification may drift between separate passes.
                assert_eq!(b.stats.distance_computations, s.stats.distance_computations);
                assert_eq!(b.stats.lower_bound_computations, s.stats.lower_bound_computations);
                assert_eq!(b.stats.series_scanned, s.stats.series_scanned);
                assert_eq!(b.stats.bytes_read, s.stats.bytes_read);
            }
        }
        // Malformed queries fail in place without poisoning the batch.
        let bad = vec![0.0f32; 3];
        let mixed: Vec<&[f32]> = vec![refs[0], &bad];
        let results = va.search_batch(&mixed, &SearchParams::exact(3));
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn snapshot_roundtrip_answers_identically_and_checks_fingerprint() {
        let (data, va) = build_small(300, 64);
        let path = std::env::temp_dir().join(format!(
            "hydra-vafile-roundtrip-{}.snap",
            std::process::id()
        ));
        va.save(&path).unwrap();
        let loaded = VaPlusFile::load(&path, &data, va.config()).unwrap();
        assert_eq!(loaded.cells_per_dim(), va.cells_per_dim());
        for qi in [0usize, 42, 299] {
            let q = data.series(qi);
            for params in [SearchParams::exact(5), SearchParams::ng(5, 10)] {
                let a = va.search(q, &params).unwrap();
                let b = loaded.search(q, &params).unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                assert_eq!(a.stats, b.stats);
            }
        }
        let other = VaPlusFileConfig {
            bits_per_dim: va.config().bits_per_dim + 1,
            ..*va.config()
        };
        assert!(matches!(
            VaPlusFile::load(&path, &data, &other),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_matches_fresh_build_bit_for_bit() {
        let data = random_walk(300, 64, 23);
        let config = VaPlusFileConfig {
            dft_coefficients: 8,
            bits_per_dim: 4,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 3,
        };
        let fresh = VaPlusFile::build(&data, config).unwrap();

        let head =
            Dataset::from_flat(64, data.as_flat()[..200 * 64].to_vec()).unwrap();
        let mut grown = VaPlusFile::build(&head, config).unwrap();
        let tail: Vec<&[f32]> = (200..300).map(|i| data.series(i)).collect();
        grown.insert_batch(&tail[..37]).unwrap();
        grown.insert_batch(&tail[37..]).unwrap();

        assert_eq!(grown.num_series(), fresh.num_series());
        for qi in [0usize, 57, 250, 299] {
            let q = data.series(qi);
            for params in [
                SearchParams::exact(5),
                SearchParams::ng(5, 10),
                SearchParams::delta_epsilon(5, 0.9, 1.0),
            ] {
                let a = fresh.search(q, &params).unwrap();
                let b = grown.search(q, &params).unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                assert_eq!(a.stats, b.stats);
            }
        }

        // A grown index snapshots byte-identically to the fresh build: the
        // save-time fingerprint recompute covers the ingested series.
        let dir = std::env::temp_dir();
        let fresh_path = dir.join(format!("hydra-vafile-fresh-{}.snap", std::process::id()));
        let grown_path = dir.join(format!("hydra-vafile-grown-{}.snap", std::process::id()));
        fresh.save(&fresh_path).unwrap();
        grown.save(&grown_path).unwrap();
        assert_eq!(
            std::fs::read(&fresh_path).unwrap(),
            std::fs::read(&grown_path).unwrap(),
            "a grown VA+file must snapshot byte-identically to a fresh build"
        );
        std::fs::remove_file(&fresh_path).ok();
        std::fs::remove_file(&grown_path).ok();

        // Dimension mismatches reject the whole batch without growing.
        let before = grown.num_series();
        assert!(grown.insert_batch(&[&[0.0f32; 3]]).is_err());
        assert_eq!(grown.num_series(), before);
    }

    #[test]
    fn capabilities_and_metadata() {
        let (_, va) = build_small(100, 32);
        assert_eq!(va.name(), "VA+file");
        assert!(va.capabilities().disk_resident);
        assert!(va.capabilities().delta_epsilon_approximate);
        assert_eq!(va.num_series(), 100);
        assert_eq!(va.series_len(), 32);
        assert!(va.memory_footprint() > 0);
        assert_eq!(va.cells_per_dim(), 16);
        assert!(va.search(&[0.0; 4], &SearchParams::exact(1)).is_err());
    }
}
