//! # hydra-vafile
//!
//! The VA+file (Ferhatosmanoglu et al.), as modified by the Lernaean Hydra
//! paper: the Karhunen–Loève transform is replaced by the Discrete Fourier
//! Transform, and the method is extended to answer ng-approximate,
//! ε-approximate and δ-ε-approximate k-NN queries in addition to exact ones.
//!
//! ## How it works
//!
//! Every series is transformed with the (orthonormal, truncated) DFT and
//! each transformed dimension is quantized with an adaptive (equi-depth)
//! scalar quantizer. The resulting *approximation file* is small enough to
//! scan sequentially for every query. Search is skip-sequential: the scan
//! computes a lower bound (and an upper bound) per candidate from the cell
//! bounds; only candidates whose lower bound beats the current best-so-far
//! are refined by reading the raw series from the (simulated) disk — a
//! random I/O per refined candidate.
//!
//! The ε / δ-ε extensions shrink the pruning threshold to `bsf / (1 + ε)`
//! and stop the refinement pass once the best-so-far is below
//! `(1 + ε) · r_δ`, exactly like Algorithm 2 does for tree indexes. The
//! ng-approximate mode refines only the `nprobe` candidates with the
//! smallest lower bounds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod index;

pub use index::{VaPlusFile, VaPlusFileConfig};
