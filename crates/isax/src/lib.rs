//! # hydra-isax
//!
//! The iSAX2+ index (Camerra et al.): a binary tree over indexable SAX
//! words, extended — as in the Lernaean Hydra paper — to answer
//! ng-approximate, ε-approximate and δ-ε-approximate k-NN queries in
//! addition to exact ones.
//!
//! ## How it works
//!
//! Every series is summarized by its SAX word: the PAA means of 16 segments
//! quantized against the breakpoints of the standard normal distribution at
//! a maximum cardinality of 256 (8 bits per segment). The root has one child
//! per 1-bit-per-segment word; when a leaf overflows, the cardinality of a
//! single segment is increased by one bit and the leaf's series are
//! redistributed between the two refined words (iSAX2.0/iSAX2+ choose the
//! segment that balances the children best, which is what this
//! implementation does). Leaves store raw series through the simulated disk
//! layer, so the index reports realistic random-I/O counts.
//!
//! The SAX MINDIST function lower-bounds the true Euclidean distance, so the
//! generic driver of [`hydra_core::search`] provides exact and
//! guarantee-carrying approximate search over this tree.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod index;

pub use index::{Isax2Plus, IsaxConfig};
