//! The iSAX2+ tree.

use std::path::Path;

use hydra_core::search::SearchSpec;
use hydra_core::{
    knn_search, AnnIndex, Capabilities, Dataset, DistanceHistogram, Error, HierarchicalIndex,
    QueryStats, Representation, Result, SearchParams, SearchResult,
};
use hydra_persist::{
    codec, fingerprint_dataset, Fingerprint, PersistError, PersistentIndex, Section,
    SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_storage::{SeriesStore, StorageConfig};
use hydra_summarize::paa::paa;
use hydra_summarize::sax::{
    mindist_paa_isax, normal_breakpoints, sax_word, IsaxWord, SaxParams,
};

/// Configuration of an [`Isax2Plus`] index.
#[derive(Debug, Clone, Copy)]
pub struct IsaxConfig {
    /// SAX parameters (segments and maximum cardinality bits). The paper
    /// uses 16 segments at cardinality 256.
    pub sax: SaxParams,
    /// Maximum number of series per leaf.
    pub leaf_capacity: usize,
    /// Simulated storage configuration for the raw series.
    pub storage: StorageConfig,
    /// Number of pairwise-distance samples for the δ-ε histogram.
    pub histogram_samples: usize,
    /// Seed for the histogram sampling.
    pub seed: u64,
}

impl Default for IsaxConfig {
    fn default() -> Self {
        Self {
            sax: SaxParams::default(),
            leaf_capacity: 128,
            storage: StorageConfig::on_disk(),
            histogram_samples: 20_000,
            seed: 0x15A2,
        }
    }
}

#[derive(Debug)]
struct Node {
    /// The iSAX word describing the region of this node. The virtual root
    /// (node 0) has an empty word.
    word: IsaxWord,
    children: Vec<usize>,
    /// Dataset positions stored here (leaves only, during building).
    members: Vec<usize>,
    /// Cached full-cardinality words of the members (parallel to `members`).
    member_words: Vec<IsaxWord>,
    store_start: usize,
    store_len: usize,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The iSAX2+ index.
pub struct Isax2Plus {
    config: IsaxConfig,
    series_len: usize,
    breakpoints: Vec<f32>,
    nodes: Vec<Node>,
    store: SeriesStore,
    store_to_dataset: Vec<usize>,
    histogram: DistanceHistogram,
    num_series: usize,
    /// Content fingerprint of the dataset the index was built over,
    /// captured at build/load time so snapshotting never has to re-read the
    /// (possibly file-backed) store.
    data_fingerprint: u64,
}

impl Isax2Plus {
    /// Builds an iSAX2+ index over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the configuration is
    /// invalid.
    pub fn build(dataset: &Dataset, config: IsaxConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.leaf_capacity == 0 {
            return Err(Error::InvalidParameter("leaf capacity must be positive".into()));
        }
        let series_len = dataset.series_len();
        let breakpoints = normal_breakpoints(config.sax.max_cardinality());
        let root = Node {
            word: IsaxWord {
                symbols: Vec::new(),
                bits: Vec::new(),
            },
            children: Vec::new(),
            members: Vec::new(),
            member_words: Vec::new(),
            store_start: 0,
            store_len: 0,
        };
        let mut index = Self {
            config,
            series_len,
            breakpoints,
            nodes: vec![root],
            store: SeriesStore::new(series_len, config.storage)?,
            store_to_dataset: Vec::with_capacity(dataset.len()),
            histogram: DistanceHistogram::from_dataset(
                dataset,
                config.histogram_samples,
                256,
                config.seed,
            ),
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
        };
        for id in 0..dataset.len() {
            index.insert(dataset, id);
        }
        index.materialize(dataset)?;
        Ok(index)
    }

    fn full_word(&self, series: &[f32]) -> IsaxWord {
        sax_word(series, &self.config.sax, &self.breakpoints)
    }

    fn insert(&mut self, dataset: &Dataset, id: usize) {
        let series = dataset.series(id);
        let word = self.full_word(series);
        let max_bits = self.config.sax.max_bits;

        // Find (or create) the root child whose 1-bit word covers this series.
        let mut current = match self.nodes[0]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].word.contains(&word, max_bits))
        {
            Some(c) => c,
            None => {
                let child_word = IsaxWord {
                    symbols: word.symbols.clone(),
                    bits: vec![1; word.len()],
                };
                let child = self.push_node(child_word);
                self.nodes[0].children.push(child);
                child
            }
        };

        // Descend to a leaf.
        loop {
            if self.nodes[current].is_leaf() {
                break;
            }
            let next = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].word.contains(&word, max_bits))
                .expect("internal node children partition the region");
            current = next;
        }

        self.nodes[current].members.push(id);
        self.nodes[current].member_words.push(word);
        if self.nodes[current].members.len() > self.config.leaf_capacity {
            self.split_leaf(current);
        }
    }

    /// Splits a leaf by promoting one segment to a higher cardinality.
    ///
    /// The segment is chosen to balance the two children as evenly as
    /// possible (the iSAX 2.0 split policy); segments already at maximum
    /// cardinality are skipped.
    fn split_leaf(&mut self, node_id: usize) {
        let max_bits = self.config.sax.max_bits;
        let word = self.nodes[node_id].word.clone();
        let members = std::mem::take(&mut self.nodes[node_id].members);
        let member_words = std::mem::take(&mut self.nodes[node_id].member_words);

        // Choose the most balanced split among promotable segments.
        let mut best: Option<(usize, usize)> = None; // (segment, imbalance)
        for seg in 0..word.len() {
            if word.bits[seg] >= max_bits {
                continue;
            }
            let new_bits = word.bits[seg] + 1;
            let shift = max_bits - new_bits;
            let left_count = member_words
                .iter()
                .filter(|w| (w.symbols[seg] >> shift) & 1 == 0)
                .count();
            let imbalance = (2 * left_count).abs_diff(member_words.len());
            if best.map(|(_, b)| imbalance < b).unwrap_or(true) {
                best = Some((seg, imbalance));
            }
        }
        let Some((seg, _)) = best else {
            // Every segment is at maximum cardinality: the node cannot be
            // refined further and keeps its oversized membership.
            self.nodes[node_id].members = members;
            self.nodes[node_id].member_words = member_words;
            return;
        };

        let new_bits = word.bits[seg] + 1;
        let shift = max_bits - new_bits;
        let mut left_word = word.clone();
        let mut right_word = word.clone();
        left_word.bits[seg] = new_bits;
        right_word.bits[seg] = new_bits;
        // Canonical symbols for the two refined regions: clear/set the newly
        // significant bit in the full-cardinality symbol.
        let base = (word.symbols[seg] >> (max_bits - word.bits[seg])) << (max_bits - word.bits[seg]);
        left_word.symbols[seg] = base;
        right_word.symbols[seg] = base | (1 << shift);

        let left_id = self.push_node(left_word);
        let right_id = self.push_node(right_word);
        for (id, w) in members.into_iter().zip(member_words.into_iter()) {
            let target = if (w.symbols[seg] >> shift) & 1 == 0 {
                left_id
            } else {
                right_id
            };
            self.nodes[target].members.push(id);
            self.nodes[target].member_words.push(w);
        }
        self.nodes[node_id].children = vec![left_id, right_id];

        // A pathological distribution can leave one child overflowing (all
        // members share the promoted bit); recurse on it.
        for child in [left_id, right_id] {
            if self.nodes[child].members.len() > self.config.leaf_capacity {
                self.split_leaf(child);
            }
        }
    }

    fn push_node(&mut self, word: IsaxWord) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            word,
            children: Vec::new(),
            members: Vec::new(),
            member_words: Vec::new(),
            store_start: 0,
            store_len: 0,
        });
        id
    }

    fn materialize(&mut self, dataset: &Dataset) -> Result<()> {
        let leaf_ids: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| i != 0 && self.nodes[i].is_leaf())
            .collect();
        for leaf_id in leaf_ids {
            let members = self.nodes[leaf_id].members.clone();
            let start = self.store.len();
            for &id in &members {
                self.store.append(dataset.series(id))?;
                self.store_to_dataset.push(id);
            }
            let node = &mut self.nodes[leaf_id];
            node.store_start = start;
            node.store_len = members.len();
            node.member_words.clear();
            node.member_words.shrink_to_fit();
        }
        self.store.reset_io();
        Ok(())
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != 0 && n.is_leaf())
            .count()
    }

    /// Average leaf fill factor. The paper observes that iSAX2+ has more,
    /// emptier leaves than DSTree, which is what drives its higher random
    /// I/O count.
    pub fn avg_leaf_fill(&self) -> f64 {
        let leaves: Vec<&Node> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != 0 && n.is_leaf())
            .map(|(_, n)| n)
            .collect();
        if leaves.is_empty() {
            return 0.0;
        }
        let total: usize = leaves.iter().map(|n| n.store_len).sum();
        total as f64 / (leaves.len() * self.config.leaf_capacity) as f64
    }

    /// The simulated storage layer holding the raw series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// The distance histogram used for δ-ε-approximate search.
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IsaxConfig {
        &self.config
    }
}

/// Everything that shapes an iSAX2+ build, hashed together with the dataset
/// content: a snapshot only loads against the exact configuration and data
/// it was built from. The storage configuration is deliberately **not**
/// hashed — page size, pool capacity and backing shape only I/O economics,
/// never the index structure or its answers, so a snapshot may be served
/// with any pool (`--pool-pages`) and either backing.
fn snapshot_fingerprint(config: &IsaxConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Isax2Plus::KIND);
    f.push_usize(config.sax.segments);
    f.push_u64(config.sax.max_bits as u64);
    f.push_usize(config.leaf_capacity);
    f.push_usize(config.histogram_samples);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Isax2Plus {
    type Config = IsaxConfig;
    const KIND: &'static str = "isax2+";

    /// Snapshots the tree topology (iSAX words, children, leaf extents),
    /// the leaf-order-to-dataset mapping and the δ-ε histogram. The raw
    /// series are *not* stored: `load` re-attaches the leaf-ordered
    /// [`SeriesStore`] from its `dataset` argument (resident or
    /// file-backed). The dataset-content fingerprint was captured when the
    /// index was built or loaded, so saving never reads the store.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.data_fingerprint),
        );

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.num_series);
        meta.put_usize(self.nodes.len());
        w.push(meta);

        let mut nodes = Section::new();
        for node in &self.nodes {
            nodes.put_u16s(&node.word.symbols);
            nodes.put_u8s(&node.word.bits);
            nodes.put_usizes(&node.children);
            nodes.put_usize(node.store_start);
            nodes.put_usize(node.store_len);
        }
        w.push(nodes);

        let mut mapping = Section::new();
        mapping.put_usizes(&self.store_to_dataset);
        w.push(mapping);

        let mut hist = Section::new();
        codec::put_histogram(&mut hist, &self.histogram);
        w.push(hist);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &IsaxConfig) -> hydra_persist::Result<Self> {
        Self::load_backed(path, dataset, config, StoreBacking::Resident)
    }

    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &IsaxConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = fingerprint_dataset(dataset);
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        let node_count = meta.get_usize()?;
        if series_len != dataset.series_len() || num_series != dataset.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let symbols = sec.get_u16s()?;
            let bits = sec.get_u8s()?;
            if symbols.len() != bits.len() {
                return Err(PersistError::Corrupt(
                    "iSAX word symbols and bits differ in length".into(),
                ));
            }
            let children = sec.get_usizes()?;
            let store_start = sec.get_usize()?;
            let store_len = sec.get_usize()?;
            if store_start
                .checked_add(store_len)
                .map_or(true, |end| end > num_series)
            {
                return Err(PersistError::Corrupt(
                    "leaf extent exceeds the series store".into(),
                ));
            }
            nodes.push(Node {
                word: IsaxWord { symbols, bits },
                children,
                // Build-time scratch; empty after materialization either way.
                members: Vec::new(),
                member_words: Vec::new(),
                store_start,
                store_len,
            });
        }
        if nodes
            .iter()
            .any(|n| n.children.iter().any(|&c| c == 0 || c >= node_count))
        {
            return Err(PersistError::Corrupt("node child id out of range".into()));
        }

        let mut sec = r.next_section()?;
        let store_to_dataset = sec.get_usizes()?;
        if store_to_dataset.len() != num_series {
            return Err(PersistError::Corrupt(
                "leaf-order mapping does not cover the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let histogram = codec::get_histogram(&mut sec)?;

        let store = hydra_persist::backing::attach_permuted_store(
            path,
            dataset,
            &store_to_dataset,
            config.storage,
            backing,
        )?;

        Ok(Self {
            config: *config,
            series_len,
            breakpoints: normal_breakpoints(config.sax.max_cardinality()),
            nodes,
            store,
            store_to_dataset,
            histogram,
            num_series,
            data_fingerprint,
        })
    }
}

impl HierarchicalIndex for Isax2Plus {
    fn roots(&self) -> Vec<usize> {
        vec![0]
    }

    fn is_leaf(&self, node: usize) -> bool {
        node != 0 && self.nodes[node].is_leaf()
    }

    fn children(&self, node: usize) -> Vec<usize> {
        self.nodes[node].children.clone()
    }

    fn min_dist(&self, query: &[f32], node: usize) -> f32 {
        if node == 0 {
            return 0.0;
        }
        let query_paa = paa(query, self.config.sax.segments);
        mindist_paa_isax(
            &query_paa,
            &self.nodes[node].word,
            &self.breakpoints,
            self.series_len,
            self.config.sax.max_bits,
        )
    }

    fn visit_leaf(
        &self,
        node: usize,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    ) {
        let n = &self.nodes[node];
        if n.store_len == 0 {
            return;
        }
        self.store
            .read_range(n.store_start, n.store_len, stats, &mut |pos, series| {
                visit(self.store_to_dataset[pos], series);
            });
    }

    fn leaf_size(&self, node: usize) -> usize {
        self.nodes[node].store_len
    }
}

impl AnnIndex for Isax2Plus {
    fn name(&self) -> &'static str {
        "iSAX2+"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            representation: Representation::Isax,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.word.symbols.len() * (std::mem::size_of::<u16>() + std::mem::size_of::<u8>())
                    + n.children.len() * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + self.store_to_dataset.len() * std::mem::size_of::<usize>()
            + self.breakpoints.len() * std::mem::size_of::<f32>()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        let spec = SearchSpec::from_params(params, Some(&self.histogram));
        Ok(knn_search(self, query, &spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn build_small(n: usize, len: usize) -> (Dataset, Isax2Plus) {
        let data = random_walk(n, len, 17);
        let config = IsaxConfig {
            sax: SaxParams::new(8, 8),
            leaf_capacity: 16,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 5,
        };
        let index = Isax2Plus::build(&data, config).unwrap();
        (data, index)
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(8).unwrap();
        assert!(Isax2Plus::build(&empty, IsaxConfig::default()).is_err());
        let one = random_walk(1, 8, 0);
        let bad = IsaxConfig {
            leaf_capacity: 0,
            ..IsaxConfig::default()
        };
        assert!(Isax2Plus::build(&one, bad).is_err());
    }

    #[test]
    fn all_series_land_in_exactly_one_leaf() {
        let (data, index) = build_small(600, 64);
        let total: usize = (1..index.nodes.len())
            .filter(|&i| index.is_leaf(i))
            .map(|i| index.leaf_size(i))
            .sum();
        assert_eq!(total, data.len());
        assert!(index.num_leaves() > 1);
        assert!(index.avg_leaf_fill() > 0.0 && index.avg_leaf_fill() <= 1.0);
        assert_eq!(index.name(), "iSAX2+");
        assert!(index.memory_footprint() > 0);
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let (data, index) = build_small(400, 64);
        for qi in [0usize, 101, 399] {
            let query = data.series(qi);
            let res = index.search(query, &SearchParams::exact(10)).unwrap();
            let gt = exact_knn(&data, query, 10);
            for (a, b) in res.neighbors.iter().zip(gt.iter()) {
                assert!((a.distance - b.distance).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let (data, index) = build_small(400, 64);
        let queries = random_walk(8, 64, 71);
        for eps in [1.0f32, 3.0] {
            for q in queries.iter() {
                let res = index.search(q, &SearchParams::epsilon(5, eps)).unwrap();
                let gt = exact_knn(&data, q, 5);
                let bound = (1.0 + eps) * gt[4].distance + 1e-4;
                for n in &res.neighbors {
                    assert!(n.distance <= bound);
                }
            }
        }
    }

    #[test]
    fn ng_search_respects_leaf_budget() {
        let (_, index) = build_small(600, 64);
        let queries = random_walk(3, 64, 3);
        for q in queries.iter() {
            let res = index.search(q, &SearchParams::ng(5, 1)).unwrap();
            assert!(res.stats.leaves_visited <= 1);
            assert!(!res.neighbors.is_empty());
            let res3 = index.search(q, &SearchParams::ng(5, 3)).unwrap();
            assert!(res3.stats.leaves_visited <= 3);
            assert!(res3.kth_distance() <= res.kth_distance() + 1e-6);
        }
    }

    #[test]
    fn exact_search_prunes_part_of_the_dataset() {
        let (data, index) = build_small(1000, 64);
        let q = data.series(7);
        let res = index.search(q, &SearchParams::exact(1)).unwrap();
        assert_eq!(res.neighbors[0].index, 7);
        assert!((res.stats.series_scanned as usize) < data.len());
    }

    #[test]
    fn search_rejects_wrong_dimension() {
        let (_, index) = build_small(50, 64);
        assert!(index.search(&[0.0; 16], &SearchParams::exact(1)).is_err());
    }

    #[test]
    fn snapshot_roundtrip_answers_identically_and_checks_fingerprint() {
        let (data, index) = build_small(300, 64);
        let path = std::env::temp_dir().join(format!(
            "hydra-isax-roundtrip-{}.snap",
            std::process::id()
        ));
        index.save(&path).unwrap();
        let loaded = Isax2Plus::load(&path, &data, index.config()).unwrap();
        for qi in [0usize, 50, 299] {
            let q = data.series(qi);
            for params in [SearchParams::exact(5), SearchParams::ng(5, 2)] {
                let a = index.search(q, &params).unwrap();
                let b = loaded.search(q, &params).unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                assert_eq!(a.stats, b.stats, "loaded tree must pay identical costs");
            }
        }
        // A different build configuration must be refused, not absorbed.
        let other = IsaxConfig {
            leaf_capacity: index.config().leaf_capacity + 1,
            ..*index.config()
        };
        assert!(matches!(
            Isax2Plus::load(&path, &data, &other),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        // So must different data of the same shape.
        let other_data = random_walk(300, 64, 999);
        assert!(matches!(
            Isax2Plus::load(&path, &other_data, index.config()),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn isax_has_more_leaves_than_dstree_like_fill() {
        // Sanity property the paper relies on: iSAX2+ leaves are not
        // perfectly filled because regions are fixed by SAX words.
        let (_, index) = build_small(600, 64);
        assert!(index.avg_leaf_fill() < 1.0);
    }
}
