//! The iSAX2+ tree.

use std::path::Path;

use hydra_core::search::SearchSpec;
use hydra_core::{
    knn_search, predict_first_leaf, AnnIndex, Capabilities, Dataset, DistanceHistogram, Error,
    HierarchicalIndex, QueryStats, Representation, Result, SearchParams, SearchResult,
};
use hydra_persist::{
    codec, fingerprint_dataset, DataSource, Fingerprint, PersistError, PersistentIndex, Section,
    SeriesFingerprinter, SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_storage::{SeriesStore, StorageConfig};
use hydra_summarize::paa::paa;
use hydra_summarize::sax::{
    mindist_paa_isax, normal_breakpoints, sax_word, IsaxWord, SaxParams,
};

/// Configuration of an [`Isax2Plus`] index.
#[derive(Debug, Clone, Copy)]
pub struct IsaxConfig {
    /// SAX parameters (segments and maximum cardinality bits). The paper
    /// uses 16 segments at cardinality 256.
    pub sax: SaxParams,
    /// Maximum number of series per leaf.
    pub leaf_capacity: usize,
    /// Simulated storage configuration for the raw series.
    pub storage: StorageConfig,
    /// Number of pairwise-distance samples for the δ-ε histogram.
    pub histogram_samples: usize,
    /// Seed for the histogram sampling.
    pub seed: u64,
}

impl Default for IsaxConfig {
    fn default() -> Self {
        Self {
            sax: SaxParams::default(),
            leaf_capacity: 128,
            storage: StorageConfig::on_disk(),
            histogram_samples: 20_000,
            seed: 0x15A2,
        }
    }
}

#[derive(Debug)]
struct Node {
    /// The iSAX word describing the region of this node. The virtual root
    /// (node 0) has an empty word.
    word: IsaxWord,
    children: Vec<usize>,
    /// Dataset positions stored here (leaves only, during building).
    members: Vec<usize>,
    /// Cached full-cardinality words of the members (parallel to `members`).
    member_words: Vec<IsaxWord>,
    store_start: usize,
    store_len: usize,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The iSAX2+ index.
pub struct Isax2Plus {
    config: IsaxConfig,
    series_len: usize,
    breakpoints: Vec<f32>,
    nodes: Vec<Node>,
    store: SeriesStore,
    store_to_dataset: Vec<usize>,
    /// Inverse of `store_to_dataset`, maintained only once the tree has
    /// grown (see [`Isax2Plus::activate_growth`]); empty while pristine.
    dataset_to_store: Vec<usize>,
    histogram: DistanceHistogram,
    num_series: usize,
    /// Content fingerprint of the dataset the index was built over,
    /// captured at build/load time so snapshotting never has to re-read the
    /// (possibly file-backed) store.
    data_fingerprint: u64,
    /// Whether series were ingested after the build/load. A grown tree's
    /// leaf extents and store order are interleaved by arrival, so leaf
    /// visits switch to member-row gathering and [`PersistentIndex::save`]
    /// compacts back to the canonical leaf-order layout.
    grown: bool,
}

/// Where [`Isax2Plus::insert_series`] re-reads member series when a leaf's
/// cached SAX words need rehydrating: the build-time dataset, or (during
/// streaming ingest) the tree's own series store.
enum FetchSource<'a> {
    /// The collection being built (members are dataset positions).
    Dataset(&'a Dataset),
    /// The index's own store, via `dataset_to_store` (ingest path).
    Store,
}

impl Isax2Plus {
    /// Builds an iSAX2+ index over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the configuration is
    /// invalid.
    pub fn build(dataset: &Dataset, config: IsaxConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.leaf_capacity == 0 {
            return Err(Error::InvalidParameter("leaf capacity must be positive".into()));
        }
        let series_len = dataset.series_len();
        let breakpoints = normal_breakpoints(config.sax.max_cardinality());
        let root = Node {
            word: IsaxWord {
                symbols: Vec::new(),
                bits: Vec::new(),
            },
            children: Vec::new(),
            members: Vec::new(),
            member_words: Vec::new(),
            store_start: 0,
            store_len: 0,
        };
        let mut index = Self {
            config,
            series_len,
            breakpoints,
            nodes: vec![root],
            store: SeriesStore::new(series_len, config.storage)?,
            store_to_dataset: Vec::with_capacity(dataset.len()),
            histogram: DistanceHistogram::from_dataset(
                dataset,
                config.histogram_samples,
                256,
                config.seed,
            ),
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
            dataset_to_store: Vec::new(),
            grown: false,
        };
        for id in 0..dataset.len() {
            index.insert(dataset, id);
        }
        index.materialize(dataset)?;
        Ok(index)
    }

    fn full_word(&self, series: &[f32]) -> IsaxWord {
        sax_word(series, &self.config.sax, &self.breakpoints)
    }

    fn insert(&mut self, dataset: &Dataset, id: usize) {
        let word = self.full_word(dataset.series(id));
        self.insert_series(id, word, &FetchSource::Dataset(dataset));
    }

    /// Reads the raw series of dataset position `id` into `out`.
    fn fetch_series(&self, id: usize, src: &FetchSource<'_>, out: &mut Vec<f32>) {
        match src {
            FetchSource::Dataset(dataset) => {
                out.clear();
                out.extend_from_slice(dataset.series(id));
            }
            FetchSource::Store => self.store.read_uncharged(self.dataset_to_store[id], out),
        }
    }

    /// Recomputes the cached full-cardinality SAX words of a leaf whose
    /// `member_words` were dropped by [`Isax2Plus::materialize`] (or never
    /// loaded from a snapshot). `sax_word` is deterministic, so the
    /// rehydrated words are exactly what the build computed.
    fn hydrate_member_words(&mut self, leaf: usize, src: &FetchSource<'_>) {
        if self.nodes[leaf].member_words.len() == self.nodes[leaf].members.len() {
            return;
        }
        let members = self.nodes[leaf].members.clone();
        let mut buf = Vec::new();
        let mut words = Vec::with_capacity(members.len());
        for &id in &members {
            self.fetch_series(id, src, &mut buf);
            words.push(self.full_word(&buf));
        }
        self.nodes[leaf].member_words = words;
    }

    /// Routes one series (its dataset position and full-cardinality word)
    /// to its leaf, splitting on overflow — the single insertion path shared
    /// by [`Isax2Plus::build`] and streaming ingest, which is what makes the
    /// two produce identical trees for the same insert sequence.
    fn insert_series(&mut self, id: usize, word: IsaxWord, src: &FetchSource<'_>) {
        let max_bits = self.config.sax.max_bits;

        // Find (or create) the root child whose 1-bit word covers this series.
        let mut current = match self.nodes[0]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].word.contains(&word, max_bits))
        {
            Some(c) => c,
            None => {
                let child_word = IsaxWord {
                    symbols: word.symbols.clone(),
                    bits: vec![1; word.len()],
                };
                let child = self.push_node(child_word);
                self.nodes[0].children.push(child);
                child
            }
        };

        // Descend to a leaf.
        loop {
            if self.nodes[current].is_leaf() {
                break;
            }
            let next = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].word.contains(&word, max_bits))
                .expect("internal node children partition the region");
            current = next;
        }

        self.hydrate_member_words(current, src);
        self.nodes[current].members.push(id);
        self.nodes[current].member_words.push(word);
        if self.nodes[current].members.len() > self.config.leaf_capacity {
            self.split_leaf(current);
        }
    }

    /// Splits a leaf by promoting one segment to a higher cardinality.
    ///
    /// The segment is chosen to balance the two children as evenly as
    /// possible (the iSAX 2.0 split policy); segments already at maximum
    /// cardinality are skipped.
    fn split_leaf(&mut self, node_id: usize) {
        let max_bits = self.config.sax.max_bits;
        let word = self.nodes[node_id].word.clone();
        let members = std::mem::take(&mut self.nodes[node_id].members);
        let member_words = std::mem::take(&mut self.nodes[node_id].member_words);

        // Choose the most balanced split among promotable segments.
        let mut best: Option<(usize, usize)> = None; // (segment, imbalance)
        for seg in 0..word.len() {
            if word.bits[seg] >= max_bits {
                continue;
            }
            let new_bits = word.bits[seg] + 1;
            let shift = max_bits - new_bits;
            let left_count = member_words
                .iter()
                .filter(|w| (w.symbols[seg] >> shift) & 1 == 0)
                .count();
            let imbalance = (2 * left_count).abs_diff(member_words.len());
            if best.map(|(_, b)| imbalance < b).unwrap_or(true) {
                best = Some((seg, imbalance));
            }
        }
        let Some((seg, _)) = best else {
            // Every segment is at maximum cardinality: the node cannot be
            // refined further and keeps its oversized membership.
            self.nodes[node_id].members = members;
            self.nodes[node_id].member_words = member_words;
            return;
        };

        let new_bits = word.bits[seg] + 1;
        let shift = max_bits - new_bits;
        let mut left_word = word.clone();
        let mut right_word = word.clone();
        left_word.bits[seg] = new_bits;
        right_word.bits[seg] = new_bits;
        // Canonical symbols for the two refined regions: clear/set the newly
        // significant bit in the full-cardinality symbol.
        let base = (word.symbols[seg] >> (max_bits - word.bits[seg])) << (max_bits - word.bits[seg]);
        left_word.symbols[seg] = base;
        right_word.symbols[seg] = base | (1 << shift);

        let left_id = self.push_node(left_word);
        let right_id = self.push_node(right_word);
        for (id, w) in members.into_iter().zip(member_words.into_iter()) {
            let target = if (w.symbols[seg] >> shift) & 1 == 0 {
                left_id
            } else {
                right_id
            };
            self.nodes[target].members.push(id);
            self.nodes[target].member_words.push(w);
        }
        self.nodes[node_id].children = vec![left_id, right_id];

        // A pathological distribution can leave one child overflowing (all
        // members share the promoted bit); recurse on it.
        for child in [left_id, right_id] {
            if self.nodes[child].members.len() > self.config.leaf_capacity {
                self.split_leaf(child);
            }
        }
    }

    fn push_node(&mut self, word: IsaxWord) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            word,
            children: Vec::new(),
            members: Vec::new(),
            member_words: Vec::new(),
            store_start: 0,
            store_len: 0,
        });
        id
    }

    fn materialize(&mut self, dataset: &Dataset) -> Result<()> {
        let leaf_ids: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| i != 0 && self.nodes[i].is_leaf())
            .collect();
        for leaf_id in leaf_ids {
            let members = self.nodes[leaf_id].members.clone();
            let start = self.store.len();
            for &id in &members {
                self.store.append(dataset.series(id))?;
                self.store_to_dataset.push(id);
            }
            let node = &mut self.nodes[leaf_id];
            node.store_start = start;
            node.store_len = members.len();
            node.member_words.clear();
            node.member_words.shrink_to_fit();
        }
        self.store.reset_io();
        Ok(())
    }

    /// Switches the tree into growth mode: repopulates leaf membership from
    /// the leaf extents (a loaded tree carries none — a freshly built one
    /// still does) and builds the store-row inverse mapping. Idempotent.
    fn activate_growth(&mut self) {
        if self.grown {
            return;
        }
        for i in 1..self.nodes.len() {
            let (start, len) = (self.nodes[i].store_start, self.nodes[i].store_len);
            if self.nodes[i].is_leaf() && self.nodes[i].members.len() != len {
                self.nodes[i].members = self.store_to_dataset[start..start + len].to_vec();
            }
        }
        let mut inverse = vec![usize::MAX; self.store_to_dataset.len()];
        for (row, &id) in self.store_to_dataset.iter().enumerate() {
            inverse[id] = row;
        }
        self.dataset_to_store = inverse;
        self.grown = true;
    }

    /// Number of series in a leaf, valid in both pristine and grown trees
    /// (a grown leaf's extent is stale; its membership is authoritative).
    fn leaf_count(&self, node: usize) -> usize {
        if self.grown {
            self.nodes[node].members.len()
        } else {
            self.nodes[node].store_len
        }
    }

    /// The store record ranges holding a leaf's series: the contiguous
    /// extent of a pristine tree, or the maximal contiguous runs of a grown
    /// leaf's member rows (the same run structure `visit_leaf` walks). Lets
    /// the batch scheduler declare a working set without reading anything.
    fn leaf_store_ranges(&self, node: usize, out: &mut Vec<(usize, usize)>) {
        let n = &self.nodes[node];
        if !self.grown {
            if n.store_len > 0 {
                out.push((n.store_start, n.store_len));
            }
            return;
        }
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            out.push((rows[i], j - i));
            i = j;
        }
    }

    /// The content fingerprint of the collection as currently held: the
    /// build/load-time cache while pristine, or a dataset-order scan of the
    /// (permuted, grown) store once series were ingested.
    fn current_data_fingerprint(&self) -> u64 {
        if !self.grown {
            return self.data_fingerprint;
        }
        let mut f = SeriesFingerprinter::new(self.series_len, self.num_series);
        let mut buf = Vec::new();
        for &row in &self.dataset_to_store {
            self.store.read_uncharged(row, &mut buf);
            f.push_series(&buf);
        }
        f.finish()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != 0 && n.is_leaf())
            .count()
    }

    /// Average leaf fill factor. The paper observes that iSAX2+ has more,
    /// emptier leaves than DSTree, which is what drives its higher random
    /// I/O count.
    pub fn avg_leaf_fill(&self) -> f64 {
        let leaves: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| i != 0 && self.nodes[i].is_leaf())
            .collect();
        if leaves.is_empty() {
            return 0.0;
        }
        let total: usize = leaves.iter().map(|&i| self.leaf_count(i)).sum();
        total as f64 / (leaves.len() * self.config.leaf_capacity) as f64
    }

    /// The simulated storage layer holding the raw series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// The distance histogram used for δ-ε-approximate search.
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IsaxConfig {
        &self.config
    }
}

/// Everything that shapes an iSAX2+ build, hashed together with the dataset
/// content: a snapshot only loads against the exact configuration and data
/// it was built from. The storage configuration is deliberately **not**
/// hashed — page size, pool capacity and backing shape only I/O economics,
/// never the index structure or its answers, so a snapshot may be served
/// with any pool (`--pool-pages`) and either backing.
fn snapshot_fingerprint(config: &IsaxConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Isax2Plus::KIND);
    f.push_usize(config.sax.segments);
    f.push_u64(config.sax.max_bits as u64);
    f.push_usize(config.leaf_capacity);
    f.push_usize(config.histogram_samples);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Isax2Plus {
    type Config = IsaxConfig;
    const KIND: &'static str = "isax2+";

    /// Snapshots the tree topology (iSAX words, children, leaf extents),
    /// the leaf-order-to-dataset mapping and the δ-ε histogram. The raw
    /// series are *not* stored: `load` re-attaches the leaf-ordered
    /// [`SeriesStore`] from its `dataset` argument (resident or
    /// file-backed). A pristine tree saves its cached dataset fingerprint
    /// and extents verbatim; a *grown* tree (see [`AnnIndex::insert_batch`])
    /// recomputes the fingerprint from a store scan and **compacts** its
    /// arrival-interleaved layout to the canonical leaf order a fresh build
    /// would have materialized — node creation order is identical for the
    /// same insert sequence, so the snapshot bytes are identical too.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.current_data_fingerprint()),
        );

        let (extents, mapping): (Vec<(usize, usize)>, Vec<usize>) = if self.grown {
            let mut extents = vec![(0usize, 0usize); self.nodes.len()];
            let mut mapping = Vec::with_capacity(self.num_series);
            for (i, node) in self.nodes.iter().enumerate() {
                if i != 0 && node.is_leaf() {
                    extents[i] = (mapping.len(), node.members.len());
                    mapping.extend_from_slice(&node.members);
                }
            }
            (extents, mapping)
        } else {
            (
                self.nodes.iter().map(|n| (n.store_start, n.store_len)).collect(),
                self.store_to_dataset.clone(),
            )
        };

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.num_series);
        meta.put_usize(self.nodes.len());
        w.push(meta);

        let mut nodes = Section::new();
        for (node, &(store_start, store_len)) in self.nodes.iter().zip(extents.iter()) {
            nodes.put_u16s(&node.word.symbols);
            nodes.put_u8s(&node.word.bits);
            nodes.put_usizes(&node.children);
            nodes.put_usize(store_start);
            nodes.put_usize(store_len);
        }
        w.push(nodes);

        let mut mapping_sec = Section::new();
        mapping_sec.put_usizes(&mapping);
        w.push(mapping_sec);

        let mut hist = Section::new();
        codec::put_histogram(&mut hist, &self.histogram);
        w.push(hist);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &IsaxConfig) -> hydra_persist::Result<Self> {
        Self::load_backed(path, dataset, config, StoreBacking::Resident)
    }

    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &IsaxConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        Self::load_from(path, DataSource::InMemory(dataset), config, backing)
    }

    /// Loads without ever materializing a streamed dataset: shape and
    /// fingerprint come from the source's header facts, and the raw series
    /// re-attach straight from the validated snapshot file.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &IsaxConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = source.fingerprint();
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        let node_count = meta.get_usize()?;
        if series_len != source.series_len() || num_series != source.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let symbols = sec.get_u16s()?;
            let bits = sec.get_u8s()?;
            if symbols.len() != bits.len() {
                return Err(PersistError::Corrupt(
                    "iSAX word symbols and bits differ in length".into(),
                ));
            }
            let children = sec.get_usizes()?;
            let store_start = sec.get_usize()?;
            let store_len = sec.get_usize()?;
            if store_start
                .checked_add(store_len)
                .map_or(true, |end| end > num_series)
            {
                return Err(PersistError::Corrupt(
                    "leaf extent exceeds the series store".into(),
                ));
            }
            nodes.push(Node {
                word: IsaxWord { symbols, bits },
                children,
                // Build-time scratch; empty after materialization either way.
                members: Vec::new(),
                member_words: Vec::new(),
                store_start,
                store_len,
            });
        }
        if nodes
            .iter()
            .any(|n| n.children.iter().any(|&c| c == 0 || c >= node_count))
        {
            return Err(PersistError::Corrupt("node child id out of range".into()));
        }

        let mut sec = r.next_section()?;
        let store_to_dataset = sec.get_usizes()?;
        if store_to_dataset.len() != num_series {
            return Err(PersistError::Corrupt(
                "leaf-order mapping does not cover the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let histogram = codec::get_histogram(&mut sec)?;

        let store = hydra_persist::backing::attach_permuted_store_from(
            path,
            source,
            &store_to_dataset,
            config.storage,
            backing,
        )?;

        Ok(Self {
            config: *config,
            series_len,
            breakpoints: normal_breakpoints(config.sax.max_cardinality()),
            nodes,
            store,
            store_to_dataset,
            dataset_to_store: Vec::new(),
            histogram,
            num_series,
            data_fingerprint,
            grown: false,
        })
    }
}

impl HierarchicalIndex for Isax2Plus {
    fn roots(&self) -> Vec<usize> {
        vec![0]
    }

    fn is_leaf(&self, node: usize) -> bool {
        node != 0 && self.nodes[node].is_leaf()
    }

    fn children(&self, node: usize) -> Vec<usize> {
        self.nodes[node].children.clone()
    }

    fn min_dist(&self, query: &[f32], node: usize) -> f32 {
        if node == 0 {
            return 0.0;
        }
        let query_paa = paa(query, self.config.sax.segments);
        mindist_paa_isax(
            &query_paa,
            &self.nodes[node].word,
            &self.breakpoints,
            self.series_len,
            self.config.sax.max_bits,
        )
    }

    fn visit_leaf(
        &self,
        node: usize,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    ) {
        let n = &self.nodes[node];
        if !self.grown {
            if n.store_len == 0 {
                return;
            }
            self.store
                .read_range(n.store_start, n.store_len, stats, &mut |pos, series| {
                    visit(self.store_to_dataset[pos], series);
                });
            return;
        }
        // Grown tree: the leaf's series live at its members' store rows —
        // the original (ascending) leaf block plus appended arrivals. The
        // rows are gathered and walked as maximal contiguous runs so
        // sequential leaf I/O stays sequential where the layout permits.
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            self.store
                .read_range(rows[i], j - i, stats, &mut |pos, series| {
                    visit(self.store_to_dataset[pos], series);
                });
            i = j;
        }
    }

    fn leaf_size(&self, node: usize) -> usize {
        self.leaf_count(node)
    }

    /// Mirrors `visit_leaf`'s run structure through the store's
    /// `scan_refine`, so on a coded store the leaf scan prunes on
    /// compressed pages (and only survivors read exact f32), while on a
    /// raw store the I/O charges are exactly `visit_leaf`'s.
    fn refine_leaf(
        &self,
        node: usize,
        query: &[f32],
        best_so_far: f32,
        stats: &mut QueryStats,
        accept: &mut dyn FnMut(usize, f32) -> f32,
    ) -> u64 {
        let n = &self.nodes[node];
        let mut bound = best_so_far;
        if !self.grown {
            if n.store_len == 0 {
                return 0;
            }
            self.store
                .scan_refine(n.store_start, n.store_len, query, bound, stats, &mut |pos, d| {
                    accept(self.store_to_dataset[pos], d)
                });
            return n.store_len as u64;
        }
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            bound = self
                .store
                .scan_refine(rows[i], j - i, query, bound, stats, &mut |pos, d| {
                    accept(self.store_to_dataset[pos], d)
                });
            i = j;
        }
        rows.len() as u64
    }
}

impl AnnIndex for Isax2Plus {
    fn name(&self) -> &'static str {
        "iSAX2+"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            streaming_insert: true,
            representation: Representation::Isax,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.word.symbols.len() * (std::mem::size_of::<u16>() + std::mem::size_of::<u8>())
                    + n.children.len() * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + (self.store_to_dataset.len() + self.dataset_to_store.len())
                * std::mem::size_of::<usize>()
            + self.breakpoints.len() * std::mem::size_of::<f32>()
    }

    fn store_counters(&self) -> Option<hydra_core::StoreCounters> {
        Some(self.store.counters())
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        let spec = SearchSpec::from_params(params, Some(&self.histogram));
        Ok(knn_search(self, query, &spec))
    }

    /// Batched search with batch-aware storage scheduling: each query's
    /// likeliest first leaf is predicted I/O-free ([`predict_first_leaf`]'s
    /// greedy min-dist descent — the same heuristic best-first search uses
    /// to seed its bound), the union of those leaves' store ranges is
    /// pinned in the buffer pool and prefetched as one ascending page
    /// sweep, and only then do the queries run, each exactly as
    /// [`Self::search`] would. Answers and per-query logical counters are
    /// bit-identical to per-query `search`; what improves is the pool
    /// economics (hits, misses, I/O operations) — the batch's shared hot
    /// leaves stay resident instead of thrashing, and their faults are
    /// charged as one sequential sweep. A resident store has no I/O to
    /// schedule and skips the ceremony.
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        let pinned = if self.store.is_file_backed() && queries.len() > 1 {
            let mut ranges = Vec::new();
            for query in queries {
                if query.len() != self.series_len {
                    continue;
                }
                if let Some(leaf) = predict_first_leaf(self, query) {
                    self.leaf_store_ranges(leaf, &mut ranges);
                }
            }
            self.store.pin_working_set(&ranges, true)
        } else {
            Vec::new()
        };
        let results = queries.iter().map(|q| self.search(q, params)).collect();
        self.store.release_working_set(&pinned);
        results
    }

    /// Streaming ingest by continuing the build's insert sequence: each new
    /// series is appended to the store (arrival order), routed to its leaf
    /// and split on overflow exactly as [`Isax2Plus::build`] would have done
    /// — so the grown tree's topology, membership and answers are identical
    /// to a fresh build over the full collection. The δ-ε histogram is
    /// re-sampled over the grown collection after the batch.
    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        for series in batch {
            if series.len() != self.series_len {
                return Err(Error::DimensionMismatch {
                    expected: self.series_len,
                    found: series.len(),
                });
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.activate_growth();
        for series in batch {
            let id = self.num_series;
            let row = self.store.append(series)?;
            self.store_to_dataset.push(id);
            self.dataset_to_store.push(row);
            self.num_series += 1;
            let word = self.full_word(series);
            self.insert_series(id, word, &FetchSource::Store);
        }
        let store = &self.store;
        let dataset_to_store = &self.dataset_to_store;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        self.histogram = DistanceHistogram::from_pairwise(
            self.num_series,
            self.config.histogram_samples,
            256,
            self.config.seed,
            |i, j| {
                store.read_uncharged(dataset_to_store[i], &mut a);
                store.read_uncharged(dataset_to_store[j], &mut b);
                hydra_core::euclidean(&a, &b)
            },
        );
        // A fresh build hands out a store with clean I/O counters; ingest
        // restores the same post-build state.
        self.store.reset_io();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn build_small(n: usize, len: usize) -> (Dataset, Isax2Plus) {
        let data = random_walk(n, len, 17);
        let config = IsaxConfig {
            sax: SaxParams::new(8, 8),
            leaf_capacity: 16,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 5,
        };
        let index = Isax2Plus::build(&data, config).unwrap();
        (data, index)
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(8).unwrap();
        assert!(Isax2Plus::build(&empty, IsaxConfig::default()).is_err());
        let one = random_walk(1, 8, 0);
        let bad = IsaxConfig {
            leaf_capacity: 0,
            ..IsaxConfig::default()
        };
        assert!(Isax2Plus::build(&one, bad).is_err());
    }

    #[test]
    fn all_series_land_in_exactly_one_leaf() {
        let (data, index) = build_small(600, 64);
        let total: usize = (1..index.nodes.len())
            .filter(|&i| index.is_leaf(i))
            .map(|i| index.leaf_size(i))
            .sum();
        assert_eq!(total, data.len());
        assert!(index.num_leaves() > 1);
        assert!(index.avg_leaf_fill() > 0.0 && index.avg_leaf_fill() <= 1.0);
        assert_eq!(index.name(), "iSAX2+");
        assert!(index.memory_footprint() > 0);
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let (data, index) = build_small(400, 64);
        for qi in [0usize, 101, 399] {
            let query = data.series(qi);
            let res = index.search(query, &SearchParams::exact(10)).unwrap();
            let gt = exact_knn(&data, query, 10);
            for (a, b) in res.neighbors.iter().zip(gt.iter()) {
                assert!((a.distance - b.distance).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let (data, index) = build_small(400, 64);
        let queries = random_walk(8, 64, 71);
        for eps in [1.0f32, 3.0] {
            for q in queries.iter() {
                let res = index.search(q, &SearchParams::epsilon(5, eps)).unwrap();
                let gt = exact_knn(&data, q, 5);
                let bound = (1.0 + eps) * gt[4].distance + 1e-4;
                for n in &res.neighbors {
                    assert!(n.distance <= bound);
                }
            }
        }
    }

    #[test]
    fn ng_search_respects_leaf_budget() {
        let (_, index) = build_small(600, 64);
        let queries = random_walk(3, 64, 3);
        for q in queries.iter() {
            let res = index.search(q, &SearchParams::ng(5, 1)).unwrap();
            assert!(res.stats.leaves_visited <= 1);
            assert!(!res.neighbors.is_empty());
            let res3 = index.search(q, &SearchParams::ng(5, 3)).unwrap();
            assert!(res3.stats.leaves_visited <= 3);
            assert!(res3.kth_distance() <= res.kth_distance() + 1e-6);
        }
    }

    #[test]
    fn exact_search_prunes_part_of_the_dataset() {
        let (data, index) = build_small(1000, 64);
        let q = data.series(7);
        let res = index.search(q, &SearchParams::exact(1)).unwrap();
        assert_eq!(res.neighbors[0].index, 7);
        assert!((res.stats.series_scanned as usize) < data.len());
    }

    #[test]
    fn search_rejects_wrong_dimension() {
        let (_, index) = build_small(50, 64);
        assert!(index.search(&[0.0; 16], &SearchParams::exact(1)).is_err());
    }

    #[test]
    fn snapshot_roundtrip_answers_identically_and_checks_fingerprint() {
        let (data, index) = build_small(300, 64);
        let path = std::env::temp_dir().join(format!(
            "hydra-isax-roundtrip-{}.snap",
            std::process::id()
        ));
        index.save(&path).unwrap();
        let loaded = Isax2Plus::load(&path, &data, index.config()).unwrap();
        for qi in [0usize, 50, 299] {
            let q = data.series(qi);
            for params in [SearchParams::exact(5), SearchParams::ng(5, 2)] {
                let a = index.search(q, &params).unwrap();
                let b = loaded.search(q, &params).unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                assert_eq!(a.stats, b.stats, "loaded tree must pay identical costs");
            }
        }
        // A different build configuration must be refused, not absorbed.
        let other = IsaxConfig {
            leaf_capacity: index.config().leaf_capacity + 1,
            ..*index.config()
        };
        assert!(matches!(
            Isax2Plus::load(&path, &data, &other),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        // So must different data of the same shape.
        let other_data = random_walk(300, 64, 999);
        assert!(matches!(
            Isax2Plus::load(&path, &other_data, index.config()),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_matches_fresh_build_and_compacts_snapshots() {
        let data = random_walk(300, 64, 17);
        let config = IsaxConfig {
            sax: SaxParams::new(8, 8),
            leaf_capacity: 16,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 5,
        };
        let fresh = Isax2Plus::build(&data, config).unwrap();

        let head = Dataset::from_flat(64, data.as_flat()[..180 * 64].to_vec()).unwrap();
        let tail: Vec<&[f32]> = (180..300).map(|i| data.series(i)).collect();

        // Grow a freshly built tree and one round-tripped through a
        // snapshot (whose leaves must be re-hydrated from their extents).
        let built = Isax2Plus::build(&head, config).unwrap();
        let path = std::env::temp_dir().join(format!(
            "hydra-isax-ingest-{}.snap",
            std::process::id()
        ));
        built.save(&path).unwrap();
        let loaded = Isax2Plus::load(&path, &head, &config).unwrap();
        std::fs::remove_file(&path).ok();

        for mut grown in [built, loaded] {
            grown.insert_batch(&tail[..43]).unwrap();
            grown.insert_batch(&tail[43..]).unwrap();
            assert_eq!(grown.num_series(), fresh.num_series());
            assert_eq!(grown.nodes.len(), fresh.nodes.len());
            for qi in [0usize, 50, 200, 299] {
                let q = data.series(qi);
                for params in [
                    SearchParams::exact(5),
                    SearchParams::ng(5, 2),
                    SearchParams::delta_epsilon(5, 0.9, 1.0),
                ] {
                    let a = fresh.search(q, &params).unwrap();
                    let b = grown.search(q, &params).unwrap();
                    assert_eq!(a.neighbors.len(), b.neighbors.len());
                    for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                        assert_eq!(x.index, y.index);
                        assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                    }
                    // CPU-side costs match; only page-level I/O economics
                    // may differ (the grown store is arrival-interleaved).
                    assert_eq!(a.stats.distance_computations, b.stats.distance_computations);
                    assert_eq!(a.stats.leaves_visited, b.stats.leaves_visited);
                    assert_eq!(a.stats.series_scanned, b.stats.series_scanned);
                }
            }

            // Saving a grown tree compacts it back to the canonical
            // leaf-order layout: bytes identical to the fresh build's.
            let dir = std::env::temp_dir();
            let fresh_path =
                dir.join(format!("hydra-isax-fresh-{}.snap", std::process::id()));
            let grown_path =
                dir.join(format!("hydra-isax-grown-{}.snap", std::process::id()));
            fresh.save(&fresh_path).unwrap();
            grown.save(&grown_path).unwrap();
            assert_eq!(
                std::fs::read(&fresh_path).unwrap(),
                std::fs::read(&grown_path).unwrap(),
                "a grown iSAX2+ tree must snapshot byte-identically to a fresh build"
            );
            std::fs::remove_file(&fresh_path).ok();
            std::fs::remove_file(&grown_path).ok();

            // Dimension mismatches reject the whole batch without growing.
            let before = grown.num_series();
            assert!(grown.insert_batch(&[&[0.0f32; 3]]).is_err());
            assert_eq!(grown.num_series(), before);
        }
    }

    #[test]
    fn isax_has_more_leaves_than_dstree_like_fill() {
        // Sanity property the paper relies on: iSAX2+ leaves are not
        // perfectly filled because regions are fixed by SAX words.
        let (_, index) = build_small(600, 64);
        assert!(index.avg_leaf_fill() < 1.0);
    }
}
