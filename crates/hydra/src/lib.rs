//! # hydra
//!
//! Facade crate for the Lernaean Hydra benchmark: a unified Rust
//! implementation of data-series and high-dimensional approximate
//! similarity search, reproducing *"Return of the Lernaean Hydra:
//! Experimental Evaluation of Data Series Approximate Similarity Search"*
//! (Echihabi et al., PVLDB 2019).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * the core types and the generic exact/ε/δ-ε search driver
//!   ([`hydra_core`]),
//! * the summarizations ([`hydra_summarize`]), the simulated disk layer
//!   ([`hydra_storage`]), the dataset/query generators ([`hydra_data`]) and
//!   the metrics/benchmark runner ([`hydra_eval`]),
//! * every method of the study: [`DsTree`], [`Isax2Plus`], [`VaPlusFile`],
//!   [`Hnsw`], [`InvertedMultiIndex`], [`Srs`], [`Qalsh`] and [`Flann`].
//!
//! ## Quick example
//!
//! ```
//! use hydra::prelude::*;
//!
//! // 1. Generate a small random-walk dataset and a query workload.
//! let data = hydra::data::random_walk(2_000, 64, 7);
//! let workload = hydra::data::noisy_queries(&data, 10, &[0.1], 8);
//! let truth = hydra::data::ground_truth(&data, &workload, 10);
//!
//! // 2. Build a DSTree and answer delta-epsilon-approximate 10-NN queries.
//! let index = DsTree::build(&data, DsTreeConfig::default()).unwrap();
//! let report = hydra::eval::run_workload(
//!     &index,
//!     &workload,
//!     &truth,
//!     &SearchParams::delta_epsilon(10, 0.99, 1.0),
//! );
//! assert!(report.accuracy.map > 0.5);
//!
//! // 3. Same workload, serving mode: 4 worker threads, batched queries.
//! //    Accuracy and cost counters are identical to the sequential run.
//! let parallel = hydra::eval::run_workload_parallel(
//!     &index,
//!     &workload,
//!     &truth,
//!     &SearchParams::delta_epsilon(10, 0.99, 1.0),
//!     4,
//! );
//! assert_eq!(parallel.accuracy, report.accuracy);
//! ```
//!
//! Every index also accepts whole batches through
//! [`AnnIndex::search_batch`]; IMI, VA+file, SRS and QALSH override it to
//! amortize per-query setup (ADC tables, scratch buffers) across the batch.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use hydra_core as core;
pub use hydra_data as data;
pub use hydra_eval as eval;
pub use hydra_persist as persist;
pub use hydra_storage as storage;
pub use hydra_summarize as summarize;

pub use hydra_core::{
    AnnIndex, Capabilities, Dataset, DistanceHistogram, Error, Neighbor, QueryStats,
    Representation, Result, SearchMode, SearchParams, SearchResult,
};
pub use hydra_dstree::{DsTree, DsTreeConfig};
pub use hydra_flann::{Flann, FlannAlgorithm, FlannConfig, KdForest, KdForestConfig, KMeansTree, KMeansTreeConfig};
pub use hydra_persist::{PersistError, PersistentIndex};
pub use hydra_hnsw::{Hnsw, HnswConfig};
pub use hydra_imi::{ImiConfig, InvertedMultiIndex};
pub use hydra_isax::{Isax2Plus, IsaxConfig};
pub use hydra_lsh::{Qalsh, QalshConfig, Srs, SrsConfig};
pub use hydra_storage::StorageConfig;
pub use hydra_vafile::{VaPlusFile, VaPlusFileConfig};

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use hydra_core::{AnnIndex, Dataset, Neighbor, SearchMode, SearchParams};
    pub use hydra_dstree::{DsTree, DsTreeConfig};
    pub use hydra_flann::{Flann, FlannConfig};
    pub use hydra_hnsw::{Hnsw, HnswConfig};
    pub use hydra_imi::{ImiConfig, InvertedMultiIndex};
    pub use hydra_isax::{Isax2Plus, IsaxConfig};
    pub use hydra_lsh::{Qalsh, QalshConfig, Srs, SrsConfig};
    pub use hydra_persist::PersistentIndex;
    pub use hydra_storage::StorageConfig;
    pub use hydra_vafile::{VaPlusFile, VaPlusFileConfig};
}

/// Builds every method of the study over the same dataset with reasonable
/// laptop-scale defaults, returning them behind the uniform [`AnnIndex`]
/// interface. Used by the examples and the benchmark harness.
///
/// `in_memory` selects the storage configuration of the disk-capable
/// methods (buffer pool larger than the dataset vs. a small pool).
pub fn build_all_methods(
    dataset: &Dataset,
    in_memory: bool,
    seed: u64,
) -> Vec<Box<dyn AnnIndex>> {
    let storage = if in_memory {
        StorageConfig::in_memory()
    } else {
        StorageConfig::on_disk()
    };
    let mut methods: Vec<Box<dyn AnnIndex>> = Vec::new();
    methods.push(Box::new(
        DsTree::build(
            dataset,
            DsTreeConfig {
                storage,
                seed,
                ..DsTreeConfig::default()
            },
        )
        .expect("DSTree build"),
    ));
    methods.push(Box::new(
        Isax2Plus::build(
            dataset,
            IsaxConfig {
                storage,
                seed,
                ..IsaxConfig::default()
            },
        )
        .expect("iSAX2+ build"),
    ));
    methods.push(Box::new(
        VaPlusFile::build(
            dataset,
            VaPlusFileConfig {
                storage,
                seed,
                ..VaPlusFileConfig::default()
            },
        )
        .expect("VA+file build"),
    ));
    methods.push(Box::new(
        Srs::build(
            dataset,
            SrsConfig {
                storage,
                seed,
                ..SrsConfig::default()
            },
        )
        .expect("SRS build"),
    ));
    if dataset.series_len() % 2 == 0 && dataset.series_len() % 8 == 0 {
        methods.push(Box::new(
            InvertedMultiIndex::build(
                dataset,
                ImiConfig {
                    seed,
                    ..ImiConfig::default()
                },
            )
            .expect("IMI build"),
        ));
    }
    if in_memory {
        methods.push(Box::new(
            Hnsw::build(
                dataset,
                HnswConfig {
                    seed,
                    m: 8,
                    ef_construction: 128,
                },
            )
            .expect("HNSW build"),
        ));
        methods.push(Box::new(
            Qalsh::build(
                dataset,
                QalshConfig {
                    seed,
                    ..QalshConfig::default()
                },
            )
            .expect("QALSH build"),
        ));
        methods.push(Box::new(
            Flann::build(dataset, FlannConfig::default()).expect("FLANN build"),
        ));
    }
    methods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_methods_in_memory_includes_memory_only_methods() {
        let data = data::random_walk(300, 32, 5);
        let methods = build_all_methods(&data, true, 1);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"DSTree"));
        assert!(names.contains(&"iSAX2+"));
        assert!(names.contains(&"VA+file"));
        assert!(names.contains(&"SRS"));
        assert!(names.contains(&"IMI"));
        assert!(names.contains(&"HNSW"));
        assert!(names.contains(&"QALSH"));
        assert!(names.contains(&"FLANN"));
    }

    #[test]
    fn build_all_methods_on_disk_excludes_memory_only_methods() {
        let data = data::random_walk(300, 32, 5);
        let methods = build_all_methods(&data, false, 1);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(!names.contains(&"HNSW"));
        assert!(!names.contains(&"QALSH"));
        assert!(!names.contains(&"FLANN"));
        assert!(names.iter().all(|n| !n.is_empty()));
        for m in &methods {
            assert!(m.capabilities().disk_resident, "{} must be disk capable", m.name());
        }
    }
}
