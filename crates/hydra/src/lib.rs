//! # hydra
//!
//! Facade crate for the Lernaean Hydra benchmark: a unified Rust
//! implementation of data-series and high-dimensional approximate
//! similarity search, reproducing *"Return of the Lernaean Hydra:
//! Experimental Evaluation of Data Series Approximate Similarity Search"*
//! (Echihabi et al., PVLDB 2019).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * the core types and the generic exact/ε/δ-ε search driver
//!   ([`hydra_core`]),
//! * the summarizations ([`hydra_summarize`]), the simulated disk layer
//!   ([`hydra_storage`]), the dataset/query generators ([`hydra_data`]) and
//!   the metrics/benchmark runner ([`hydra_eval`]),
//! * every method of the study: [`DsTree`], [`Isax2Plus`], [`VaPlusFile`],
//!   [`Hnsw`], [`InvertedMultiIndex`], [`Srs`], [`Qalsh`] and [`Flann`],
//! * sharded scale-out ([`hydra_shard`]): [`partition()`] a dataset,
//!   wrap per-shard indexes in a [`ShardedIndex`], and every consumer of
//!   [`AnnIndex`] — the figure binaries, the workload runners, serving —
//!   works over shards unchanged.
//!
//! ## Quick example
//!
//! ```
//! use hydra::prelude::*;
//!
//! // 1. Generate a small random-walk dataset and a query workload.
//! let data = hydra::data::random_walk(2_000, 64, 7);
//! let workload = hydra::data::noisy_queries(&data, 10, &[0.1], 8);
//! let truth = hydra::data::ground_truth(&data, &workload, 10);
//!
//! // 2. Build a DSTree and answer delta-epsilon-approximate 10-NN queries.
//! let index = DsTree::build(&data, DsTreeConfig::default()).unwrap();
//! let report = hydra::eval::run_workload(
//!     &index,
//!     &workload,
//!     &truth,
//!     &SearchParams::delta_epsilon(10, 0.99, 1.0),
//! );
//! assert!(report.accuracy.map > 0.5);
//!
//! // 3. Same workload, serving mode: 4 worker threads, batched queries.
//! //    Accuracy and cost counters are identical to the sequential run.
//! let parallel = hydra::eval::run_workload_parallel(
//!     &index,
//!     &workload,
//!     &truth,
//!     &SearchParams::delta_epsilon(10, 0.99, 1.0),
//!     4,
//! );
//! assert_eq!(parallel.accuracy, report.accuracy);
//! ```
//!
//! Every index also accepts whole batches through
//! [`AnnIndex::search_batch`]; IMI, VA+file, SRS and QALSH override it to
//! amortize per-query setup (ADC tables, scratch buffers) across the batch.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use hydra_core as core;
pub use hydra_data as data;
pub use hydra_eval as eval;
pub use hydra_persist as persist;
pub use hydra_shard as shard;
pub use hydra_storage as storage;
pub use hydra_summarize as summarize;

pub use hydra_core::{
    merge_top_k, AnnIndex, Capabilities, Dataset, DistanceHistogram, Error, Neighbor, QueryStats,
    Representation, Result, SearchKey, SearchMode, SearchParams, SearchResult,
};
pub use hydra_data::{partition, PartitionScheme, ShardMap};
pub use hydra_shard::ShardedIndex;
pub use hydra_dstree::{DsTree, DsTreeConfig};
pub use hydra_flann::{Flann, FlannAlgorithm, FlannConfig, KdForest, KdForestConfig, KMeansTree, KMeansTreeConfig};
pub use hydra_persist::{PersistError, PersistentIndex, StoreBacking};
pub use hydra_hnsw::{Hnsw, HnswConfig};
pub use hydra_imi::{ImiConfig, InvertedMultiIndex};
pub use hydra_isax::{Isax2Plus, IsaxConfig};
pub use hydra_lsh::{Qalsh, QalshConfig, Srs, SrsConfig};
pub use hydra_storage::{FileIoMode, PageCodec, StorageConfig};
pub use hydra_vafile::{VaPlusFile, VaPlusFileConfig};

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use hydra_core::{AnnIndex, Dataset, Neighbor, SearchMode, SearchParams};
    pub use hydra_dstree::{DsTree, DsTreeConfig};
    pub use hydra_flann::{Flann, FlannConfig};
    pub use hydra_hnsw::{Hnsw, HnswConfig};
    pub use hydra_imi::{ImiConfig, InvertedMultiIndex};
    pub use hydra_isax::{Isax2Plus, IsaxConfig};
    pub use hydra_lsh::{Qalsh, QalshConfig, Srs, SrsConfig};
    pub use hydra_persist::PersistentIndex;
    pub use hydra_shard::ShardedIndex;
    pub use hydra_storage::StorageConfig;
    pub use hydra_vafile::{VaPlusFile, VaPlusFileConfig};
}

/// The standard laptop-scale build configuration of every method in the
/// zoo — the **single source of truth** shared by [`build_all_methods`],
/// the figure harness (`hydra-bench`) and the snapshot-boot registry
/// ([`standard_registry`]).
///
/// Snapshot fingerprints hash the full build configuration, so a saver and
/// a loader must construct configurations from the same place or loading
/// fails with [`PersistError::FingerprintMismatch`]; centralizing them here
/// is what lets `fig* --save-index` runs and a later `hydra-serve` boot
/// agree by construction.
#[derive(Debug, Clone, Copy)]
pub struct StandardConfigs {
    /// DSTree build parameters.
    pub dstree: DsTreeConfig,
    /// iSAX2+ build parameters.
    pub isax: IsaxConfig,
    /// VA+file build parameters.
    pub vafile: VaPlusFileConfig,
    /// SRS build parameters.
    pub srs: SrsConfig,
    /// IMI build parameters (only applicable when the series length is a
    /// multiple of 8).
    pub imi: ImiConfig,
    /// HNSW build parameters (in-memory scenarios only).
    pub hnsw: HnswConfig,
    /// QALSH build parameters (in-memory scenarios only).
    pub qalsh: QalshConfig,
    /// FLANN auto-tuning parameters (in-memory scenarios only).
    pub flann: FlannConfig,
}

/// The standard zoo configuration for one scenario: `in_memory` selects the
/// storage configuration of the disk-capable methods (buffer pool larger
/// than the dataset vs. a small pool), `seed` the shared build seed.
pub fn standard_configs(in_memory: bool, seed: u64) -> StandardConfigs {
    standard_configs_pooled(in_memory, seed, None)
}

/// [`standard_configs`] with the buffer-pool capacity of the disk-capable
/// methods overridden (`--pool-pages N`). Pool capacity shapes only I/O
/// economics — it is not part of any snapshot fingerprint — so a serving
/// process may pick any pool for snapshots saved under the defaults.
pub fn standard_configs_pooled(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
) -> StandardConfigs {
    standard_configs_tiered(in_memory, seed, pool_pages, PageCodec::F32)
}

/// [`standard_configs_pooled`] with the page codec of the disk-capable
/// methods' stores selected too (`--page-codec u8|f16|f32`). Like the pool
/// capacity, the codec is a pure serving knob: it is not part of any
/// snapshot fingerprint, shapes only I/O economics, and never changes
/// answers — coded stores prune on compressed pages but recompute every
/// returned distance from exact f32 series.
pub fn standard_configs_tiered(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    codec: PageCodec,
) -> StandardConfigs {
    standard_configs_io(in_memory, seed, pool_pages, codec, FileIoMode::Pread)
}

/// [`standard_configs_tiered`] with the file I/O mode of the disk-capable
/// methods' stores selected too (`--backing pread|mmap`). The last of the
/// serving knobs: like the pool capacity and the codec it is not part of
/// any snapshot fingerprint and never changes answers — both modes move
/// the same page bytes through the same accounting path.
pub fn standard_configs_io(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    codec: PageCodec,
    io: FileIoMode,
) -> StandardConfigs {
    let mut storage = if in_memory {
        StorageConfig::in_memory()
    } else {
        StorageConfig::on_disk()
    };
    if let Some(pages) = pool_pages {
        storage = storage.with_pool_pages(pages);
    }
    storage = storage.with_page_codec(codec).with_io_mode(io);
    StandardConfigs {
        dstree: DsTreeConfig {
            storage,
            seed,
            ..DsTreeConfig::default()
        },
        isax: IsaxConfig {
            storage,
            seed,
            ..IsaxConfig::default()
        },
        vafile: VaPlusFileConfig {
            storage,
            seed,
            ..VaPlusFileConfig::default()
        },
        srs: SrsConfig {
            storage,
            seed,
            ..SrsConfig::default()
        },
        imi: ImiConfig {
            seed,
            ..ImiConfig::default()
        },
        hnsw: HnswConfig {
            m: 8,
            ef_construction: 128,
            seed,
        },
        qalsh: QalshConfig {
            seed,
            ..QalshConfig::default()
        },
        flann: FlannConfig::default(),
    }
}

/// A snapshot-loading registry covering the whole zoo under the standard
/// configuration of the given scenario (see [`standard_configs`]): every
/// kind is registered — including the memory-only methods, whose snapshots
/// simply never occur in on-disk scenario directories — so
/// [`persist::LoaderRegistry::load_any`] can restore any snapshot a
/// `fig* --save-index` run (or [`PersistentIndex::save`] under the same
/// configs) produced.
pub fn standard_registry(in_memory: bool, seed: u64) -> persist::LoaderRegistry {
    standard_registry_pooled(in_memory, seed, None)
}

/// [`standard_registry`] with the buffer-pool capacity of the disk-capable
/// methods overridden (see [`standard_configs_pooled`]) — the registry a
/// `hydra-serve --pool-pages N` boot uses. Whether the loaded stores are
/// resident or file-backed is chosen per load via
/// [`persist::LoaderRegistry::load_any_backed`], not here.
pub fn standard_registry_pooled(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
) -> persist::LoaderRegistry {
    standard_registry_tiered(in_memory, seed, pool_pages, PageCodec::F32)
}

/// [`standard_registry_pooled`] with the page codec selected too — the
/// registry a `hydra-serve --page-codec u8` boot uses (see
/// [`standard_configs_tiered`]).
pub fn standard_registry_tiered(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    codec: PageCodec,
) -> persist::LoaderRegistry {
    standard_registry_io(in_memory, seed, pool_pages, codec, FileIoMode::Pread)
}

/// [`standard_registry_tiered`] with the file I/O mode selected too — the
/// registry a `hydra-serve --backing mmap` boot uses (see
/// [`standard_configs_io`]).
pub fn standard_registry_io(
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    codec: PageCodec,
    io: FileIoMode,
) -> persist::LoaderRegistry {
    let configs = standard_configs_io(in_memory, seed, pool_pages, codec, io);
    let mut registry = persist::LoaderRegistry::new();
    registry.register::<DsTree>(configs.dstree);
    registry.register::<Isax2Plus>(configs.isax);
    registry.register::<VaPlusFile>(configs.vafile);
    registry.register::<Srs>(configs.srs);
    registry.register::<InvertedMultiIndex>(configs.imi);
    registry.register::<Hnsw>(configs.hnsw);
    registry.register::<Qalsh>(configs.qalsh);
    registry.register::<Flann>(configs.flann);
    registry
}

/// Builds every method of the study over the same dataset with reasonable
/// laptop-scale defaults, returning them behind the uniform [`AnnIndex`]
/// interface. Used by the examples and the benchmark harness.
///
/// `in_memory` selects the storage configuration of the disk-capable
/// methods (buffer pool larger than the dataset vs. a small pool). The
/// configurations are exactly [`standard_configs`].
pub fn build_all_methods(
    dataset: &Dataset,
    in_memory: bool,
    seed: u64,
) -> Vec<Box<dyn AnnIndex>> {
    let configs = standard_configs(in_memory, seed);
    let mut methods: Vec<Box<dyn AnnIndex>> = Vec::new();
    methods.push(Box::new(
        DsTree::build(dataset, configs.dstree).expect("DSTree build"),
    ));
    methods.push(Box::new(
        Isax2Plus::build(dataset, configs.isax).expect("iSAX2+ build"),
    ));
    methods.push(Box::new(
        VaPlusFile::build(dataset, configs.vafile).expect("VA+file build"),
    ));
    methods.push(Box::new(
        Srs::build(dataset, configs.srs).expect("SRS build"),
    ));
    if dataset.series_len() % 2 == 0 && dataset.series_len() % 8 == 0 {
        methods.push(Box::new(
            InvertedMultiIndex::build(dataset, configs.imi).expect("IMI build"),
        ));
    }
    if in_memory {
        methods.push(Box::new(
            Hnsw::build(dataset, configs.hnsw).expect("HNSW build"),
        ));
        methods.push(Box::new(
            Qalsh::build(dataset, configs.qalsh).expect("QALSH build"),
        ));
        methods.push(Box::new(
            Flann::build(dataset, configs.flann).expect("FLANN build"),
        ));
    }
    methods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_methods_in_memory_includes_memory_only_methods() {
        let data = data::random_walk(300, 32, 5);
        let methods = build_all_methods(&data, true, 1);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"DSTree"));
        assert!(names.contains(&"iSAX2+"));
        assert!(names.contains(&"VA+file"));
        assert!(names.contains(&"SRS"));
        assert!(names.contains(&"IMI"));
        assert!(names.contains(&"HNSW"));
        assert!(names.contains(&"QALSH"));
        assert!(names.contains(&"FLANN"));
    }

    #[test]
    fn standard_registry_loads_what_standard_configs_built() {
        let data = data::random_walk(200, 32, 11);
        let configs = standard_configs(true, 3);
        let index = Isax2Plus::build(&data, configs.isax).unwrap();
        let path = std::env::temp_dir().join(format!(
            "hydra-facade-registry-{}.snap",
            std::process::id()
        ));
        index.save(&path).unwrap();
        let registry = standard_registry(true, 3);
        assert_eq!(registry.kinds().len(), 8);
        assert!(registry.contains("isax2+") && registry.contains("flann"));
        let loaded = registry.load_any(&path, &data).unwrap();
        assert_eq!(loaded.name(), "iSAX2+");
        let q = data.series(0);
        let a = index.search(q, &SearchParams::ng(5, 8)).unwrap();
        let b = loaded.search(q, &SearchParams::ng(5, 8)).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        // A different seed is a different fingerprint: loading must refuse.
        let other = standard_registry(true, 4);
        assert!(matches!(
            other.load_any(&path, &data),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshots_load_at_any_pool_size_and_backing() {
        // The serving knobs — pool capacity and store backing — are not
        // part of the snapshot fingerprint: one snapshot saved under the
        // defaults boots with any `--pool-pages` and either backing, and
        // answers bit-identically.
        let data = data::random_walk(250, 32, 8);
        let dir = std::env::temp_dir().join(format!(
            "hydra-facade-pooled-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let index = DsTree::build(&data, standard_configs(false, 5).dstree).unwrap();
        let path = dir.join("walk-dstree.snap");
        index.save(&path).unwrap();
        let baseline = index.search(data.series(3), &SearchParams::exact(5)).unwrap();
        for pool_pages in [Some(1), Some(4), None] {
            let registry = standard_registry_pooled(false, 5, pool_pages);
            for backing in [
                StoreBacking::Resident,
                StoreBacking::FileBacked {
                    dataset_snapshot: None,
                },
            ] {
                let loaded = registry.load_any_backed(&path, &data, backing).unwrap();
                let got = loaded.search(data.series(3), &SearchParams::exact(5)).unwrap();
                assert_eq!(got.neighbors, baseline.neighbors,
                    "pool {pool_pages:?} / {backing:?} drifted");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_load_under_any_page_codec_with_identical_answers() {
        // The page codec is a serving knob like the pool: one snapshot
        // saved under the defaults boots with any --page-codec, and the
        // answers — neighbors AND distances — are bit-identical, because
        // coded stores only prune on compressed pages and recompute every
        // returned distance from exact f32 series.
        let data = data::random_walk(250, 32, 9);
        let dir = std::env::temp_dir().join(format!(
            "hydra-facade-tiered-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let index = DsTree::build(&data, standard_configs(false, 9).dstree).unwrap();
        let path = dir.join("walk-dstree.snap");
        index.save(&path).unwrap();
        let baseline = index.search(data.series(7), &SearchParams::exact(5)).unwrap();
        for codec in [PageCodec::U8, PageCodec::F16] {
            let registry = standard_registry_tiered(false, 9, Some(2), codec);
            for backing in [
                StoreBacking::Resident,
                StoreBacking::FileBacked {
                    dataset_snapshot: None,
                },
            ] {
                let loaded = registry.load_any_backed(&path, &data, backing).unwrap();
                let got = loaded.search(data.series(7), &SearchParams::exact(5)).unwrap();
                assert_eq!(
                    got.neighbors, baseline.neighbors,
                    "codec {:?} / {backing:?} drifted",
                    codec
                );
                let counters = loaded.store_counters().unwrap();
                assert!(
                    counters.compressed_bytes_read > 0,
                    "codec {codec:?} / {backing:?} must have scanned compressed pages"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_all_methods_on_disk_excludes_memory_only_methods() {
        let data = data::random_walk(300, 32, 5);
        let methods = build_all_methods(&data, false, 1);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(!names.contains(&"HNSW"));
        assert!(!names.contains(&"QALSH"));
        assert!(!names.contains(&"FLANN"));
        assert!(names.iter().all(|n| !n.is_empty()));
        for m in &methods {
            assert!(m.capabilities().disk_resident, "{} must be disk capable", m.name());
        }
    }
}
