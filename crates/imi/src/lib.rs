//! # hydra-imi
//!
//! The Inverted Multi-Index (Babenko & Lempitsky) with (optimized) product
//! quantization — the state-of-the-art quantization-based inverted index of
//! the Lernaean Hydra study (the paper uses the Faiss `IMI2x…,PQ32`
//! configuration).
//!
//! ## How it works
//!
//! The vector space is decomposed into two halves; each half gets its own
//! k-means codebook of `K` coarse centroids, so the cross product defines a
//! grid of `K²` cells. Every vector is assigned to the cell given by its two
//! nearest half-centroids and stored in that cell's inverted list as a
//! compact product-quantization code (optionally after an OPQ rotation).
//!
//! A query ranks cells with the *multi-sequence algorithm* (cells visited in
//! increasing sum of half-distances), scans the inverted lists of the best
//! `nprobe` cells, and scores candidates with asymmetric distance
//! computation (ADC) on the codes. As in the paper, IMI never touches the
//! raw vectors at query time — which caps its attainable accuracy (MAP) and
//! is why its recall degrades on the hardest datasets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{
    codec, fingerprint_dataset, DataSource, Fingerprint, PersistError, PersistentIndex, Section,
    SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_summarize::quantization::{KMeans, OptimizedProductQuantizer, ProductQuantizer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of an [`InvertedMultiIndex`].
#[derive(Debug, Clone, Copy)]
pub struct ImiConfig {
    /// Number of coarse centroids per half (the grid has `coarse_k²` cells).
    pub coarse_k: usize,
    /// Number of product-quantization subspaces.
    pub pq_m: usize,
    /// Codebook size per PQ subspace.
    pub pq_k: usize,
    /// Whether to learn an OPQ rotation before product quantization.
    pub use_opq: bool,
    /// Maximum number of training vectors used to fit codebooks.
    pub training_size: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImiConfig {
    fn default() -> Self {
        Self {
            coarse_k: 32,
            pq_m: 8,
            pq_k: 64,
            use_opq: true,
            training_size: 4_096,
            kmeans_iters: 12,
            seed: 0x1111,
        }
    }
}

enum FineQuantizer {
    Plain(ProductQuantizer),
    Optimized(OptimizedProductQuantizer),
}

impl FineQuantizer {
    fn encode(&self, v: &[f32]) -> Vec<u16> {
        match self {
            FineQuantizer::Plain(pq) => pq.encode(v),
            FineQuantizer::Optimized(opq) => opq.encode(v),
        }
    }

    fn distance_table(&self, query: &[f32]) -> Vec<Vec<f32>> {
        match self {
            FineQuantizer::Plain(pq) => pq.distance_table(query),
            FineQuantizer::Optimized(opq) => opq.distance_table(query),
        }
    }

    fn distance_tables(&self, queries: &[&[f32]]) -> Vec<Vec<Vec<f32>>> {
        match self {
            FineQuantizer::Plain(pq) => pq.distance_tables(queries),
            FineQuantizer::Optimized(opq) => opq.distance_tables(queries),
        }
    }

    fn memory_footprint(&self) -> usize {
        match self {
            FineQuantizer::Plain(pq) => pq.memory_footprint(),
            FineQuantizer::Optimized(opq) => opq.memory_footprint(),
        }
    }

    /// `(subspaces, codebook size)` — the shape every stored PQ code must
    /// respect for ADC lookups to be in bounds.
    fn code_shape(&self) -> (usize, usize) {
        let pq = match self {
            FineQuantizer::Plain(pq) => pq,
            FineQuantizer::Optimized(opq) => opq.pq(),
        };
        (pq.num_subspaces(), pq.codebook_size())
    }
}

/// The IMI index.
pub struct InvertedMultiIndex {
    config: ImiConfig,
    series_len: usize,
    half: usize,
    coarse: [KMeans; 2],
    fine: FineQuantizer,
    /// `lists[i * coarse_k + j]` holds `(id, code)` pairs of cell `(i, j)`.
    lists: Vec<Vec<(u32, Vec<u16>)>>,
    num_series: usize,
    /// Content fingerprint of the build dataset. IMI is the one index that
    /// retains no raw vectors, so this is captured at build time and carried
    /// into snapshots, where loading validates it against the offered
    /// dataset.
    data_fingerprint: u64,
    /// Number of passes made over the PQ codebooks to build ADC lookup
    /// tables. Per-query search costs one pass per query; batched search
    /// costs one pass per batch — the counter makes that amortization
    /// observable (and testable) without perturbing [`QueryStats`], whose
    /// per-query values stay identical in both paths.
    adc_table_passes: AtomicU64,
}

impl InvertedMultiIndex {
    /// Builds an IMI over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the dimensionality is not
    /// even and divisible by `pq_m`.
    pub fn build(dataset: &Dataset, config: ImiConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let dim = dataset.series_len();
        if dim % 2 != 0 {
            return Err(Error::InvalidParameter(
                "IMI requires an even dimensionality".into(),
            ));
        }
        if dim % config.pq_m != 0 {
            return Err(Error::InvalidParameter(
                "dimensionality must be divisible by pq_m".into(),
            ));
        }
        let half = dim / 2;
        // Training sample: a prefix of the dataset (generators already
        // shuffle cluster membership, so a prefix is an unbiased sample).
        let train_n = dataset.len().min(config.training_size.max(1));
        let train_first: Vec<&[f32]> = (0..train_n).map(|i| &dataset.series(i)[..half]).collect();
        let train_second: Vec<&[f32]> = (0..train_n).map(|i| &dataset.series(i)[half..]).collect();
        let coarse = [
            KMeans::fit(&train_first, config.coarse_k, config.kmeans_iters, config.seed),
            KMeans::fit(
                &train_second,
                config.coarse_k,
                config.kmeans_iters,
                config.seed ^ 0xBEEF,
            ),
        ];
        let train_full: Vec<&[f32]> = (0..train_n).map(|i| dataset.series(i)).collect();
        let fine = if config.use_opq {
            FineQuantizer::Optimized(OptimizedProductQuantizer::train(
                &train_full,
                config.pq_m,
                config.pq_k,
                config.kmeans_iters,
                3,
                config.seed ^ 0x0B0,
            ))
        } else {
            FineQuantizer::Plain(ProductQuantizer::train(
                &train_full,
                config.pq_m,
                config.pq_k,
                config.kmeans_iters,
                config.seed ^ 0x0B0,
            ))
        };

        let k1 = coarse[0].k();
        let k2 = coarse[1].k();
        let mut lists = vec![Vec::new(); k1 * k2];
        for (id, v) in dataset.iter().enumerate() {
            let i = coarse[0].assign(&v[..half]);
            let j = coarse[1].assign(&v[half..]);
            lists[i * k2 + j].push((id as u32, fine.encode(v)));
        }
        Ok(Self {
            config,
            series_len: dim,
            half,
            coarse,
            fine,
            lists,
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
            adc_table_passes: AtomicU64::new(0),
        })
    }

    /// Cumulative number of codebook passes spent building ADC lookup
    /// tables since the index was built. [`AnnIndex::search`] adds one per
    /// query; [`AnnIndex::search_batch`] adds one per batch.
    pub fn adc_table_passes(&self) -> u64 {
        self.adc_table_passes.load(Ordering::Relaxed)
    }

    /// Shared precondition check of [`AnnIndex::search`] and
    /// [`AnnIndex::search_batch`] (dimension first, then mode — one code
    /// path so the two entry points cannot drift apart). Returns the
    /// `nprobe` of the accepted ng mode.
    fn validate(&self, query: &[f32], params: &SearchParams) -> Result<usize> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        let SearchMode::Ng { nprobe } = params.mode else {
            return Err(Error::UnsupportedMode(
                "IMI is ng-approximate only (no guarantees)".into(),
            ));
        };
        Ok(nprobe.max(1))
    }

    /// Number of non-empty cells.
    pub fn non_empty_cells(&self) -> usize {
        self.lists.iter().filter(|l| !l.is_empty()).count()
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &ImiConfig {
        &self.config
    }

    /// Multi-sequence traversal: visits cells in increasing
    /// `d1[i] + d2[j]` order, scanning inverted lists until `nprobe`
    /// non-empty lists have been read; candidates are ranked by ADC against
    /// the precomputed lookup `table`. `pushed` is a reusable scratch bitmap
    /// (cleared on entry), so batched callers allocate it once per batch.
    fn query_cells(
        &self,
        query: &[f32],
        table: &[Vec<f32>],
        nprobe: usize,
        k: usize,
        stats: &mut QueryStats,
        pushed: &mut Vec<bool>,
    ) -> Vec<Neighbor> {
        let k1 = self.coarse[0].k();
        let k2 = self.coarse[1].k();
        // Sorted half-distances.
        let mut d1: Vec<(f32, usize)> = self.coarse[0]
            .distances(&query[..self.half])
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, i))
            .collect();
        let mut d2: Vec<(f32, usize)> = self.coarse[1]
            .distances(&query[self.half..])
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, i))
            .collect();
        stats.lower_bound_computations += (k1 + k2) as u64;
        d1.sort_by(|a, b| a.0.total_cmp(&b.0));
        d2.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Multi-sequence algorithm over the sorted grid.
        #[derive(PartialEq)]
        struct Cell(f32, usize, usize);
        impl Eq for Cell {}
        impl PartialOrd for Cell {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cell {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then(self.1.cmp(&other.1))
                    .then(self.2.cmp(&other.2))
            }
        }
        let mut heap: BinaryHeap<Reverse<Cell>> = BinaryHeap::new();
        pushed.clear();
        pushed.resize(k1 * k2, false);
        heap.push(Reverse(Cell(d1[0].0 + d2[0].0, 0, 0)));
        pushed[0] = true;

        let mut top = TopK::new(k.max(1));
        let mut visited_lists = 0usize;
        while let Some(Reverse(Cell(_, a, b))) = heap.pop() {
            if visited_lists >= nprobe {
                break;
            }
            let cell = d1[a].1 * k2 + d2[b].1;
            let list = &self.lists[cell];
            if !list.is_empty() {
                visited_lists += 1;
                stats.leaves_visited += 1;
                for (id, code) in list {
                    stats.distance_computations += 1;
                    let d = ProductQuantizer::adc_distance(table, code);
                    top.push(Neighbor::new(*id as usize, d));
                }
            }
            // Push grid successors.
            if a + 1 < k1 {
                let idx = (a + 1) * k2 + b;
                if !pushed[idx] {
                    pushed[idx] = true;
                    heap.push(Reverse(Cell(d1[a + 1].0 + d2[b].0, a + 1, b)));
                }
            }
            if b + 1 < k2 {
                let idx = a * k2 + b + 1;
                if !pushed[idx] {
                    pushed[idx] = true;
                    heap.push(Reverse(Cell(d1[a].0 + d2[b + 1].0, a, b + 1)));
                }
            }
        }
        top.into_sorted()
    }
}

/// Everything that shapes an IMI build, hashed together with the dataset
/// content (see [`PersistentIndex`]).
fn snapshot_fingerprint(config: &ImiConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(InvertedMultiIndex::KIND);
    f.push_usize(config.coarse_k);
    f.push_usize(config.pq_m);
    f.push_usize(config.pq_k);
    f.push_bool(config.use_opq);
    f.push_usize(config.training_size);
    f.push_usize(config.kmeans_iters);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for InvertedMultiIndex {
    type Config = ImiConfig;
    const KIND: &'static str = "imi";

    /// Snapshots the two coarse codebooks, the fine (O)PQ quantizer — the
    /// expensive k-means/Procrustes training — and every inverted list with
    /// its PQ codes. IMI never touches raw vectors at query time, so the
    /// snapshot alone fully determines query behaviour; the dataset is only
    /// used to validate the fingerprint.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        // IMI does not retain the raw vectors, so the dataset fingerprint is
        // captured once at build time and carried in the header.
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.data_fingerprint),
        );

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.half);
        meta.put_usize(self.num_series);
        w.push(meta);

        let mut coarse = Section::new();
        codec::put_kmeans(&mut coarse, &self.coarse[0]);
        codec::put_kmeans(&mut coarse, &self.coarse[1]);
        w.push(coarse);

        let mut fine = Section::new();
        match &self.fine {
            FineQuantizer::Plain(pq) => {
                fine.put_u8(0);
                codec::put_product_quantizer(&mut fine, pq);
            }
            FineQuantizer::Optimized(opq) => {
                fine.put_u8(1);
                codec::put_opq(&mut fine, opq);
            }
        }
        w.push(fine);

        let mut lists = Section::new();
        lists.put_usize(self.lists.len());
        for list in &self.lists {
            lists.put_usize(list.len());
            for (id, code) in list {
                lists.put_u32(*id);
                lists.put_u16s(code);
            }
        }
        w.push(lists);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &ImiConfig) -> hydra_persist::Result<Self> {
        Self::load_from(
            path,
            DataSource::InMemory(dataset),
            config,
            StoreBacking::Resident,
        )
    }

    /// IMI holds no raw-series store — everything it needs from the data
    /// is the fingerprint and the shape, both free on a streamed source,
    /// so the lazy path costs nothing extra here.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &ImiConfig,
        _backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = source.fingerprint();
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let half = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        if series_len != source.series_len() || num_series != source.len() || half * 2 != series_len
        {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let coarse0 = codec::get_kmeans(&mut sec)?;
        let coarse1 = codec::get_kmeans(&mut sec)?;
        if coarse0.dim() != half || coarse1.dim() != half {
            return Err(PersistError::Corrupt(
                "coarse codebooks do not cover half the dimensionality".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let fine = match sec.get_u8()? {
            0 => FineQuantizer::Plain(codec::get_product_quantizer(&mut sec)?),
            1 => FineQuantizer::Optimized(codec::get_opq(&mut sec)?),
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "invalid fine-quantizer tag {tag}"
                )))
            }
        };

        let mut sec = r.next_section()?;
        let cell_count = sec.get_usize()?;
        if cell_count != coarse0.k() * coarse1.k() {
            return Err(PersistError::Corrupt(
                "inverted-list grid does not match the coarse codebooks".into(),
            ));
        }
        let (code_len, code_k) = fine.code_shape();
        let mut lists = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            let len = sec.get_usize()?;
            let mut list = Vec::with_capacity(len.min(num_series));
            for _ in 0..len {
                let id = sec.get_u32()?;
                if id as usize >= num_series {
                    return Err(PersistError::Corrupt(format!(
                        "inverted list id {id} out of range"
                    )));
                }
                let code = sec.get_u16s()?;
                if code.len() != code_len || code.iter().any(|&c| c as usize >= code_k) {
                    return Err(PersistError::Corrupt(
                        "PQ code does not fit the fine codebooks".into(),
                    ));
                }
                list.push((id, code));
            }
            lists.push(list);
        }

        Ok(Self {
            config: *config,
            series_len,
            half,
            coarse: [coarse0, coarse1],
            fine,
            lists,
            num_series,
            data_fingerprint,
            adc_table_passes: AtomicU64::new(0),
        })
    }
}

impl AnnIndex for InvertedMultiIndex {
    fn name(&self) -> &'static str {
        "IMI"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: true,
            streaming_insert: false,
            representation: Representation::Opq,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        let codes: usize = self
            .lists
            .iter()
            .map(|l| l.iter().map(|(_, c)| c.len() * 2 + 4).sum::<usize>())
            .sum();
        codes
            + self.coarse[0].memory_footprint()
            + self.coarse[1].memory_footprint()
            + self.fine.memory_footprint()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        let nprobe = self.validate(query, params)?;
        let table = self.fine.distance_table(query);
        self.adc_table_passes.fetch_add(1, Ordering::Relaxed);
        let mut stats = QueryStats::new();
        let mut pushed = Vec::new();
        let neighbors = self.query_cells(query, &table, nprobe, params.k, &mut stats, &mut pushed);
        Ok(SearchResult::new(neighbors, stats))
    }

    /// Batched search: the ADC lookup tables of every valid query in the
    /// batch are built in a *single* pass over the PQ codebooks (each
    /// centroid is scored against all queries while cache-hot), and the
    /// multi-sequence scratch bitmap is allocated once per batch. Answers,
    /// per-query [`QueryStats`] and per-query errors are identical to
    /// [`Self::search`].
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        // Validate once; the same pass decides which queries get a table,
        // so the table iterator below cannot fall out of step with the
        // per-query results.
        let checks: Vec<Result<usize>> = queries
            .iter()
            .map(|q| self.validate(q, params))
            .collect();
        let valid: Vec<&[f32]> = queries
            .iter()
            .zip(&checks)
            .filter(|(_, c)| c.is_ok())
            .map(|(q, _)| *q)
            .collect();
        let mut tables = if valid.is_empty() {
            Vec::new()
        } else {
            self.adc_table_passes.fetch_add(1, Ordering::Relaxed);
            self.fine.distance_tables(&valid)
        }
        .into_iter();
        let mut pushed = Vec::new();
        queries
            .iter()
            .zip(checks)
            .map(|(query, check)| {
                let nprobe = check?;
                let table = tables.next().expect("one table per valid query");
                let mut stats = QueryStats::new();
                let neighbors =
                    self.query_cells(query, &table, nprobe, params.k, &mut stats, &mut pushed);
                Ok(SearchResult::new(neighbors, stats))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{deep_like, exact_knn, sift_like};

    fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
        let ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
        found.iter().filter(|n| ids.contains(&n.index)).count() as f64 / truth.len() as f64
    }

    fn build(n: usize, dim: usize, use_opq: bool) -> (Dataset, InvertedMultiIndex) {
        let data = sift_like(n, dim, 3);
        let config = ImiConfig {
            coarse_k: 16,
            pq_m: 8,
            pq_k: 32,
            use_opq,
            training_size: 800,
            kmeans_iters: 8,
            seed: 7,
        };
        let imi = InvertedMultiIndex::build(&data, config).unwrap();
        (data, imi)
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(8).unwrap();
        assert!(InvertedMultiIndex::build(&empty, ImiConfig::default()).is_err());
        let odd = deep_like(10, 7, 1);
        assert!(InvertedMultiIndex::build(&odd, ImiConfig::default()).is_err());
        let not_divisible = deep_like(10, 10, 1);
        let cfg = ImiConfig {
            pq_m: 4,
            ..ImiConfig::default()
        };
        assert!(InvertedMultiIndex::build(&not_divisible, cfg).is_err());
    }

    #[test]
    fn every_vector_lands_in_exactly_one_list() {
        let (data, imi) = build(500, 16, false);
        let total: usize = imi.lists.iter().map(|l| l.len()).sum();
        assert_eq!(total, data.len());
        assert!(imi.non_empty_cells() > 1);
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let (data, imi) = build(600, 16, false);
        let queries = sift_like(8, 16, 99);
        let mut r_small = 0.0;
        let mut r_large = 0.0;
        for q in queries.iter() {
            let gt = exact_knn(&data, q, 10);
            let small = imi.search(q, &SearchParams::ng(10, 1)).unwrap();
            let large = imi.search(q, &SearchParams::ng(10, 128)).unwrap();
            r_small += recall(&small.neighbors, &gt);
            r_large += recall(&large.neighbors, &gt);
        }
        // Larger nprobe scans a superset of inverted lists, so *coverage* of
        // the true neighbors is monotone — but the final top-k is ranked by
        // ADC, and quantization noise can displace the odd true neighbor
        // once more false candidates are in play. Allow that displacement
        // (up to half a neighbor per query summed over the workload) while
        // still catching any real traversal regression.
        assert!(
            r_large >= r_small - 0.4,
            "recall dropped with larger nprobe: {r_small} -> {r_large}"
        );
        assert!(r_large / 8.0 > 0.5, "IMI recall too low: {}", r_large / 8.0);
    }

    #[test]
    fn opq_variant_builds_and_answers() {
        let (data, imi) = build(300, 16, true);
        let q = data.series(0);
        let res = imi.search(q, &SearchParams::ng(5, 16)).unwrap();
        assert_eq!(res.neighbors.len(), 5);
        assert!(res.stats.leaves_visited <= 16);
        assert!(res.stats.distance_computations > 0);
    }

    #[test]
    fn batch_search_matches_per_query_search_with_fewer_table_passes() {
        let (_, imi) = build(500, 16, true);
        let queries = sift_like(6, 16, 41);
        let refs: Vec<&[f32]> = queries.iter().collect();
        let params = SearchParams::ng(10, 16);

        let base = imi.adc_table_passes();
        let sequential: Vec<_> = refs.iter().map(|q| imi.search(q, &params).unwrap()).collect();
        assert_eq!(
            imi.adc_table_passes() - base,
            6,
            "per-query search builds one ADC table pass per query"
        );

        let before_batch = imi.adc_table_passes();
        let batched = imi.search_batch(&refs, &params);
        assert_eq!(
            imi.adc_table_passes() - before_batch,
            1,
            "batched search amortizes ADC table construction to one codebook pass"
        );

        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(sequential.iter()) {
            let b = b.as_ref().unwrap();
            assert_eq!(b.neighbors.len(), s.neighbors.len());
            for (x, y) in b.neighbors.iter().zip(s.neighbors.iter()) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
            assert_eq!(b.stats, s.stats, "batching must not change per-query stats");
        }
    }

    #[test]
    fn batch_search_keeps_failures_per_query() {
        let (_, imi) = build(200, 16, false);
        let good = sift_like(2, 16, 43);
        let bad = vec![0.0f32; 10];
        let refs: Vec<&[f32]> = vec![good.series(0), &bad, good.series(1)];
        let results = imi.search_batch(&refs, &SearchParams::ng(5, 8));
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        // A mode no query can use fails the whole batch query-by-query,
        // with the same error kind per query as `search` (dimension is
        // checked before mode, in both entry points).
        let rejected = imi.search_batch(&refs, &SearchParams::exact(5));
        assert_eq!(rejected.len(), 3);
        for (q, r) in refs.iter().zip(rejected.iter()) {
            let single = imi.search(q, &SearchParams::exact(5)).unwrap_err();
            let batch = r.as_ref().unwrap_err();
            assert_eq!(
                std::mem::discriminant(batch),
                std::mem::discriminant(&single),
                "batch error kind must match per-query error kind"
            );
        }
    }

    #[test]
    fn guarantee_modes_are_rejected() {
        let (_, imi) = build(100, 16, false);
        let q = vec![0.0f32; 16];
        assert!(imi.search(&q, &SearchParams::exact(1)).is_err());
        assert!(imi.search(&q, &SearchParams::epsilon(1, 0.5)).is_err());
        assert!(imi.search(&[0.0; 5], &SearchParams::ng(1, 1)).is_err());
    }

    #[test]
    fn metadata_is_consistent() {
        let (_, imi) = build(200, 16, false);
        assert_eq!(imi.name(), "IMI");
        assert!(imi.capabilities().disk_resident);
        assert!(!imi.capabilities().exact);
        assert_eq!(imi.num_series(), 200);
        assert_eq!(imi.series_len(), 16);
        assert!(imi.memory_footprint() > 0);
        assert_eq!(imi.config().coarse_k, 16);
    }
}
