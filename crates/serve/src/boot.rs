//! Booting a serving set from a snapshot directory.
//!
//! The directory layout is exactly what the figure harness's
//! `--save-index DIR` produces:
//!
//! ```text
//! DIR/<dataset>.data.snap        one dataset snapshot per collection
//! DIR/<dataset>-<kind>.snap      one index snapshot per (dataset, method)
//! DIR/<...>.snap.journal         ingest journals (replayed into their base)
//! DIR/gt-<fingerprint>.snap      ground-truth caches (ignored here)
//! ```
//!
//! Every index snapshot is restored through a
//! [`LoaderRegistry`], re-attaching the raw series of its
//! dataset; the registry's configurations must fingerprint-match the ones
//! the snapshots were built with (use `hydra::standard_registry` for
//! harness-produced directories). **All validation happens here, at boot**:
//! a damaged container, an unknown kind, a fingerprint mismatch or a
//! dataset/index disagreement aborts the boot with a typed error naming
//! the file — a server that comes up serves only indexes it fully
//! validated, and can never discover a bad snapshot at query time.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hydra::persist::{
    dataset::load_dataset, journal_path, open_dataset_streaming, DataSource, DatasetHandle,
    LoaderRegistry, PersistError, StoreBacking,
};
use hydra::Dataset;

use crate::server::ServedIndex;

/// Suffix of dataset snapshots inside a serving directory.
pub const DATASET_SUFFIX: &str = ".data.snap";
/// Suffix of every snapshot file.
pub const SNAPSHOT_SUFFIX: &str = ".snap";

/// Why a serving directory could not be booted.
#[derive(Debug)]
pub enum BootError {
    /// The directory could not be scanned.
    Io(String),
    /// The directory holds no `*.data.snap` dataset — there is nothing to
    /// re-attach index snapshots to.
    NoDatasets(PathBuf),
    /// A dataset directory entry held no loadable index at all.
    NoIndexes(PathBuf),
    /// One snapshot file failed to load (damage, unknown kind, fingerprint
    /// mismatch, ...).
    Snapshot {
        /// The offending file.
        file: PathBuf,
        /// The underlying typed error.
        source: PersistError,
    },
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Io(msg) => write!(f, "cannot scan snapshot directory: {msg}"),
            BootError::NoDatasets(dir) => write!(
                f,
                "no *{DATASET_SUFFIX} dataset snapshot in {} — did the saving run use --save-index?",
                dir.display()
            ),
            BootError::NoIndexes(dir) => {
                write!(f, "no index snapshot in {} matches any dataset", dir.display())
            }
            BootError::Snapshot { file, source } => {
                write!(f, "cannot load {}: {source}", file.display())
            }
        }
    }
}

impl std::error::Error for BootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The outcome of a successful boot.
#[derive(Debug)]
pub struct BootReport {
    /// Every loaded index, named by snapshot file stem, sorted by name.
    pub indexes: Vec<ServedIndex>,
    /// The datasets found, as `(name, series count, series length)`.
    pub datasets: Vec<(String, usize, usize)>,
    /// Snapshot files skipped because they belong to no dataset (ground
    /// truth caches, unrelated files) — surfaced so an operator can spot a
    /// typo'd dataset name in a listing.
    pub skipped: Vec<PathBuf>,
    /// How each index loaded, in [`indexes`](Self::indexes) order — the
    /// raw material for the boot/reload metrics
    /// (`hydra_index_load_micros`, `hydra_index_journaled`).
    pub loads: Vec<IndexLoad>,
}

/// How one index snapshot loaded during a boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexLoad {
    /// The served index name (snapshot file stem).
    pub name: String,
    /// Wall-clock time for the snapshot load, including any journal
    /// replay and (for out-of-core boots) backing-file verification.
    pub elapsed: Duration,
    /// Whether a `.snap.journal` sat beside the snapshot and was replayed
    /// into the loaded index.
    pub journaled: bool,
}

/// The dataset an index name belongs to: the **longest** name in
/// `dataset_names` that prefixes `index_name` up to a `-` separator —
/// so `sift-like-vafile` belongs to `sift-like`, never to a dataset
/// named `sift`. One rule, shared by the boot scan and by clients
/// (e.g. `serve_client`) mapping served index names back onto scenario
/// datasets, so the two can never drift apart.
pub fn dataset_for_index<'a, I>(index_name: &str, dataset_names: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    dataset_names
        .into_iter()
        .filter(|name| {
            index_name
                .strip_prefix(*name)
                .is_some_and(|rest| rest.starts_with('-'))
        })
        .max_by_key(|name| name.len())
}

/// How [`boot_from_dir_with`] should re-attach each index's raw series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BootOptions {
    /// Serve raw series out-of-core: every disk-capable index is loaded
    /// [`StoreBacking::FileBacked`], with its dataset's own `*.data.snap`
    /// as the backing file where the store keeps dataset order (and a
    /// verified `<snapshot>.series` sidecar — written into the snapshot
    /// directory on first boot — where it does not). Memory-only indexes
    /// are unaffected. Answers are byte-identical either way; only the
    /// boot-time RAM footprint and the realness of the I/O counters change.
    pub file_backed: bool,
}

/// Scans `dir` and loads every index snapshot against its dataset through
/// `registry` (see the module docs for the expected layout).
///
/// # Errors
/// Any [`BootError`]; loading is all-or-nothing, so a partially damaged
/// directory never yields a partially booted server.
pub fn boot_from_dir(dir: &Path, registry: &LoaderRegistry) -> Result<BootReport, BootError> {
    boot_from_dir_with(dir, registry, BootOptions::default())
}

/// [`boot_from_dir`] with explicit [`BootOptions`] — the out-of-core
/// serving switch.
///
/// # Errors
/// Any [`BootError`]; loading is all-or-nothing, so a partially damaged
/// directory never yields a partially booted server.
pub fn boot_from_dir_with(
    dir: &Path,
    registry: &LoaderRegistry,
    options: BootOptions,
) -> Result<BootReport, BootError> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| BootError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    files.sort();

    // Pass 1: datasets (keeping each snapshot's path: out-of-core boots
    // hand it to the loaders as the backing file). Out-of-core, the
    // snapshot is *streamed* — fully validated in bounded chunks, but
    // never materialized — so boot-time peak memory stays O(pool) no
    // matter how large the collection is.
    let mut datasets: Vec<(String, BootData, PathBuf)> = Vec::new();
    for file in &files {
        let Some(name) = file_name_str(file).and_then(|n| n.strip_suffix(DATASET_SUFFIX)) else {
            continue;
        };
        let data = if options.file_backed {
            open_dataset_streaming(file).map(BootData::Streamed)
        } else {
            load_dataset(file).map(BootData::Mem)
        }
        .map_err(|source| BootError::Snapshot {
            file: file.clone(),
            source,
        })?;
        datasets.push((name.to_string(), data, file.clone()));
    }
    if datasets.is_empty() {
        return Err(BootError::NoDatasets(dir.to_path_buf()));
    }

    // Pass 2: index snapshots, matched to their dataset by the shared
    // longest-`<dataset>-`-prefix rule ([`dataset_for_index`]).
    let mut indexes = Vec::new();
    let mut skipped = Vec::new();
    for file in &files {
        let Some(stem) = file_name_str(file).and_then(|n| n.strip_suffix(SNAPSHOT_SUFFIX)) else {
            // `.snap.series` flat files are this boot path's own out-of-core
            // cache (written by an earlier file-backed boot), and
            // `.snap.journal` files are ingest journals replayed as part
            // of loading their base snapshot — neither is an operator
            // file worth flagging in the skip listing.
            if file_name_str(file)
                .is_some_and(|n| n.ends_with(".snap.series") || n.ends_with(".snap.journal"))
            {
                continue;
            }
            skipped.push(file.clone());
            continue;
        };
        if stem.ends_with(".data") {
            continue; // a dataset, already loaded
        }
        let Some(owner) =
            dataset_for_index(stem, datasets.iter().map(|(name, _, _)| name.as_str()))
        else {
            skipped.push(file.clone());
            continue;
        };
        let (_, data, data_path) = datasets
            .iter()
            .find(|(name, _, _)| name == owner)
            .expect("owner came from this list");
        let backing = if options.file_backed {
            StoreBacking::FileBacked {
                dataset_snapshot: Some(data_path.as_path()),
            }
        } else {
            StoreBacking::Resident
        };
        // `load_any_journaled` also replays any `.snap.journal` beside the
        // snapshot — a server booting after an ingesting run serves the
        // grown index without waiting for a compacting full save.
        let journaled = journal_path(file).exists();
        let t0 = std::time::Instant::now();
        let index = registry
            .load_any_journaled_from(file, data.source(), backing)
            .map_err(|source| BootError::Snapshot {
                file: file.clone(),
                source,
            })?;
        let elapsed = t0.elapsed();
        indexes.push((
            ServedIndex {
                name: stem.to_string(),
                index,
            },
            IndexLoad {
                name: stem.to_string(),
                elapsed,
                journaled,
            },
        ));
    }
    if indexes.is_empty() {
        return Err(BootError::NoIndexes(dir.to_path_buf()));
    }
    indexes.sort_by(|a, b| a.0.name.cmp(&b.0.name));
    let (indexes, loads): (Vec<ServedIndex>, Vec<IndexLoad>) = indexes.into_iter().unzip();
    let mut dataset_summaries: Vec<(String, usize, usize)> = datasets
        .iter()
        .map(|(name, d, _)| (name.clone(), d.len(), d.series_len()))
        .collect();
    dataset_summaries.sort();
    Ok(BootReport {
        indexes,
        datasets: dataset_summaries,
        skipped,
        loads,
    })
}

fn file_name_str(path: &Path) -> Option<&str> {
    path.file_name().and_then(|n| n.to_str())
}

/// A dataset as pass 1 of the boot scan holds it: materialized for a
/// resident boot, a validated header-facts handle for an out-of-core one
/// — which is the whole point of the lazy boot path: with `--out-of-core`
/// nothing dataset-sized is ever allocated between here and serving.
#[derive(Debug)]
enum BootData {
    Mem(Dataset),
    Streamed(DatasetHandle),
}

impl BootData {
    fn len(&self) -> usize {
        match self {
            BootData::Mem(d) => d.len(),
            BootData::Streamed(h) => h.len(),
        }
    }

    fn series_len(&self) -> usize {
        match self {
            BootData::Mem(d) => d.series_len(),
            BootData::Streamed(h) => h.series_len(),
        }
    }

    fn source(&self) -> DataSource<'_> {
        match self {
            BootData::Mem(d) => DataSource::InMemory(d),
            BootData::Streamed(h) => DataSource::Streamed(h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra::persist::dataset::save_dataset;
    use hydra::persist::PersistentIndex;
    use hydra::prelude::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hydra-serve-boot-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn boots_saved_indexes_and_skips_foreign_files() {
        let dir = temp_dir("ok");
        let data = hydra::data::random_walk(150, 32, 1);
        let configs = hydra::standard_configs(true, 2);
        save_dataset(&data, &dir.join("walk.data.snap")).unwrap();
        Hnsw::build(&data, configs.hnsw)
            .unwrap()
            .save(&dir.join("walk-hnsw.snap"))
            .unwrap();
        Isax2Plus::build(&data, configs.isax)
            .unwrap()
            .save(&dir.join("walk-isax2.snap"))
            .unwrap();
        // A ground-truth cache and a stray file must be skipped, not fatal.
        hydra::persist::SnapshotWriter::new("ground-truth", 1)
            .write_to(&dir.join("gt-00ff.snap"))
            .unwrap();
        std::fs::write(dir.join("notes.txt"), b"hello").unwrap();

        let registry = hydra::standard_registry(true, 2);
        let report = boot_from_dir(&dir, &registry).unwrap();
        let names: Vec<&str> = report.indexes.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["walk-hnsw", "walk-isax2"]);
        assert_eq!(report.datasets, vec![("walk".to_string(), 150, 32)]);
        assert_eq!(report.skipped.len(), 2, "gt cache and notes.txt are skipped");
        // Load telemetry rides along, one entry per index, in index order.
        let load_names: Vec<&str> = report.loads.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(load_names, names);
        assert!(
            report.loads.iter().all(|l| !l.journaled),
            "no journals were written in this directory"
        );
        // The loaded index answers like a fresh build.
        let q = data.series(3);
        let served = &report.indexes[1];
        let fresh = Isax2Plus::build(&data, configs.isax).unwrap();
        let a = fresh.search(q, &SearchParams::ng(5, 8)).unwrap();
        let b = served.index.search(q, &SearchParams::ng(5, 8)).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_matching_prefers_the_longest_prefix() {
        let names = ["sift", "sift-like", "rand256"];
        assert_eq!(
            dataset_for_index("sift-like-vafile", names),
            Some("sift-like")
        );
        assert_eq!(dataset_for_index("sift-hnsw", names), Some("sift"));
        assert_eq!(dataset_for_index("rand256-imi", names), Some("rand256"));
        assert_eq!(dataset_for_index("rand256", names), None); // no '-kind'
        assert_eq!(dataset_for_index("deep-like-imi", names), None);
        assert_eq!(dataset_for_index("sift-like", names), Some("sift")); // '-like' is the kind
    }

    #[test]
    fn missing_datasets_and_bad_snapshots_fail_loudly() {
        let dir = temp_dir("empty");
        let registry = hydra::standard_registry(true, 2);
        assert!(matches!(
            boot_from_dir(&dir, &registry),
            Err(BootError::NoDatasets(_))
        ));
        // A dataset with no indexes at all is NoIndexes.
        let data = hydra::data::random_walk(60, 16, 3);
        save_dataset(&data, &dir.join("lonely.data.snap")).unwrap();
        assert!(matches!(
            boot_from_dir(&dir, &registry),
            Err(BootError::NoIndexes(_))
        ));
        // A damaged index snapshot aborts the whole boot, naming the file.
        let configs = hydra::standard_configs(true, 2);
        let hnsw = Hnsw::build(&data, configs.hnsw).unwrap();
        let path = dir.join("lonely-hnsw.snap");
        hnsw.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match boot_from_dir(&dir, &registry) {
            Err(BootError::Snapshot { file, source }) => {
                assert_eq!(file, path);
                assert!(matches!(source, PersistError::ChecksumMismatch { .. }));
            }
            other => panic!("expected a Snapshot error, got {other:?}"),
        }
        // Pristine again: the matching registry boots it...
        hnsw.save(&path).unwrap();
        assert_eq!(boot_from_dir(&dir, &registry).unwrap().indexes.len(), 1);
        // ...and a registry built with the wrong seed is a fingerprint
        // mismatch, never a silently different index.
        let wrong = hydra::standard_registry(true, 4);
        match boot_from_dir(&dir, &wrong) {
            Err(BootError::Snapshot { source, .. }) => {
                assert!(matches!(source, PersistError::FingerprintMismatch { .. }));
            }
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
        // A missing directory is Io.
        assert!(matches!(
            boot_from_dir(Path::new("/nonexistent/dir"), &registry),
            Err(BootError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
