//! A small blocking client for the hydra-serve protocol, shared by the
//! `serve_client` load generator, the end-to-end tests, and anyone who
//! wants to talk to a server from Rust without hand-rolling frames.
//!
//! The client is deliberately thin: [`ServeClient::send`] and
//! [`ServeClient::recv`] expose the pipelined request/response streams
//! directly (responses carry request ids, so callers may have many
//! requests in flight), and [`ServeClient::call`] wraps the common
//! one-in-one-out pattern.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::{
    read_response, write_request, IndexInfo, ProtocolError, Request, Response, ResponseBody,
};

/// A blocking connection to a hydra-serve server.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Connects to `addr`, retrying until `timeout` elapses — for racing a
    /// server that is still booting (e.g. the CI smoke step).
    pub fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Connects to `addr` with a bound on the connection attempt itself —
    /// one `connect(2)` that fails after at most `timeout`, no retries.
    /// The router uses this toward its workers so a dead worker costs a
    /// bounded wait, not a TCP-stack-default hang.
    pub fn connect_within(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Bounds every subsequent read: a [`recv`](Self::recv) that waits
    /// longer than `timeout` for the next frame fails with
    /// [`ProtocolError::Io`] instead of blocking forever. `None` restores
    /// unbounded reads.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// A fresh request id (monotonically increasing, never 0 — 0 is the
    /// protocol-error id).
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request without waiting for its response (pipelining).
    pub fn send(&mut self, request: &Request) -> Result<(), ProtocolError> {
        write_request(&mut self.writer, request)
    }

    /// Receives the next response, in server order.
    ///
    /// # Errors
    /// [`ProtocolError::Truncated`] if the server closed the stream — once
    /// a request is in flight, end-of-stream is an unanswered request, not
    /// a clean end.
    pub fn recv(&mut self) -> Result<Response, ProtocolError> {
        read_response(&mut self.reader)?.ok_or(ProtocolError::Truncated)
    }

    /// Sends `request` and waits for its response, checking the echoed id.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        self.send(request)?;
        let response = self.recv()?;
        if response.request_id != request.request_id() {
            return Err(ProtocolError::Corrupt(format!(
                "response id {} does not match request id {} (call() does not pipeline)",
                response.request_id,
                request.request_id()
            )));
        }
        Ok(response)
    }

    /// Lists the served indexes.
    pub fn list_indexes(&mut self) -> Result<Vec<IndexInfo>, ProtocolError> {
        let request_id = self.fresh_id();
        let response = self.call(&Request::ListIndexes { request_id })?;
        match response.body {
            ResponseBody::Indexes { indexes } => Ok(indexes),
            ResponseBody::Error { code, message } => Err(ProtocolError::Corrupt(format!(
                "server answered list-indexes with {code:?}: {message}"
            ))),
            other => Err(ProtocolError::Corrupt(format!(
                "unexpected response body {other:?} to list-indexes"
            ))),
        }
    }

    /// Asks the server to reload its snapshots and swap to a fresh epoch;
    /// returns the new epoch id once acknowledged.
    ///
    /// # Errors
    /// [`ProtocolError::Corrupt`] when the server answers with an error —
    /// a reload refused (no reload source) or failed (damaged snapshot
    /// directory) — with the server's message included.
    pub fn reload(&mut self) -> Result<u64, ProtocolError> {
        let request_id = self.fresh_id();
        let response = self.call(&Request::Reload { request_id })?;
        match response.body {
            ResponseBody::ReloadAck { epoch } => Ok(epoch),
            ResponseBody::Error { code, message } => Err(ProtocolError::Corrupt(format!(
                "server answered reload with {code:?}: {message}"
            ))),
            other => Err(ProtocolError::Corrupt(format!(
                "unexpected response body {other:?} to reload"
            ))),
        }
    }

    /// Scrapes the server's (or router's) metrics registry: one
    /// point-in-time snapshot in the Prometheus text exposition format.
    ///
    /// # Errors
    /// [`ProtocolError::Corrupt`] when the server answers with an error
    /// or an unexpected body.
    pub fn stats(&mut self) -> Result<String, ProtocolError> {
        let request_id = self.fresh_id();
        let response = self.call(&Request::Stats { request_id })?;
        match response.body {
            ResponseBody::Stats { text } => Ok(text),
            ResponseBody::Error { code, message } => Err(ProtocolError::Corrupt(format!(
                "server answered stats with {code:?}: {message}"
            ))),
            other => Err(ProtocolError::Corrupt(format!(
                "unexpected response body {other:?} to stats"
            ))),
        }
    }

    /// Asks the server to shut down cleanly; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        let request_id = self.fresh_id();
        let response = self.call(&Request::Shutdown { request_id })?;
        match response.body {
            ResponseBody::ShutdownAck => Ok(()),
            other => Err(ProtocolError::Corrupt(format!(
                "unexpected response body {other:?} to shutdown"
            ))),
        }
    }
}
