//! # hydra-serve
//!
//! The first piece of the system that runs forever instead of to
//! completion: a long-running TCP server that boots the index zoo from
//! `hydra-persist` snapshot directories and answers k-NN requests through
//! a micro-batching queue, so the per-batch amortizations the offline
//! harness measures (one ADC codebook pass per batch in IMI, shared
//! scratch buffers in VA+file/SRS/QALSH) actually pay off in serving mode.
//!
//! Three design rules, each proven by a test layer:
//!
//! 1. **Boot-time validation, never query-time surprises** ([`boot`]):
//!    every snapshot is fully validated — container checksums, kind tag,
//!    build fingerprint against the registry's configuration, structural
//!    invariants — before the listener accepts its first connection. A bad
//!    directory aborts the boot with a typed error naming the file.
//! 2. **Batching amortizes work, never changes answers** ([`server`]):
//!    the batcher groups compatible queries (same index, same
//!    [`hydra::SearchKey`]) and issues one
//!    [`hydra::AnnIndex::search_batch`] call per group per tick; by that
//!    method's contract the served answers are bit-identical to offline
//!    per-query `search` calls — asserted zoo-wide against the offline
//!    runner in `tests/integration_serve.rs`.
//! 3. **No input can panic or hang the server** ([`protocol`]): the wire
//!    format reuses the snapshot codec primitives; every malformed frame —
//!    truncation, flipped magic/version/length, oversized declared
//!    lengths, unknown tags, trailing bytes — maps to a typed
//!    [`protocol::ProtocolError`] (fuzzed in `tests/serve_protocol.rs`),
//!    answered with one error response, and followed by a hangup of that
//!    connection only.
//!
//! Scale-out adds a fourth rule: **a routed answer is complete or it is a
//! typed error** ([`router`]). The router fans each query out to shard
//! workers over this same protocol, merges their top-k by (distance,
//! global id), and turns any worker failure — dead, stalled, or
//! babbling — into one [`protocol::ErrorCode::Unavailable`] response
//! within the per-worker timeout, never a hang and never a silently
//! partial answer.
//!
//! The `hydra-serve` binary (`src/main.rs`) wires these together behind a
//! small CLI; `hydra-bench`'s `serve_client` binary replays figure
//! workloads against it and emits the same CSV schema as `fig3`/`fig4`,
//! which is how CI diffs serving-path accuracy against the offline path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boot;
pub mod cli;
pub mod client;
pub mod protocol;
pub mod router;
pub mod server;

pub use boot::{
    boot_from_dir, boot_from_dir_with, dataset_for_index, BootError, BootOptions, BootReport,
    IndexLoad,
};
pub use client::ServeClient;
pub use hydra_obs::MetricsRegistry;
pub use router::{Router, RouterConfig, RouterHandle, RouterStats};
pub use protocol::{
    ErrorCode, IndexInfo, ProtocolError, Request, Response, ResponseBody, MAX_FRAME_LEN, MAX_K,
    PROTOCOL_VERSION, REQUEST_MAGIC, RESPONSE_MAGIC,
};
pub use server::{Reloader, ServedIndex, Server, ServerConfig, ServerHandle, ServerStats};
