//! The serving loop: connections, the micro-batching queue, and the
//! batcher that drains it into [`AnnIndex::search_batch`] calls.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawns──▶ per-connection reader ──Job──▶ micro-batch queue
//!                      per-connection writer ◀─encoded response frames─┐
//!                                                                      │
//!                      batcher: recv first job, gather until the batch │
//!                      window closes or the batch is full, group by    │
//!                      (index, SearchKey), ONE search_batch call per   │
//!                      group per tick ─────────────────────────────────┘
//! ```
//!
//! Each connection gets one reader thread (parsing frames, answering
//! list/shutdown inline, forwarding queries to the queue) and one writer
//! thread (serializing response frames back), so slow clients never block
//! the batcher. The single batcher thread makes batching *deterministic
//! work amortization*: every tick turns all compatible pending queries
//! into one [`AnnIndex::search_batch`] call — the same entry point the
//! offline parallel runner uses — whose contract guarantees answers
//! identical to per-query [`AnnIndex::search`]. That contract is what the
//! end-to-end test (`tests/integration_serve.rs`) pins: served answers are
//! byte-identical to offline ones.
//!
//! ## Failure semantics
//!
//! A malformed frame yields one protocol-error response (request id 0)
//! and closes that connection; other connections and the batcher are
//! unaffected. Per-query failures (unknown index, unsupported mode,
//! dimension mismatch) are error responses on the query's own id —
//! exactly mirroring `search_batch`'s per-query `Err` positions — and
//! never poison the rest of a batch.
//!
//! ## Hot reload
//!
//! The served index set lives in an **epoch**: an immutable
//! `Arc<Epoch>` holding the zoo plus a monotonically increasing id.
//! A reload frame (on a server spawned with a [`Reloader`]) builds a
//! complete replacement zoo *outside* any lock, then swaps the epoch
//! pointer. Queries are routed by index *name* and the batcher resolves
//! the epoch pointer **once per tick**, so every answer in one
//! micro-batch comes from one coherent epoch — a swap never tears a
//! batch across generations, never drops a connection, and old epochs
//! die only when their last in-flight tick finishes (the `Arc` keeps
//! them alive exactly that long). A failed reload (damaged snapshot,
//! vanished directory) answers with a typed error and leaves the
//! current epoch serving untouched.

use std::collections::BTreeMap;
use std::io::{BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use hydra::{AnnIndex, QueryStats, SearchKey, SearchParams};
use hydra_obs::{Counter, Gauge, Histogram, MetricsRegistry, QueryTrace, Stage};

use crate::protocol::{
    read_request, ErrorCode, IndexInfo, Request, Response, ResponseBody,
};

/// One index behind the server, addressable by name.
pub struct ServedIndex {
    /// The name queries address it by (by convention the snapshot file
    /// stem, e.g. `rand256-isax2`).
    pub name: String,
    /// The index itself.
    pub index: Box<dyn AnnIndex>,
}

impl std::fmt::Debug for ServedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedIndex")
            .field("name", &self.name)
            .field("method", &self.index.name())
            .field("num_series", &self.index.num_series())
            .finish()
    }
}

/// Rebuilds the full served index set on a reload request — typically by
/// re-booting the snapshot directory the server originally came from
/// (journals included). Runs on the requesting connection's reader
/// thread, **outside** the epoch lock: a slow reload delays only its own
/// connection, never in-flight queries. Returning `Err` leaves the
/// current epoch serving untouched.
pub type Reloader = Box<dyn Fn() -> Result<Vec<ServedIndex>, String> + Send + Sync>;

/// One generation of the served zoo: the immutable index set every query
/// admitted to a given batcher tick is answered from, plus the
/// monotonically increasing id reload acks report (0 at boot, +1 per
/// successful reload).
struct Epoch {
    id: u64,
    indexes: Vec<ServedIndex>,
}

/// The spawn-time zoo validation, shared with reload: an empty or
/// name-colliding replacement set must fail exactly like a bad boot.
fn validate_zoo(indexes: &[ServedIndex]) -> Result<(), String> {
    if indexes.is_empty() {
        return Err("refusing to serve zero indexes".into());
    }
    let mut names: Vec<&str> = indexes.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    if names.windows(2).any(|w| w[0] == w[1]) {
        return Err("duplicate served index names".into());
    }
    Ok(())
}

/// Tuning knobs of the micro-batching loop.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long the batcher gathers requests after the first one of a tick
    /// before draining the batch. Larger windows amortize more per-batch
    /// setup (ADC tables, scratch buffers) at the cost of added latency.
    pub batch_window: Duration,
    /// Upper bound on requests gathered per tick; a full batch drains
    /// immediately without waiting out the window.
    pub max_batch: usize,
    /// Socket write timeout per connection (`None` = never time out). A
    /// client that pipelines queries but stops reading responses
    /// eventually fills the kernel send buffer and parks its writer
    /// thread in `write_all`; shutdown only closes *read* halves (so
    /// queued responses, including the shutdown ack, still flush), so
    /// this timeout is what bounds how long such a stalled connection can
    /// delay `ServerHandle::join`.
    pub write_timeout: Option<Duration>,
    /// Slow-query log threshold (`None` = off, the default). A query
    /// whose total served time — queue wait plus its amortized share of
    /// the batched search plus response encoding — reaches this bound
    /// writes one structured line (index, params key, stage breakdown
    /// from its [`QueryTrace`]) to stderr.
    pub slow_query: Option<Duration>,
}

impl Default for ServerConfig {
    /// 1 ms window, 64 requests, 30 s write timeout, no slow-query log —
    /// latency-lean defaults for local serving.
    fn default() -> Self {
        Self {
            batch_window: Duration::from_millis(1),
            max_batch: 64,
            write_timeout: Some(Duration::from_secs(30)),
            slow_query: None,
        }
    }
}

/// Counters the server accumulates while running (readable after
/// shutdown via [`ServerHandle::join`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries answered (including per-query errors).
    pub queries: u64,
    /// Micro-batch ticks drained.
    pub ticks: u64,
    /// `search_batch` calls issued (one per (index, setting) group per
    /// tick — ≤ `queries`, and the whole point of serving in batches).
    pub batch_calls: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Successful epoch swaps (equals the final epoch id).
    pub reloads: u64,
}

/// One queued query: everything the batcher needs to answer it and route
/// the response back to its connection.
struct Job {
    request_id: u64,
    /// The *name* of the index, resolved against the tick's epoch only
    /// when the batch drains — a pre-resolved slot could dangle across a
    /// reload that happened between enqueue and drain.
    index: String,
    params: SearchParams,
    query: Vec<f32>,
    reply: mpsc::Sender<Vec<u8>>,
    /// When the reader enqueued this job — the start of its enqueue
    /// stage span (queue wait is drain time minus this).
    enqueued_at: Instant,
}

/// Every pre-resolved metric handle the serving loop touches. Resolved
/// once at spawn so the hot path (drain_tick, connection readers and
/// writers) never takes the registry mutex — each update is one relaxed
/// atomic RMW, which is what keeps the instrumented path answer- and
/// stats-identical to the uninstrumented one.
struct Metrics {
    registry: MetricsRegistry,
    queries_total: Counter,
    ticks_total: Counter,
    batch_calls_total: Counter,
    connections_total: Counter,
    /// Jobs enqueued but not yet drained (std's mpsc has no len(); the
    /// reader increments on enqueue, the batcher decrements per drained
    /// job, so the gauge is exact between ticks).
    queue_depth: Gauge,
    /// Jobs per drained tick — how full the batch window ran.
    batch_occupancy: Histogram,
    /// (index, parameter-key) groups per tick.
    groups_per_tick: Histogram,
    /// End-to-end served latency per query, in microseconds: queue wait
    /// + amortized share of the batched search + response encoding. Its
    /// `_count` reconciles exactly with `hydra_queries_total` for
    /// queries that reached the batcher.
    query_micros: Histogram,
    /// Per-stage latency histograms (microseconds).
    stage_enqueue_micros: Histogram,
    stage_search_micros: Histogram,
    stage_write_micros: Histogram,
    /// The 8 numeric [`QueryStats`] counters summed over every answered
    /// query, in `QueryStats::counters()` order. This is the scrape-side
    /// half of the reconciliation contract: summing the per-answer stats
    /// client-side must give exactly these values.
    query_stats: Vec<Counter>,
    /// Error responses by kind.
    errors_unknown_index: Counter,
    errors_search: Counter,
    errors_shutdown: Counter,
    protocol_errors: Counter,
    /// Wire-level connection counters (all connections summed).
    rx_bytes: Counter,
    rx_frames: Counter,
    tx_bytes: Counter,
    tx_frames: Counter,
    /// The epoch currently being served.
    epoch: Gauge,
    reloads_success: Counter,
    reloads_failed: Counter,
    /// Duration of the most recent reload attempt (success or failure).
    reload_last_micros: Gauge,
    /// Outcome of the most recent reload attempt: 1 success, 0 failure,
    /// -1 never attempted.
    reload_last_ok: Gauge,
    /// Queries written to the slow-query log.
    slow_queries_total: Counter,
}

impl Metrics {
    fn new(registry: MetricsRegistry) -> Self {
        let query_stats = QueryStats::default()
            .counters()
            .iter()
            .map(|(name, _)| registry.counter("hydra_query_stats_total", &[("counter", name)]))
            .collect();
        let m = Self {
            queries_total: registry.counter("hydra_queries_total", &[]),
            ticks_total: registry.counter("hydra_ticks_total", &[]),
            batch_calls_total: registry.counter("hydra_batch_calls_total", &[]),
            connections_total: registry.counter("hydra_connections_total", &[]),
            queue_depth: registry.gauge("hydra_batch_queue_depth", &[]),
            batch_occupancy: registry.histogram("hydra_batch_occupancy", &[]),
            groups_per_tick: registry.histogram("hydra_batch_groups", &[]),
            query_micros: registry.histogram("hydra_query_micros", &[]),
            stage_enqueue_micros: registry
                .histogram("hydra_stage_micros", &[("stage", Stage::Enqueue.name())]),
            stage_search_micros: registry
                .histogram("hydra_stage_micros", &[("stage", Stage::ShardSearch.name())]),
            stage_write_micros: registry
                .histogram("hydra_stage_micros", &[("stage", Stage::Write.name())]),
            query_stats,
            errors_unknown_index: registry
                .counter("hydra_query_errors_total", &[("kind", "unknown_index")]),
            errors_search: registry.counter("hydra_query_errors_total", &[("kind", "search")]),
            errors_shutdown: registry.counter("hydra_query_errors_total", &[("kind", "shutdown")]),
            protocol_errors: registry.counter("hydra_protocol_errors_total", &[]),
            rx_bytes: registry.counter("hydra_rx_bytes_total", &[]),
            rx_frames: registry.counter("hydra_rx_frames_total", &[]),
            tx_bytes: registry.counter("hydra_tx_bytes_total", &[]),
            tx_frames: registry.counter("hydra_tx_frames_total", &[]),
            epoch: registry.gauge("hydra_epoch", &[]),
            reloads_success: registry.counter("hydra_reloads_total", &[("outcome", "success")]),
            reloads_failed: registry.counter("hydra_reloads_total", &[("outcome", "failed")]),
            reload_last_micros: registry.gauge("hydra_reload_last_micros", &[]),
            reload_last_ok: registry.gauge("hydra_reload_last_ok", &[]),
            slow_queries_total: registry.counter("hydra_slow_queries_total", &[]),
            registry,
        };
        m.reload_last_ok.set(-1);
        m
    }

    /// Adds one answered query's stats into the scrapeable sums.
    fn observe_query_stats(&self, stats: &QueryStats) {
        for ((_, value), counter) in stats.counters().iter().zip(&self.query_stats) {
            counter.add(*value);
        }
    }
}

/// Refreshes the live buffer-pool gauges from the served indexes, then
/// renders the registry — the body of a `Stats` scrape. Store counters
/// are polled at scrape time (not accumulated per query) because they
/// are the *store's* cumulative truth; gauges, not counters, because a
/// reload replaces the stores and the values legitimately reset.
fn render_stats(registry: &MetricsRegistry, epoch: &Epoch) -> String {
    for served in &epoch.indexes {
        if let Some(counters) = served.index.store_counters() {
            for (name, value) in counters.counters() {
                registry
                    .gauge("hydra_store", &[("index", served.name.as_str()), ("counter", name)])
                    .set(value as i64);
            }
        }
    }
    registry.render()
}

/// A [`Read`] pass-through that counts bytes into a [`Counter`], used to
/// meter each connection's receive side. Exposes the wrapped stream so
/// the connection teardown can still `shutdown()` the socket.
struct CountingReader {
    inner: TcpStream,
    bytes: Counter,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }
}

struct Inner {
    /// The current generation of the served zoo. Readers clone the `Arc`
    /// (queries, listings); a reload swaps the pointer under the brief
    /// write lock after building the replacement outside it.
    epoch: RwLock<Arc<Epoch>>,
    /// How to rebuild the zoo on a reload frame; `None` answers reloads
    /// with a typed error.
    reloader: Option<Reloader>,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Handles of every *live* connection, keyed by connection id, so
    /// shutdown can unblock readers that would otherwise sit in
    /// `read_request` forever. Entries are removed when their connection
    /// thread retires — a lingering clone would hold the socket open (the
    /// peer would never see EOF) and leak one fd per connection.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    queries: AtomicU64,
    ticks: AtomicU64,
    batch_calls: AtomicU64,
    connections: AtomicU64,
    reloads: AtomicU64,
    metrics: Metrics,
}

impl Inner {
    /// The epoch answering right now. Each caller holds its clone for one
    /// coherent unit of work (a tick, a listing) — never across two.
    fn current_epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.epoch.read().expect("epoch lock"))
    }

    /// Rebuilds the zoo via the [`Reloader`] and swaps it in as the next
    /// epoch. The rebuild runs outside any lock; only the pointer swap
    /// (and the id increment that orders concurrent reloads) holds the
    /// write lock.
    fn reload(&self) -> Result<u64, String> {
        let Some(reloader) = &self.reloader else {
            return Err("this server was started without a reload source".into());
        };
        // Both outcomes are observable through the registry (the
        // ServerStats.reloads counter only ever counted successes, so a
        // failed hot reload used to be invisible to everything but the
        // requesting connection).
        let t0 = Instant::now();
        let rebuilt = reloader().and_then(|indexes| {
            validate_zoo(&indexes)?;
            Ok(indexes)
        });
        let elapsed = t0.elapsed();
        self.metrics
            .reload_last_micros
            .set(elapsed.as_micros().min(i64::MAX as u128) as i64);
        let indexes = match rebuilt {
            Ok(indexes) => indexes,
            Err(message) => {
                self.metrics.reloads_failed.inc();
                self.metrics.reload_last_ok.set(0);
                return Err(message);
            }
        };
        let mut slot = self.epoch.write().expect("epoch lock");
        let next = Arc::new(Epoch {
            id: slot.id + 1,
            indexes,
        });
        let id = next.id;
        *slot = next;
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.metrics.reloads_success.inc();
        self.metrics.reload_last_ok.set(1);
        self.metrics.epoch.set(id.min(i64::MAX as u64) as i64);
        Ok(id)
    }

    /// Tracks a live connection for shutdown. Closing the *read* half on
    /// shutdown turns a blocked reader's next `read` into EOF (a clean
    /// hangup) while letting its writer flush responses already queued —
    /// including the shutdown ack itself.
    ///
    /// If the tracking clone cannot be made (fd exhaustion), the
    /// connection is refused outright — an untracked reader would be one
    /// that shutdown can never unblock.
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        match stream.try_clone() {
            Ok(clone) => {
                self.conns.lock().expect("conns lock").insert(id, clone);
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // A connection accepted while begin_shutdown was sweeping would
        // miss the sweep; re-checking after registration closes the race.
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().expect("conns lock").remove(&id);
    }

    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Unblock the acceptor with a throwaway connection; the accept
            // loop re-checks the flag before serving it. A wildcard bind
            // (0.0.0.0 / ::) is not connectable on every platform, so aim
            // the wake-up at loopback on the bound port instead.
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(match target {
                    SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(target);
            // Unblock every idle reader: without this, one lingering
            // connection would park `ServerHandle::join` forever.
            for conn in self.conns.lock().expect("conns lock").values() {
                let _ = conn.shutdown(Shutdown::Read);
            }
        }
    }
}

/// A running server. Obtained from [`Server::spawn`]; dropping the handle
/// does **not** stop the server — call [`ServerHandle::shutdown`] (or send
/// a shutdown frame) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: std::thread::JoinHandle<()>,
    batcher: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry this server records into — the same one a
    /// `Stats` frame renders. Handy for in-process scraping in tests.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics.registry
    }

    /// Asks the server to stop accepting and drain, as a shutdown frame
    /// would.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Waits for the acceptor, every connection and the batcher to finish,
    /// then reports the run's counters.
    ///
    /// # Panics
    /// Propagates a panic of the acceptor or batcher thread (neither is
    /// expected to panic; connection threads cannot reach here poisoned —
    /// their failures close only their own connection).
    pub fn join(self) -> ServerStats {
        self.acceptor.join().expect("acceptor panicked");
        self.batcher.join().expect("batcher panicked");
        ServerStats {
            queries: self.inner.queries.load(Ordering::Relaxed),
            ticks: self.inner.ticks.load(Ordering::Relaxed),
            batch_calls: self.inner.batch_calls.load(Ordering::Relaxed),
            connections: self.inner.connections.load(Ordering::Relaxed),
            reloads: self.inner.reloads.load(Ordering::Relaxed),
        }
    }
}

/// The hydra-serve server: binds, spawns the serving threads, and hands
/// back a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `indexes` with the given batching configuration.
    ///
    /// # Errors
    /// An [`std::io::Error`] if the listener cannot bind, or if `indexes`
    /// is empty or contains duplicate names (both are configuration bugs
    /// that must fail before the first request, not answer it wrongly).
    pub fn spawn<A: ToSocketAddrs>(
        indexes: Vec<ServedIndex>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_reloadable(indexes, addr, config, None)
    }

    /// [`Server::spawn`] with a [`Reloader`]: reload frames rebuild the
    /// zoo through it and atomically swap the served epoch. Without one
    /// (`None`), reload frames are answered with a typed error.
    ///
    /// # Errors
    /// Exactly the [`Server::spawn`] errors.
    pub fn spawn_reloadable<A: ToSocketAddrs>(
        indexes: Vec<ServedIndex>,
        addr: A,
        config: ServerConfig,
        reloader: Option<Reloader>,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_with_metrics(indexes, addr, config, reloader, MetricsRegistry::new())
    }

    /// [`Server::spawn_reloadable`] recording into a caller-supplied
    /// [`MetricsRegistry`] instead of a fresh one — so boot-time gauges
    /// (per-index load times, journal replays) registered before the
    /// server exists appear in the same `Stats` scrape as the serving
    /// counters.
    ///
    /// # Errors
    /// Exactly the [`Server::spawn`] errors.
    pub fn spawn_with_metrics<A: ToSocketAddrs>(
        indexes: Vec<ServedIndex>,
        addr: A,
        config: ServerConfig,
        reloader: Option<Reloader>,
        registry: MetricsRegistry,
    ) -> std::io::Result<ServerHandle> {
        validate_zoo(&indexes)
            .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            epoch: RwLock::new(Arc::new(Epoch { id: 0, indexes })),
            reloader,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            batch_calls: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            metrics: Metrics::new(registry),
        });
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || batcher_loop(&inner, &job_rx))
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, &listener, job_tx))
        };
        Ok(ServerHandle {
            addr,
            inner,
            acceptor,
            batcher,
        })
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener, job_tx: mpsc::Sender<Job>) {
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Reap retired connection threads as we go: a forever-running
        // server must not accumulate one joinable-thread carcass per
        // connection it ever served.
        readers = readers
            .into_iter()
            .filter_map(|handle| {
                if handle.is_finished() {
                    let _ = handle.join();
                    None
                } else {
                    Some(handle)
                }
            })
            .collect();
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Persistent accept failures (fd exhaustion, EMFILE) would
                // otherwise busy-spin this loop at 100% CPU on the one
                // binary designed to run forever; back off briefly.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        inner.connections.fetch_add(1, Ordering::Relaxed);
        inner.metrics.connections_total.inc();
        if let Some(timeout) = inner.config.write_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_write_timeout(Some(timeout));
        }
        let conn_id = inner.register(&stream);
        let inner = Arc::clone(inner);
        let job_tx = job_tx.clone();
        readers.push(std::thread::spawn(move || {
            connection_loop(&inner, stream, conn_id, &job_tx)
        }));
    }
    // The batcher exits once every Job sender is gone: ours here, the
    // per-connection clones when their readers return.
    drop(job_tx);
    for reader in readers {
        let _ = reader.join();
    }
}

fn connection_loop(inner: &Arc<Inner>, stream: TcpStream, conn_id: u64, job_tx: &mpsc::Sender<Job>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            // No write half, no service — release the tracking clone (the
            // invariant at `Inner::conns`) and hang up.
            inner.deregister(conn_id);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let tx_bytes = inner.metrics.tx_bytes.clone();
        let tx_frames = inner.metrics.tx_frames.clone();
        std::thread::spawn(move || writer_loop(write_half, &reply_rx, &tx_bytes, &tx_frames))
    };
    let mut reader = BufReader::new(CountingReader {
        inner: stream,
        bytes: inner.metrics.rx_bytes.clone(),
    });
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(request)) => {
                inner.metrics.rx_frames.inc();
                handle_request(inner, request, job_tx, &reply_tx);
            }
            Err(e) => {
                inner.metrics.protocol_errors.inc();
                // One typed protocol-error response (id 0), then hang up:
                // after a framing error the stream position is unknowable,
                // so continuing could misparse every later byte.
                let _ = reply_tx.send(
                    Response {
                        request_id: 0,
                        body: ResponseBody::Error {
                            code: ErrorCode::Protocol,
                            message: e.to_string(),
                        },
                    }
                    .encode(),
                );
                break;
            }
        }
    }
    // In-flight jobs still hold reply senders; the writer drains them and
    // exits once the batcher has answered the last one, so joining here
    // guarantees every accepted request was answered before the connection
    // thread retires.
    drop(reply_tx);
    let _ = writer.join();
    // Release the shutdown-sweep handle (it would otherwise hold the
    // socket open past this thread's life) and hang up explicitly.
    inner.deregister(conn_id);
    let _ = reader.into_inner().inner.shutdown(Shutdown::Both);
}

fn writer_loop(
    mut stream: TcpStream,
    replies: &mpsc::Receiver<Vec<u8>>,
    tx_bytes: &Counter,
    tx_frames: &Counter,
) {
    while let Ok(frame) = replies.recv() {
        if stream.write_all(&frame).and_then(|()| stream.flush()).is_err() {
            // The peer is gone; keep draining so queued senders never
            // block (mpsc sends are non-blocking anyway) and exit when
            // they hang up.
            break;
        }
        tx_bytes.add(frame.len() as u64);
        tx_frames.inc();
    }
}

fn handle_request(
    inner: &Arc<Inner>,
    request: Request,
    job_tx: &mpsc::Sender<Job>,
    reply_tx: &mpsc::Sender<Vec<u8>>,
) {
    match request {
        Request::Query {
            request_id,
            index,
            params,
            query,
        } => {
            // Name resolution is deferred to the batcher tick: the epoch
            // answering this query is whichever one is current when its
            // tick drains, never a slot index captured before a reload.
            let job = Job {
                request_id,
                index,
                params,
                query,
                reply: reply_tx.clone(),
                enqueued_at: Instant::now(),
            };
            inner.metrics.queue_depth.add(1);
            if job_tx.send(job).is_err() {
                // The batcher is gone (shutdown raced the request). Still
                // an answered query for the stats, like every other error.
                inner.queries.fetch_add(1, Ordering::Relaxed);
                inner.metrics.queue_depth.add(-1);
                inner.metrics.queries_total.inc();
                inner.metrics.errors_shutdown.inc();
                let _ = reply_tx.send(
                    Response {
                        request_id,
                        body: ResponseBody::Error {
                            code: ErrorCode::Search,
                            message: "server is shutting down".into(),
                        },
                    }
                    .encode(),
                );
            }
        }
        Request::ListIndexes { request_id } => {
            let epoch = inner.current_epoch();
            let indexes = epoch
                .indexes
                .iter()
                .map(|s| IndexInfo::describe(&s.name, s.index.as_ref()))
                .collect();
            let _ = reply_tx.send(
                Response {
                    request_id,
                    body: ResponseBody::Indexes { indexes },
                }
                .encode(),
            );
        }
        Request::Reload { request_id } => {
            // Synchronous on this connection's reader thread: the rebuild
            // stalls only this connection's own pipeline; queries from
            // other connections keep draining against the old epoch until
            // the swap.
            let body = match inner.reload() {
                Ok(epoch) => ResponseBody::ReloadAck { epoch },
                Err(message) => ResponseBody::Error {
                    code: ErrorCode::Unavailable,
                    message,
                },
            };
            let _ = reply_tx.send(Response { request_id, body }.encode());
        }
        Request::Stats { request_id } => {
            // Answered inline on the reader thread, like listings: a
            // scrape reads atomics and polls store counters but runs no
            // search, so it cannot perturb answers or per-query stats.
            let epoch = inner.current_epoch();
            let text = render_stats(&inner.metrics.registry, &epoch);
            let _ = reply_tx.send(
                Response {
                    request_id,
                    body: ResponseBody::Stats { text },
                }
                .encode(),
            );
        }
        Request::Shutdown { request_id } => {
            let _ = reply_tx.send(
                Response {
                    request_id,
                    body: ResponseBody::ShutdownAck,
                }
                .encode(),
            );
            inner.begin_shutdown();
        }
    }
}

fn batcher_loop(inner: &Arc<Inner>, jobs: &mpsc::Receiver<Job>) {
    loop {
        // Block for the first request of a tick...
        let first = match jobs.recv() {
            Ok(job) => job,
            Err(_) => break, // every sender gone: acceptor and readers done
        };
        let mut batch = vec![first];
        // ...then gather until the window closes or the batch fills.
        let deadline = Instant::now() + inner.config.batch_window;
        while batch.len() < inner.config.max_batch {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            match jobs.recv_timeout(left) {
                Ok(job) => batch.push(job),
                Err(_) => break, // window elapsed, or all senders gone
            }
        }
        drain_tick(inner, batch);
    }
}

/// Answers one tick's batch: group by (index, parameter key) — only
/// queries sharing both may legally share a `search_batch` call — and
/// issue exactly one batched call per group, routing each result to its
/// connection.
///
/// The epoch is resolved **once**, up front: every query of the tick —
/// including unknown-index errors — is answered against the same index
/// generation, so a concurrent reload can never mix epochs within one
/// response batch.
fn drain_tick(inner: &Arc<Inner>, batch: Vec<Job>) {
    inner.ticks.fetch_add(1, Ordering::Relaxed);
    inner.queries.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let m = &inner.metrics;
    m.ticks_total.inc();
    m.queries_total.add(batch.len() as u64);
    m.queue_depth.add(-(batch.len() as i64));
    m.batch_occupancy.observe(batch.len() as u64);
    // The moment the tick starts working is where every job's enqueue
    // (queue-wait) span ends.
    let drained_at = Instant::now();
    let epoch = inner.current_epoch();
    let mut groups: BTreeMap<(usize, SearchKey), Vec<Job>> = BTreeMap::new();
    for job in batch {
        let Some(slot) = epoch.indexes.iter().position(|s| s.name == job.index) else {
            m.errors_unknown_index.inc();
            let message = format!("no index named {:?} is served", job.index);
            finish_job(
                inner,
                &job,
                ResponseBody::Error {
                    code: ErrorCode::UnknownIndex,
                    message,
                },
                drained_at,
                Duration::ZERO,
            );
            continue;
        };
        groups
            .entry((slot, job.params.key()))
            .or_default()
            .push(job);
    }
    m.groups_per_tick.observe(groups.len() as u64);
    for ((slot, _), group) in groups {
        inner.batch_calls.fetch_add(1, Ordering::Relaxed);
        m.batch_calls_total.inc();
        let params = group[0].params;
        let queries: Vec<&[f32]> = group.iter().map(|j| j.query.as_slice()).collect();
        let t0 = Instant::now();
        let results = epoch.indexes[slot].index.search_batch(&queries, &params);
        let group_elapsed = t0.elapsed();
        m.stage_search_micros.observe_micros(group_elapsed);
        // One batched call measures one wall-clock; each query's share is
        // the amortized mean, mirroring the offline parallel runner.
        let amortized = group_elapsed / group.len() as u32;
        debug_assert_eq!(results.len(), group.len());
        // Pair results back by position, but never let a contract-breaking
        // index (fewer results than queries) leave a request unanswered —
        // a client with no read timeout would wait forever. Such requests
        // get an error response naming the broken index instead.
        let mut results = results.into_iter();
        for job in &group {
            let body = match results.next() {
                Some(Ok(answer)) => {
                    m.observe_query_stats(&answer.stats);
                    ResponseBody::Answer {
                        neighbors: answer.neighbors,
                    }
                }
                Some(Err(e)) => {
                    m.errors_search.inc();
                    ResponseBody::Error {
                        code: ErrorCode::Search,
                        message: e.to_string(),
                    }
                }
                None => {
                    m.errors_search.inc();
                    ResponseBody::Error {
                        code: ErrorCode::Search,
                        message: format!(
                            "index {:?} violated the search_batch contract: fewer results than queries",
                            epoch.indexes[slot].name
                        ),
                    }
                }
            };
            finish_job(inner, job, body, drained_at, amortized);
        }
    }
}

/// Encodes and sends one job's response, observing its latency spans and
/// writing the slow-query log line when the configured threshold is hit.
/// `search_share` is the job's amortized share of its group's batched
/// search (zero for jobs that never reached an index).
fn finish_job(
    inner: &Arc<Inner>,
    job: &Job,
    body: ResponseBody,
    drained_at: Instant,
    search_share: Duration,
) {
    let m = &inner.metrics;
    let queue_wait = drained_at.saturating_duration_since(job.enqueued_at);
    m.stage_enqueue_micros.observe_micros(queue_wait);
    let t0 = Instant::now();
    let frame = Response {
        request_id: job.request_id,
        body,
    }
    .encode();
    let encode_elapsed = t0.elapsed();
    m.stage_write_micros.observe_micros(encode_elapsed);
    let total = queue_wait + search_share + encode_elapsed;
    m.query_micros.observe_micros(total);
    if let Some(threshold) = inner.config.slow_query {
        if total >= threshold {
            m.slow_queries_total.inc();
            let mut trace = QueryTrace::new();
            trace.record(Stage::Enqueue, queue_wait);
            if !search_share.is_zero() {
                trace.record(Stage::ShardSearch, search_share);
            }
            trace.record(Stage::Write, encode_elapsed);
            eprintln!(
                "slow-query request_id={} index={:?} params={:?} total_ms={:.1} stages: {}",
                job.request_id,
                job.index,
                job.params.key(),
                total.as_secs_f64() * 1e3,
                trace.breakdown(),
            );
        }
    }
    let _ = job.reply.send(frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra::core::{Capabilities, Representation};
    use hydra::{Error, Neighbor, QueryStats, Result, SearchResult};

    /// Answers with the query's first value as the neighbor id; counts
    /// batched entry-point calls so micro-batching is observable.
    struct Echo {
        batch_calls: AtomicU64,
    }

    impl AnnIndex for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: true,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                streaming_insert: false,
                representation: Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            100
        }
        fn series_len(&self) -> usize {
            2
        }
        fn memory_footprint(&self) -> usize {
            0
        }
        fn search(&self, query: &[f32], _params: &SearchParams) -> Result<SearchResult> {
            if query.len() != 2 {
                return Err(Error::DimensionMismatch {
                    expected: 2,
                    found: query.len(),
                });
            }
            Ok(SearchResult::new(
                vec![Neighbor::new(query[0] as usize, query[1])],
                QueryStats::new(),
            ))
        }
        fn search_batch(
            &self,
            queries: &[&[f32]],
            params: &SearchParams,
        ) -> Vec<Result<SearchResult>> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            queries.iter().map(|q| self.search(q, params)).collect()
        }
    }

    fn echo_server(window_ms: u64) -> ServerHandle {
        Server::spawn(
            vec![ServedIndex {
                name: "echo".into(),
                index: Box::new(Echo {
                    batch_calls: AtomicU64::new(0),
                }),
            }],
            "127.0.0.1:0",
            ServerConfig {
                batch_window: Duration::from_millis(window_ms),
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn refuses_empty_and_duplicate_index_sets() {
        assert!(Server::spawn(Vec::new(), "127.0.0.1:0", ServerConfig::default()).is_err());
        let dup = || ServedIndex {
            name: "same".into(),
            index: Box::new(Echo {
                batch_calls: AtomicU64::new(0),
            }) as Box<dyn AnnIndex>,
        };
        assert!(
            Server::spawn(vec![dup(), dup()], "127.0.0.1:0", ServerConfig::default()).is_err()
        );
    }

    #[test]
    fn serves_pipelined_queries_lists_and_shuts_down_cleanly() {
        let handle = echo_server(1);
        let addr = handle.local_addr();
        let mut client = crate::client::ServeClient::connect(addr).unwrap();
        // List first.
        let infos = client.list_indexes().unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "echo");
        assert_eq!(infos[0].method, "echo");
        assert!(infos[0].capabilities().ng_approximate);
        // Pipeline a burst of queries, then collect responses by id.
        let n = 20u64;
        for i in 0..n {
            client
                .send(&Request::Query {
                    request_id: 100 + i,
                    index: "echo".into(),
                    params: SearchParams::ng(1, 4),
                    query: vec![i as f32, 0.5],
                })
                .unwrap();
        }
        let mut seen = std::collections::BTreeMap::new();
        for _ in 0..n {
            let resp = client.recv().unwrap();
            match resp.body {
                ResponseBody::Answer { neighbors } => {
                    seen.insert(resp.request_id, neighbors[0].index);
                }
                other => panic!("expected an answer, got {other:?}"),
            }
        }
        for i in 0..n {
            assert_eq!(seen[&(100 + i)], i as usize, "answers must match their ids");
        }
        // Unknown index and bad dimensionality are per-request errors.
        let resp = client
            .call(&Request::Query {
                request_id: 7,
                index: "nope".into(),
                params: SearchParams::exact(1),
                query: vec![0.0, 0.0],
            })
            .unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::UnknownIndex,
                ..
            }
        ));
        let resp = client
            .call(&Request::Query {
                request_id: 8,
                index: "echo".into(),
                params: SearchParams::exact(1),
                query: vec![0.0, 0.0, 0.0],
            })
            .unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::Search,
                ..
            }
        ));
        // Shutdown is acknowledged, then the server exits.
        let resp = client.call(&Request::Shutdown { request_id: 9 }).unwrap();
        assert_eq!(resp.body, ResponseBody::ShutdownAck);
        drop(client);
        let stats = handle.join();
        assert_eq!(stats.queries, n + 2);
        assert!(stats.connections >= 1);
        assert!(stats.ticks >= 1);
        // Batching must have amortized: strictly fewer search_batch calls
        // than queries (the pipelined burst shares ticks).
        assert!(
            stats.batch_calls < stats.queries,
            "{} batch calls for {} queries — micro-batching never grouped anything",
            stats.batch_calls,
            stats.queries
        );
    }

    #[test]
    fn malformed_frames_get_a_protocol_error_and_a_hangup() {
        let handle = echo_server(1);
        let addr = handle.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage everywhere").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = crate::protocol::read_response(&mut reader).unwrap().unwrap();
        assert_eq!(resp.request_id, 0);
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
        // The server hangs up after a framing error.
        assert!(crate::protocol::read_response(&mut reader).unwrap().is_none());
        // A fresh connection still works: the bad one poisoned nothing.
        let mut client = crate::client::ServeClient::connect(addr).unwrap();
        let resp = client
            .call(&Request::Query {
                request_id: 1,
                index: "echo".into(),
                params: SearchParams::ng(1, 1),
                query: vec![3.0, 0.25],
            })
            .unwrap();
        assert!(matches!(resp.body, ResponseBody::Answer { .. }));
        client.call(&Request::Shutdown { request_id: 2 }).unwrap();
        drop(client);
        handle.join();
    }

    #[test]
    fn reload_swaps_epochs_on_a_live_connection() {
        // Each reload serves a fresh generation under a new name; the
        // reloader fails from generation 3 on, pinning that a failed
        // reload leaves the current epoch serving.
        let gen = Arc::new(AtomicU64::new(0));
        let make_gen = |n: u64| ServedIndex {
            name: format!("gen{n}"),
            index: Box::new(Echo {
                batch_calls: AtomicU64::new(0),
            }) as Box<dyn AnnIndex>,
        };
        let reloader: Reloader = {
            let gen = Arc::clone(&gen);
            Box::new(move || {
                let n = gen.fetch_add(1, Ordering::SeqCst) + 1;
                if n >= 3 {
                    return Err("the snapshot directory is on fire".into());
                }
                Ok(vec![make_gen(n)])
            })
        };
        let handle = Server::spawn_reloadable(
            vec![make_gen(0)],
            "127.0.0.1:0",
            ServerConfig::default(),
            Some(reloader),
        )
        .unwrap();
        let mut client = crate::client::ServeClient::connect(handle.local_addr()).unwrap();
        let ask = |client: &mut crate::client::ServeClient, name: &str, id: u64| {
            client
                .call(&Request::Query {
                    request_id: id,
                    index: name.into(),
                    params: SearchParams::ng(1, 4),
                    query: vec![9.0, 0.5],
                })
                .unwrap()
                .body
        };
        assert!(matches!(ask(&mut client, "gen0", 1), ResponseBody::Answer { .. }));
        // Swap to generation 1 — the same connection keeps working, the
        // old name vanishes, the new one answers.
        assert_eq!(client.reload().unwrap(), 1);
        assert!(matches!(
            ask(&mut client, "gen0", 2),
            ResponseBody::Error {
                code: ErrorCode::UnknownIndex,
                ..
            }
        ));
        assert!(matches!(ask(&mut client, "gen1", 3), ResponseBody::Answer { .. }));
        let listed = client.list_indexes().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "gen1");
        assert_eq!(client.reload().unwrap(), 2);
        // Generation 3 fails to build: a typed error, and generation 2
        // keeps serving untouched.
        assert!(client.reload().is_err());
        assert!(matches!(ask(&mut client, "gen2", 4), ResponseBody::Answer { .. }));
        client.shutdown().unwrap();
        drop(client);
        let stats = handle.join();
        assert_eq!(stats.reloads, 2);
    }

    #[test]
    fn reload_without_a_source_is_a_typed_error() {
        let handle = echo_server(1);
        let mut client = crate::client::ServeClient::connect(handle.local_addr()).unwrap();
        let resp = client.call(&Request::Reload { request_id: 6 }).unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::Unavailable,
                ..
            }
        ));
        // The zoo is untouched and still answering.
        assert_eq!(client.list_indexes().unwrap()[0].name, "echo");
        client.shutdown().unwrap();
        drop(client);
        assert_eq!(handle.join().reloads, 0);
    }

    #[test]
    fn handle_shutdown_stops_an_idle_server() {
        let handle = echo_server(1);
        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.queries, 0);
    }

    #[test]
    fn shutdown_completes_despite_an_idle_connection() {
        let handle = echo_server(1);
        let addr = handle.local_addr();
        // A connection that never sends a byte and never closes: its
        // reader sits blocked in read_request until shutdown closes the
        // read half.
        let idle = TcpStream::connect(addr).unwrap();
        let mut client = crate::client::ServeClient::connect(addr).unwrap();
        client.shutdown().unwrap();
        drop(client);
        // join() must still complete; a watchdog turns a regression into
        // a failure instead of a hung test run.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(handle.join());
        });
        let stats = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("join must not hang on an idle connection");
        assert_eq!(stats.queries, 0);
        drop(idle);
    }
}
