//! Scaffolding for the house CLI style, shared by the `hydra-serve`
//! binary and `hydra-bench`'s `serve_client`: both `--flag VALUE` and
//! `--flag=VALUE` spellings are accepted, and anything unusable — a typo,
//! a missing value, a duplicate flag — is an error, never a silent
//! fallback. Keeping the two parsers on one scaffold means a future fix
//! to the spelling rules cannot drift between them.

/// Matches the current argument against `--name VALUE` / `--name=VALUE`.
///
/// Returns `None` if `arg` is not this flag at all; `Some(Ok(value))` on a
/// match; `Some(Err(message))` when the space-separated spelling has no
/// value left in `rest`.
pub fn value_of(
    arg: &str,
    name: &str,
    rest: &mut std::slice::Iter<'_, String>,
) -> Option<Result<String, String>> {
    if arg == name {
        Some(
            rest.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value")),
        )
    } else {
        arg.strip_prefix(name)
            .and_then(|r| r.strip_prefix('='))
            .map(|v| Ok(v.to_string()))
    }
}

/// Records one occurrence of `name`, erroring on a duplicate.
pub fn once(name: &'static str, seen: &mut Vec<&'static str>) -> Result<(), String> {
    if seen.contains(&name) {
        return Err(format!("{name} given more than once"));
    }
    seen.push(name);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn both_spellings_match_and_others_do_not() {
        let rest_args = args(&["VALUE"]);
        let mut rest = rest_args.iter();
        assert_eq!(value_of("--x", "--x", &mut rest), Some(Ok("VALUE".into())));
        assert!(rest.next().is_none(), "the space spelling consumes the value");
        let mut rest = [].iter();
        assert_eq!(value_of("--x=7", "--x", &mut rest), Some(Ok("7".into())));
        assert_eq!(value_of("--x=", "--x", &mut rest), Some(Ok(String::new())));
        // A different flag sharing the prefix is NOT a match.
        assert_eq!(value_of("--xy=7", "--x", &mut rest), None);
        assert_eq!(value_of("--y", "--x", &mut rest), None);
        // Missing value is an error, not a silent skip.
        assert!(matches!(value_of("--x", "--x", &mut [].iter()), Some(Err(_))));
    }

    #[test]
    fn once_rejects_duplicates() {
        let mut seen = Vec::new();
        assert!(once("--x", &mut seen).is_ok());
        assert!(once("--y", &mut seen).is_ok());
        assert!(once("--x", &mut seen).is_err());
    }
}
