//! The hydra-serve wire protocol.
//!
//! A deliberately small, length-prefixed, little-endian binary protocol —
//! the serving twin of the snapshot container. Frames reuse the
//! `hydra-persist` codec primitives ([`Section`] to build payloads,
//! [`SectionReader`] to parse them), inheriting their never-panic decoding
//! guarantees: a malformed input of any shape maps to a typed
//! [`ProtocolError`], never a panic, a hang, or a partial answer.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HSRQ" (request) / b"HSRP" (response)
//! 4       2     protocol version (u16, currently 1)
//! 6       4     payload length P (u32, at most MAX_FRAME_LEN)
//! 10      P     payload (Section-encoded, see below)
//! ```
//!
//! A reader validates magic, version and the declared length **before**
//! allocating or waiting for payload bytes, so a hostile length field can
//! neither trigger a huge allocation nor stall a connection forever
//! ([`ProtocolError::FrameTooLarge`]).
//!
//! ## Request payloads
//!
//! ```text
//! u64 request id            (echoed verbatim in the response; 0 is
//!                            reserved for protocol-level error responses
//!                            and rejected as corrupt in requests)
//! u8  op                    0 = query, 1 = list indexes, 2 = shutdown,
//!                           3 = reload snapshots, 4 = stats scrape
//! -- op 0 (query) only --
//! str index name            (u16 length + UTF-8)
//! u64 k                     (1 ..= MAX_K)
//! u8  mode tag              0 exact, 1 ng, 2 ε, 3 δ-ε
//! ..  mode knobs            ng: u64 nprobe · ε: f32 · δ-ε: f32 ε, f32 δ
//! f32s query values         (u64 count prefix, bit patterns)
//! ```
//!
//! ## Response payloads
//!
//! ```text
//! u64 request id
//! u8  status                0 = answer, 1 = error, 2 = index list,
//!                           3 = shutdown ack, 4 = reload ack,
//!                           5 = stats snapshot
//! -- status 0 --            u64 count, then per neighbor u64 index + f32
//!                           distance (bit pattern — answers are exact to
//!                           the bit, so serving can be diffed against the
//!                           offline runner)
//! -- status 1 --            u8 error code (1 unknown index, 2 search
//!                           error, 3 protocol error, 4 shard worker
//!                           unavailable), str message
//! -- status 2 --            u64 count, then per index: str name, str
//!                           method, u64 series count, u64 series length,
//!                           u8 capability bits (1 exact, 2 ng, 4 ε,
//!                           8 δ-ε, 16 disk-resident, 32 streaming-insert)
//! -- status 4 --            u64 epoch now being served
//! -- status 5 --            UTF-8 metrics text in the Prometheus
//!                           exposition format, as a u64 byte count +
//!                           raw bytes (not the u16-length str codec —
//!                           a busy server's scrape easily exceeds
//!                           64 KiB)
//! ```
//!
//! Trailing bytes after any payload are [`ProtocolError::Corrupt`] — a
//! frame says exactly what it means or it is rejected.

use std::io::{Read, Write};

use hydra::core::{Capabilities, Representation};
use hydra::persist::{PersistError, Section, SectionReader};
use hydra::{Neighbor, SearchMode, SearchParams};

/// Magic bytes opening every request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"HSRQ";
/// Magic bytes opening every response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"HSRP";
/// The single protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Upper bound on a frame's declared payload length (16 MiB). Checked
/// before any allocation or payload read.
pub const MAX_FRAME_LEN: u32 = 1 << 24;
/// Upper bound on the `k` a query may request — large enough for any
/// plausible workload, small enough that a hostile frame cannot make the
/// answer heap allocate unboundedly.
pub const MAX_K: u64 = 1 << 20;

/// Every way a wire frame can be unusable. Mirrors the snapshot layer's
/// philosophy: each failure mode is distinguishable, and none panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame does not start with the expected magic bytes.
    BadMagic {
        /// The four bytes found.
        found: [u8; 4],
        /// The magic expected in this direction.
        expected: [u8; 4],
    },
    /// The frame was produced by a different (usually future) protocol
    /// version.
    VersionMismatch {
        /// Version found in the frame header.
        found: u16,
        /// The single version this build speaks.
        supported: u16,
    },
    /// The header declares a payload larger than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Declared payload length.
        declared: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The stream ended inside a frame (or a payload field asks for more
    /// bytes than the payload holds).
    Truncated,
    /// The bytes decode but describe an impossible value (unknown op or
    /// mode tag, invalid UTF-8, `k` out of range, trailing bytes).
    Corrupt(String),
    /// An operating-system I/O failure on the underlying stream.
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic { found, expected } => write!(
                f,
                "bad frame magic {found:?} (expected {:?})",
                std::str::from_utf8(expected).unwrap_or("?")
            ),
            ProtocolError::VersionMismatch { found, supported } => write!(
                f,
                "protocol version {found} is not supported (this build speaks version {supported})"
            ),
            ProtocolError::FrameTooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds the maximum {max}")
            }
            ProtocolError::Truncated => write!(f, "frame is truncated"),
            ProtocolError::Corrupt(msg) => write!(f, "frame is corrupt: {msg}"),
            ProtocolError::Io(msg) => write!(f, "stream I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            ProtocolError::Io(e.to_string())
        }
    }
}

/// Payload decoding reuses the snapshot section readers, whose two failure
/// modes map one-to-one onto wire failures.
impl From<PersistError> for ProtocolError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Truncated => ProtocolError::Truncated,
            PersistError::Corrupt(msg) => ProtocolError::Corrupt(msg),
            // SectionReader getters produce only the two variants above;
            // anything else would be a codec-layer bug surfacing loudly.
            other => ProtocolError::Corrupt(other.to_string()),
        }
    }
}

/// Convenience alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtocolError>;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer a k-NN query against one served index.
    Query {
        /// Client-chosen id echoed in the response. Must be non-zero —
        /// 0 is reserved for protocol-level error responses, and servers
        /// reject it as corrupt.
        request_id: u64,
        /// Name of the served index (as listed by [`Request::ListIndexes`]).
        index: String,
        /// Search parameters (k, guarantee mode, knobs).
        params: SearchParams,
        /// The query series.
        query: Vec<f32>,
    },
    /// List every served index with its capabilities.
    ListIndexes {
        /// Client-chosen id echoed in the response.
        request_id: u64,
    },
    /// Ask the server to stop accepting connections and exit cleanly once
    /// in-flight work has drained.
    Shutdown {
        /// Client-chosen id echoed in the response.
        request_id: u64,
    },
    /// Ask the server to reload its snapshot directory and atomically swap
    /// the served index set to the fresh epoch. In-flight and concurrent
    /// queries keep answering — each against one coherent epoch.
    Reload {
        /// Client-chosen id echoed in the response.
        request_id: u64,
    },
    /// Ask for a point-in-time snapshot of the server's (or router's)
    /// metrics registry, answered as Prometheus exposition text. A
    /// scrape is pure observation: it never perturbs the counters it
    /// reads and never touches the query path.
    Stats {
        /// Client-chosen id echoed in the response.
        request_id: u64,
    },
}

impl Request {
    /// The client-chosen request id.
    pub fn request_id(&self) -> u64 {
        match self {
            Request::Query { request_id, .. }
            | Request::ListIndexes { request_id }
            | Request::Shutdown { request_id }
            | Request::Reload { request_id }
            | Request::Stats { request_id } => *request_id,
        }
    }

    /// Encodes the request as a complete frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut s = Section::new();
        s.put_u64(self.request_id());
        match self {
            Request::Query {
                index,
                params,
                query,
                ..
            } => {
                s.put_u8(0);
                s.put_str(index);
                s.put_u64(params.k as u64);
                match params.mode {
                    SearchMode::Exact => s.put_u8(0),
                    SearchMode::Ng { nprobe } => {
                        s.put_u8(1);
                        s.put_u64(nprobe as u64);
                    }
                    SearchMode::Epsilon { epsilon } => {
                        s.put_u8(2);
                        s.put_f32(epsilon);
                    }
                    SearchMode::DeltaEpsilon { epsilon, delta } => {
                        s.put_u8(3);
                        s.put_f32(epsilon);
                        s.put_f32(delta);
                    }
                }
                s.put_f32s(query);
            }
            Request::ListIndexes { .. } => s.put_u8(1),
            Request::Shutdown { .. } => s.put_u8(2),
            Request::Reload { .. } => s.put_u8(3),
            Request::Stats { .. } => s.put_u8(4),
        }
        frame(REQUEST_MAGIC, s.as_bytes())
    }

    /// Decodes a request payload (the bytes after the frame header).
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut s = SectionReader::new(payload);
        let request_id = s.get_u64()?;
        if request_id == 0 {
            // Enforced, not just advised: a response echoing id 0 would be
            // indistinguishable from a protocol-error response.
            return Err(ProtocolError::Corrupt(
                "request id 0 is reserved for protocol-error responses".into(),
            ));
        }
        let op = s.get_u8()?;
        let req = match op {
            0 => {
                let index = s.get_str()?;
                let k = s.get_u64()?;
                if k == 0 || k > MAX_K {
                    return Err(ProtocolError::Corrupt(format!(
                        "k must be in 1..={MAX_K}, got {k}"
                    )));
                }
                let mode = match s.get_u8()? {
                    0 => SearchMode::Exact,
                    1 => {
                        let nprobe = s.get_u64()?;
                        let nprobe = usize::try_from(nprobe).map_err(|_| {
                            ProtocolError::Corrupt(format!("nprobe overflow: {nprobe}"))
                        })?;
                        SearchMode::Ng { nprobe }
                    }
                    2 => SearchMode::Epsilon {
                        epsilon: s.get_f32()?,
                    },
                    3 => SearchMode::DeltaEpsilon {
                        epsilon: s.get_f32()?,
                        delta: s.get_f32()?,
                    },
                    tag => {
                        return Err(ProtocolError::Corrupt(format!(
                            "unknown search mode tag {tag}"
                        )))
                    }
                };
                let query = s.get_f32s()?;
                Request::Query {
                    request_id,
                    index,
                    params: SearchParams { k: k as usize, mode },
                    query,
                }
            }
            1 => Request::ListIndexes { request_id },
            2 => Request::Shutdown { request_id },
            3 => Request::Reload { request_id },
            4 => Request::Stats { request_id },
            tag => return Err(ProtocolError::Corrupt(format!("unknown request op {tag}"))),
        };
        expect_consumed(&s)?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// What failed, when a response reports an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request named an index the server does not serve.
    UnknownIndex,
    /// The index rejected the query (unsupported mode, dimension
    /// mismatch, ...); the message carries the index's own error text.
    Search,
    /// The connection sent a malformed frame; the message carries the
    /// [`ProtocolError`] text. Sent with request id 0, after which the
    /// server closes the connection.
    Protocol,
    /// A shard worker behind a router was unreachable, timed out, or
    /// answered with a malformed or mismatched response, so the router
    /// could not assemble a complete answer. The message names the worker
    /// and the failure; the client connection stays open.
    Unavailable,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::UnknownIndex => 1,
            ErrorCode::Search => 2,
            ErrorCode::Protocol => 3,
            ErrorCode::Unavailable => 4,
        }
    }

    fn from_wire(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(ErrorCode::UnknownIndex),
            2 => Ok(ErrorCode::Search),
            3 => Ok(ErrorCode::Protocol),
            4 => Ok(ErrorCode::Unavailable),
            _ => Err(ProtocolError::Corrupt(format!("unknown error code {tag}"))),
        }
    }
}

/// One served index, as advertised by the list-indexes operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// The name queries address it by (snapshot file stem, e.g.
    /// `rand256-isax2`).
    pub name: String,
    /// The method's display name (e.g. `iSAX2+`).
    pub method: String,
    /// Number of series indexed.
    pub num_series: u64,
    /// Series length (query dimensionality).
    pub series_len: u64,
    /// Supports exact search.
    pub exact: bool,
    /// Supports ng-approximate search.
    pub ng_approximate: bool,
    /// Supports ε-approximate search.
    pub epsilon_approximate: bool,
    /// Supports δ-ε-approximate search.
    pub delta_epsilon_approximate: bool,
    /// Operates on disk-resident data.
    pub disk_resident: bool,
    /// Accepts new series after the build (streaming ingest).
    pub streaming_insert: bool,
}

impl IndexInfo {
    /// Describes a served index from its live [`Capabilities`].
    pub fn describe(name: &str, index: &dyn hydra::AnnIndex) -> Self {
        let caps = index.capabilities();
        Self {
            name: name.to_string(),
            method: index.name().to_string(),
            num_series: index.num_series() as u64,
            series_len: index.series_len() as u64,
            exact: caps.exact,
            ng_approximate: caps.ng_approximate,
            epsilon_approximate: caps.epsilon_approximate,
            delta_epsilon_approximate: caps.delta_epsilon_approximate,
            disk_resident: caps.disk_resident,
            streaming_insert: caps.streaming_insert,
        }
    }

    /// Reconstructs a [`Capabilities`] value for sweep planning. The
    /// representation is not carried on the wire (it does not affect what
    /// queries are legal) and comes back as [`Representation::Raw`].
    pub fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: self.exact,
            ng_approximate: self.ng_approximate,
            epsilon_approximate: self.epsilon_approximate,
            delta_epsilon_approximate: self.delta_epsilon_approximate,
            disk_resident: self.disk_resident,
            streaming_insert: self.streaming_insert,
            representation: Representation::Raw,
        }
    }

    fn caps_bits(&self) -> u8 {
        (self.exact as u8)
            | (self.ng_approximate as u8) << 1
            | (self.epsilon_approximate as u8) << 2
            | (self.delta_epsilon_approximate as u8) << 3
            | (self.disk_resident as u8) << 4
            | (self.streaming_insert as u8) << 5
    }
}

/// The body of one server response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The k-NN answer: neighbors in increasing distance order, distances
    /// bit-exact with respect to an offline `search` call.
    Answer {
        /// The neighbors found.
        neighbors: Vec<Neighbor>,
    },
    /// The request could not be answered.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The served index list.
    Indexes {
        /// One entry per served index, sorted by name.
        indexes: Vec<IndexInfo>,
    },
    /// Acknowledges a shutdown request; the server exits once in-flight
    /// work has drained.
    ShutdownAck,
    /// Acknowledges a reload request: the snapshot directory was re-read
    /// and the served index set swapped.
    ReloadAck {
        /// The epoch now being served (monotonically increasing from 0 at
        /// boot; each successful reload increments it).
        epoch: u64,
    },
    /// A point-in-time metrics snapshot.
    Stats {
        /// The registry rendered in the Prometheus text exposition
        /// format. Carried as raw bytes on the wire (u64 count prefix)
        /// rather than the u16-length `str` codec, because a busy
        /// server's scrape easily exceeds 64 KiB.
        text: String,
    },
}

/// One server response, echoing the request's id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers (0 for protocol-level errors).
    pub request_id: u64,
    /// The response body.
    pub body: ResponseBody,
}

impl Response {
    /// Encodes the response as a complete frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut s = Section::new();
        s.put_u64(self.request_id);
        match &self.body {
            ResponseBody::Answer { neighbors } => {
                s.put_u8(0);
                s.put_u64(neighbors.len() as u64);
                for n in neighbors {
                    s.put_u64(n.index as u64);
                    s.put_f32(n.distance);
                }
            }
            ResponseBody::Error { code, message } => {
                s.put_u8(1);
                s.put_u8(code.to_wire());
                s.put_str(message);
            }
            ResponseBody::Indexes { indexes } => {
                s.put_u8(2);
                s.put_u64(indexes.len() as u64);
                for info in indexes {
                    s.put_str(&info.name);
                    s.put_str(&info.method);
                    s.put_u64(info.num_series);
                    s.put_u64(info.series_len);
                    s.put_u8(info.caps_bits());
                }
            }
            ResponseBody::ShutdownAck => s.put_u8(3),
            ResponseBody::ReloadAck { epoch } => {
                s.put_u8(4);
                s.put_u64(*epoch);
            }
            ResponseBody::Stats { text } => {
                s.put_u8(5);
                s.put_u8s(text.as_bytes());
            }
        }
        frame(RESPONSE_MAGIC, s.as_bytes())
    }

    /// Decodes a response payload (the bytes after the frame header).
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut s = SectionReader::new(payload);
        let request_id = s.get_u64()?;
        let body = match s.get_u8()? {
            0 => {
                let count = s.get_u64()?;
                // Each neighbor occupies 12 payload bytes; a count beyond
                // what the payload can hold is corrupt, not an allocation.
                if count > (payload.len() as u64) / 12 + 1 {
                    return Err(ProtocolError::Truncated);
                }
                let mut neighbors = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let index = s.get_u64()?;
                    let index = usize::try_from(index).map_err(|_| {
                        ProtocolError::Corrupt(format!("neighbor index overflow: {index}"))
                    })?;
                    neighbors.push(Neighbor::new(index, s.get_f32()?));
                }
                ResponseBody::Answer { neighbors }
            }
            1 => ResponseBody::Error {
                code: ErrorCode::from_wire(s.get_u8()?)?,
                message: s.get_str()?,
            },
            2 => {
                let count = s.get_u64()?;
                // Each index entry occupies at least 21 payload bytes (two
                // empty strings, two u64s, one capability byte); a count
                // beyond that bound is rejected before the allocation.
                if count > (payload.len() as u64) / 21 + 1 {
                    return Err(ProtocolError::Truncated);
                }
                let mut indexes = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let name = s.get_str()?;
                    let method = s.get_str()?;
                    let num_series = s.get_u64()?;
                    let series_len = s.get_u64()?;
                    let bits = s.get_u8()?;
                    if bits >= 64 {
                        return Err(ProtocolError::Corrupt(format!(
                            "unknown capability bits {bits:#x}"
                        )));
                    }
                    indexes.push(IndexInfo {
                        name,
                        method,
                        num_series,
                        series_len,
                        exact: bits & 1 != 0,
                        ng_approximate: bits & 2 != 0,
                        epsilon_approximate: bits & 4 != 0,
                        delta_epsilon_approximate: bits & 8 != 0,
                        disk_resident: bits & 16 != 0,
                        streaming_insert: bits & 32 != 0,
                    });
                }
                ResponseBody::Indexes { indexes }
            }
            3 => ResponseBody::ShutdownAck,
            4 => ResponseBody::ReloadAck {
                epoch: s.get_u64()?,
            },
            5 => {
                // get_u8s bounds its allocation by the remaining payload,
                // so a hostile count cannot allocate beyond the frame.
                let bytes = s.get_u8s()?;
                let text = String::from_utf8(bytes).map_err(|e| {
                    ProtocolError::Corrupt(format!("stats text is not UTF-8: {e}"))
                })?;
                ResponseBody::Stats { text }
            }
            tag => {
                return Err(ProtocolError::Corrupt(format!(
                    "unknown response status {tag}"
                )))
            }
        };
        expect_consumed(&s)?;
        Ok(Response { request_id, body })
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

fn frame(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    // A hard assert, not a debug one: an oversized encode is a caller bug
    // best surfaced at its source — shipped in release it would be
    // rejected remotely (or, past u32, wrap the length into a frame that
    // misparses everything after it).
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
        payload.len()
    );
    let mut out = Vec::with_capacity(10 + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn expect_consumed(s: &SectionReader<'_>) -> Result<()> {
    if s.remaining() != 0 {
        return Err(ProtocolError::Corrupt(format!(
            "{} trailing bytes after the payload",
            s.remaining()
        )));
    }
    Ok(())
}

/// Reads one frame with the given magic from `r` and returns its payload.
///
/// Returns `Ok(None)` on a clean end of stream (the peer closed between
/// frames); ending **inside** a frame is [`ProtocolError::Truncated`]. The
/// declared length is validated against [`MAX_FRAME_LEN`] before any
/// payload byte is awaited or allocated.
pub fn read_frame<R: Read>(r: &mut R, expected_magic: [u8; 4]) -> Result<Option<Vec<u8>>> {
    let mut magic = [0u8; 4];
    // A clean EOF before the first magic byte ends the stream; EOF after
    // at least one byte is a truncated frame.
    let mut filled = 0;
    while filled < magic.len() {
        match r.read(&mut magic[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if magic != expected_magic {
        return Err(ProtocolError::BadMagic {
            found: magic,
            expected: expected_magic,
        });
    }
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    let version = u16::from_le_bytes([header[0], header[1]]);
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            declared: len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one request from `r` (`Ok(None)` on clean end of stream).
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>> {
    match read_frame(r, REQUEST_MAGIC)? {
        Some(payload) => Ok(Some(Request::decode(&payload)?)),
        None => Ok(None),
    }
}

/// Reads one response from `r` (`Ok(None)` on clean end of stream).
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>> {
    match read_frame(r, RESPONSE_MAGIC)? {
        Some(payload) => Ok(Some(Response::decode(&payload)?)),
        None => Ok(None),
    }
}

/// Writes one request frame to `w` (flushing is the caller's concern).
pub fn write_request<W: Write>(w: &mut W, request: &Request) -> Result<()> {
    w.write_all(&request.encode())?;
    Ok(())
}

/// Writes one response frame to `w` (flushing is the caller's concern).
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> Result<()> {
    w.write_all(&response.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) -> Request {
        let bytes = req.encode();
        let mut cur = Cursor::new(bytes);
        let got = read_request(&mut cur).unwrap().unwrap();
        // The stream is exactly one frame long.
        assert!(read_request(&mut cur).unwrap().is_none());
        got
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let bytes = resp.encode();
        let mut cur = Cursor::new(bytes);
        let got = read_response(&mut cur).unwrap().unwrap();
        assert!(read_response(&mut cur).unwrap().is_none());
        got
    }

    #[test]
    fn requests_roundtrip_across_every_mode() {
        for params in [
            SearchParams::exact(10),
            SearchParams::ng(5, 64),
            SearchParams::epsilon(3, 1.5),
            SearchParams::delta_epsilon(7, 0.99, 2.0),
        ] {
            let req = Request::Query {
                request_id: 42,
                index: "rand256-isax2".into(),
                params,
                query: vec![1.0, -2.5, f32::INFINITY, 0.0],
            };
            assert_eq!(roundtrip_request(&req), req);
        }
        assert_eq!(
            roundtrip_request(&Request::ListIndexes { request_id: 7 }),
            Request::ListIndexes { request_id: 7 }
        );
        assert_eq!(
            roundtrip_request(&Request::Shutdown { request_id: u64::MAX }),
            Request::Shutdown { request_id: u64::MAX }
        );
        assert_eq!(
            roundtrip_request(&Request::Reload { request_id: 11 }),
            Request::Reload { request_id: 11 }
        );
        assert_eq!(
            roundtrip_request(&Request::Stats { request_id: 13 }),
            Request::Stats { request_id: 13 }
        );
    }

    #[test]
    fn responses_roundtrip_across_every_body() {
        let answers = Response {
            request_id: 9,
            body: ResponseBody::Answer {
                neighbors: vec![Neighbor::new(3, 1.25), Neighbor::new(0, f32::NAN)],
            },
        };
        // NaN distances survive by bit pattern, so compare bits manually.
        let got = roundtrip_response(&answers);
        match (&got.body, &answers.body) {
            (ResponseBody::Answer { neighbors: a }, ResponseBody::Answer { neighbors: b }) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
            }
            _ => panic!("body kind drifted"),
        }
        for code in [
            ErrorCode::UnknownIndex,
            ErrorCode::Search,
            ErrorCode::Protocol,
            ErrorCode::Unavailable,
        ] {
            let err = Response {
                request_id: 1,
                body: ResponseBody::Error {
                    code,
                    message: "no such index".into(),
                },
            };
            assert_eq!(roundtrip_response(&err), err);
        }
        let list = Response {
            request_id: 2,
            body: ResponseBody::Indexes {
                indexes: vec![IndexInfo {
                    name: "rand256-dstree".into(),
                    method: "DSTree".into(),
                    num_series: 8_000,
                    series_len: 256,
                    exact: true,
                    ng_approximate: true,
                    epsilon_approximate: true,
                    delta_epsilon_approximate: true,
                    disk_resident: true,
                    streaming_insert: true,
                }],
            },
        };
        assert_eq!(roundtrip_response(&list), list);
        let ack = Response {
            request_id: 3,
            body: ResponseBody::ShutdownAck,
        };
        assert_eq!(roundtrip_response(&ack), ack);
        let reload = Response {
            request_id: 4,
            body: ResponseBody::ReloadAck { epoch: 7 },
        };
        assert_eq!(roundtrip_response(&reload), reload);
        for text in [
            String::new(),
            "# TYPE hydra_queries_total counter\nhydra_queries_total 42\n".to_string(),
            // Metrics text above the u16 limit of the `str` codec must
            // survive, which is why stats ride the raw-bytes codec.
            "x".repeat(100_000),
        ] {
            let stats = Response {
                request_id: 5,
                body: ResponseBody::Stats { text },
            };
            assert_eq!(roundtrip_response(&stats), stats);
        }
    }

    #[test]
    fn non_utf8_stats_text_is_corrupt() {
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(5);
        s.put_u8s(&[0xff, 0xfe, 0x41]);
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(msg)) if msg.contains("UTF-8")
        ));
    }

    #[test]
    fn index_info_capabilities_roundtrip_through_the_bitmask() {
        let info = IndexInfo {
            name: "x".into(),
            method: "SRS".into(),
            num_series: 10,
            series_len: 4,
            exact: false,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            streaming_insert: true,
        };
        let caps = info.capabilities();
        assert!(!caps.exact && caps.ng_approximate && caps.delta_epsilon_approximate);
        assert!(caps.streaming_insert);
        let listed = Response {
            request_id: 1,
            body: ResponseBody::Indexes {
                indexes: vec![info.clone()],
            },
        };
        let got = roundtrip_response(&listed);
        match got.body {
            ResponseBody::Indexes { indexes } => assert_eq!(indexes[0], info),
            _ => panic!("body kind drifted"),
        }
    }

    #[test]
    fn zero_and_huge_k_are_rejected() {
        let mk = |k: u64| {
            let mut s = Section::new();
            s.put_u64(1);
            s.put_u8(0);
            s.put_str("idx");
            s.put_u64(k);
            s.put_u8(0);
            s.put_f32s(&[1.0]);
            s.as_bytes().to_vec()
        };
        assert!(matches!(
            Request::decode(&mk(0)),
            Err(ProtocolError::Corrupt(_))
        ));
        assert!(matches!(
            Request::decode(&mk(MAX_K + 1)),
            Err(ProtocolError::Corrupt(_))
        ));
        assert!(Request::decode(&mk(MAX_K)).is_ok());
    }

    #[test]
    fn header_damage_yields_the_exact_typed_error() {
        let good = Request::ListIndexes { request_id: 5 }.encode();
        // Flipped magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_request(&mut Cursor::new(bad)),
            Err(ProtocolError::BadMagic { .. })
        ));
        // Future version.
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(bad)),
            Err(ProtocolError::VersionMismatch { found, supported: PROTOCOL_VERSION })
                if found == PROTOCOL_VERSION + 1
        ));
        // Oversized declared length fails before reading any payload.
        let mut bad = good.clone();
        bad[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(bad)),
            Err(ProtocolError::FrameTooLarge { declared, max: MAX_FRAME_LEN })
                if declared == MAX_FRAME_LEN + 1
        ));
        // A length promising more than the stream holds is truncation.
        let mut bad = good.clone();
        bad[6..10].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(bad)),
            Err(ProtocolError::Truncated)
        ));
        // Every strict prefix of a valid frame is truncation (after the
        // first byte exists).
        for cut in 1..good.len() {
            assert!(
                matches!(
                    read_request(&mut Cursor::new(&good[..cut])),
                    Err(ProtocolError::Truncated)
                ),
                "prefix of {cut} bytes must be Truncated"
            );
        }
        // Trailing bytes inside the declared payload are corrupt.
        let mut padded = Request::Shutdown { request_id: 1 }.encode();
        padded.extend_from_slice(&[0, 0]);
        let len = (padded.len() - 10) as u32;
        padded[6..10].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(padded)),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn request_id_zero_is_rejected() {
        for request in [
            Request::Query {
                request_id: 0,
                index: "idx".into(),
                params: SearchParams::exact(1),
                query: vec![1.0],
            },
            Request::ListIndexes { request_id: 0 },
            Request::Shutdown { request_id: 0 },
        ] {
            let bytes = request.encode();
            assert!(matches!(
                read_request(&mut Cursor::new(bytes)),
                Err(ProtocolError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(9);
        assert!(matches!(
            Request::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(0);
        s.put_str("idx");
        s.put_u64(5);
        s.put_u8(7); // unknown mode tag
        s.put_f32s(&[1.0]);
        assert!(matches!(
            Request::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(9); // unknown status
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(1);
        s.put_u8(77); // unknown error code
        s.put_str("m");
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_stream_is_a_clean_end() {
        assert!(read_request(&mut Cursor::new(Vec::new())).unwrap().is_none());
        assert!(read_response(&mut Cursor::new(Vec::new())).unwrap().is_none());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ProtocolError::BadMagic {
            found: *b"JUNK",
            expected: REQUEST_MAGIC
        }
        .to_string()
        .contains("magic"));
        assert!(ProtocolError::VersionMismatch { found: 9, supported: 1 }
            .to_string()
            .contains('9'));
        assert!(ProtocolError::FrameTooLarge {
            declared: 100,
            max: 10
        }
        .to_string()
        .contains("100"));
        assert!(ProtocolError::Truncated.to_string().contains("truncated"));
        assert!(ProtocolError::Corrupt("tag".into()).to_string().contains("tag"));
        assert!(ProtocolError::Io("disk".into()).to_string().contains("disk"));
    }
}
