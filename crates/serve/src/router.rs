//! The scale-out router: one process speaking the serving protocol on
//! both sides. Clients talk to it exactly as they would to a single
//! [`crate::server::Server`]; behind it, `S` worker servers each hold one
//! shard of every index (built by `fig* --save-index DIR --shards S`,
//! booted with `hydra-serve --shard-role worker`).
//!
//! ## Topology
//!
//! ```text
//! client ──HSRQ──▶ router ──HSRQ──▶ worker 0 (shard 0 snapshots)
//!                    │  fan-out
//!                    ├─────HSRQ──▶ worker 1 (shard 1 snapshots)
//!                    └─────HSRQ──▶ worker S-1
//!        ◀──HSRP── merge: local ids → global via ShardMap,
//!                  top-k by (distance, global id)
//! ```
//!
//! The router is the multi-process twin of the in-process
//! `hydra_shard::ShardedIndex`: worker order is shard order, worker-local
//! ids are translated through the same [`ShardMap`], and per-worker
//! answers are merged by the same (distance, global id) rule
//! ([`hydra::merge_top_k`]) — so for exact search a routed answer is
//! bit-identical to the in-process sharded answer, which is bit-identical
//! to the unsharded one (`tests/integration_router.rs`).
//!
//! ## Failure semantics
//!
//! A query is answered *completely or not at all* — a partial top-k
//! silently missing one shard's neighbors would be a wrong answer wearing
//! a right answer's clothes. Any worker failure (connect refused, call
//! timeout, malformed or mismatched response, worker-side error) turns
//! the whole query into one typed error response
//! ([`ErrorCode::Unavailable`], naming the worker and the failure) on the
//! query's own request id, within the per-worker timeout — the router
//! never hangs a client on a dead worker, and other connections are
//! unaffected. Failed workers are reconnected lazily with exponential
//! backoff (so a flapping worker cannot turn every query into a connect
//! storm), and a worker restart is picked up on the next attempt.

use std::io::{BufReader, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hydra::{merge_top_k, Neighbor, PartitionScheme, ShardMap};
use hydra_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::client::ServeClient;
use crate::protocol::{read_request, ErrorCode, IndexInfo, Request, Response, ResponseBody};

/// Tuning knobs of the router's worker links and client side.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Read timeout for one worker call: a worker that accepts a query but
    /// never answers fails the call after this long instead of hanging the
    /// client forever.
    pub worker_timeout: Duration,
    /// Bound on one reconnection attempt to a failed worker.
    pub connect_timeout: Duration,
    /// How long boot retries the initial connection to each worker —
    /// generous, because workers validate whole snapshot directories
    /// before they listen.
    pub boot_timeout: Duration,
    /// First retry delay after a worker failure; doubles per consecutive
    /// failure up to [`backoff_max`](Self::backoff_max), resets on the
    /// first success.
    pub backoff_initial: Duration,
    /// Cap on the reconnection backoff.
    pub backoff_max: Duration,
    /// How the shards were cut from the original dataset. Only affects the
    /// local→global id translation: contiguous shards are prefix-sum
    /// offsets, strided shards interleave. Must match the `--shards` run
    /// that produced the worker snapshot directories.
    pub scheme: PartitionScheme,
    /// Socket write timeout toward clients (`None` = never time out), same
    /// role as [`crate::server::ServerConfig::write_timeout`].
    pub write_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    /// 30 s worker calls, 5 s reconnects, 120 s boot, 100 ms → 5 s
    /// backoff, contiguous shards.
    fn default() -> Self {
        Self {
            worker_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            boot_timeout: Duration::from_secs(120),
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            scheme: PartitionScheme::Contiguous,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Counters the router accumulates while running (readable after shutdown
/// via [`RouterHandle::join`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries answered, including error answers.
    pub queries: u64,
    /// Individual worker-call failures (timeouts, refused connects,
    /// malformed responses, worker-side errors) — each one also produced
    /// an [`ErrorCode::Unavailable`] or propagated error answer.
    pub worker_errors: u64,
    /// Client connections accepted.
    pub connections: u64,
}

/// One index as the router serves it: the merged advertisement plus the
/// map translating each worker's local ids to global ids.
struct RouterIndex {
    info: IndexInfo,
    map: ShardMap,
}

/// The link state of one worker: a connection when healthy, a backoff
/// clock when not. The mutex serializes calls per worker (each link is one
/// protocol connection, and `ServeClient::call` is one-in-one-out).
struct LinkState {
    client: Option<ServeClient>,
    backoff: Duration,
    next_attempt: Instant,
}

/// Live health metrics of one worker link, all under a
/// `worker="host:port"` label so a scrape of the router shows exactly
/// which shard is slow, flapping, or backing off.
struct WorkerMetrics {
    /// Calls currently inside [`WorkerLink::call`] — queued on the link
    /// lock or on the wire. Per link this hovers between 0 and the number
    /// of concurrently routed queries touching that worker.
    in_flight: Gauge,
    calls_total: Counter,
    errors_total: Counter,
    /// Subset of `errors_total` where the call ran into the configured
    /// worker timeout (classified by elapsed wall-clock, since the
    /// underlying error is an opaque socket error).
    timeouts_total: Counter,
    /// Successful (re)connections made by the call path — boot
    /// connections are not counted, so a nonzero value means the link
    /// failed at least once after boot.
    reconnects_total: Counter,
    /// The link's *current* backoff delay in microseconds; resets to the
    /// configured initial on the first success.
    backoff_micros: Gauge,
    call_micros: Histogram,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry, addr: SocketAddr) -> Self {
        let addr = addr.to_string();
        let labels: &[(&str, &str)] = &[("worker", addr.as_str())];
        Self {
            in_flight: registry.gauge("hydra_router_worker_in_flight", labels),
            calls_total: registry.counter("hydra_router_worker_calls_total", labels),
            errors_total: registry.counter("hydra_router_worker_errors_total", labels),
            timeouts_total: registry.counter("hydra_router_worker_timeouts_total", labels),
            reconnects_total: registry.counter("hydra_router_worker_reconnects_total", labels),
            backoff_micros: registry.gauge("hydra_router_worker_backoff_micros", labels),
            call_micros: registry.histogram("hydra_router_worker_call_micros", labels),
        }
    }
}

struct WorkerLink {
    addr: SocketAddr,
    state: Mutex<LinkState>,
    metrics: WorkerMetrics,
}

impl WorkerLink {
    /// Drops the connection and arms the backoff clock — used when a
    /// response decoded fine but was semantically wrong (stream state is
    /// no longer trustworthy).
    fn poison(&self, config: &RouterConfig) {
        let mut state = self.state.lock().expect("link lock");
        state.client = None;
        state.next_attempt = Instant::now() + state.backoff;
        state.backoff = (state.backoff * 2).min(config.backoff_max);
        self.metrics.errors_total.inc();
        self.metrics
            .backoff_micros
            .set(state.backoff.as_micros() as i64);
    }

    /// One request/response exchange with this worker: reconnect if needed
    /// (respecting the backoff clock), send, await. Any failure drops the
    /// connection — after an error the stream position is unknowable, so a
    /// fresh connection is the only safe continuation.
    fn call(
        &self,
        config: &RouterConfig,
        make: impl FnOnce(u64) -> Request,
    ) -> Result<ResponseBody, (ErrorCode, String)> {
        self.metrics.in_flight.add(1);
        self.metrics.calls_total.inc();
        let result = self.call_locked(config, make);
        if result.is_err() {
            self.metrics.errors_total.inc();
        }
        self.metrics.in_flight.add(-1);
        result
    }

    /// The body of [`call`](Self::call), split out so the in-flight gauge
    /// and error counter are maintained on every exit path.
    fn call_locked(
        &self,
        config: &RouterConfig,
        make: impl FnOnce(u64) -> Request,
    ) -> Result<ResponseBody, (ErrorCode, String)> {
        let mut state = self.state.lock().expect("link lock");
        if state.client.is_none() {
            let now = Instant::now();
            if now < state.next_attempt {
                return Err((
                    ErrorCode::Unavailable,
                    format!("worker {} is backing off after a failure", self.addr),
                ));
            }
            match ServeClient::connect_within(self.addr, config.connect_timeout) {
                Ok(client) => {
                    client.set_read_timeout(Some(config.worker_timeout)).ok();
                    state.client = Some(client);
                    self.metrics.reconnects_total.inc();
                }
                Err(e) => {
                    state.next_attempt = now + state.backoff;
                    state.backoff = (state.backoff * 2).min(config.backoff_max);
                    self.metrics
                        .backoff_micros
                        .set(state.backoff.as_micros() as i64);
                    return Err((
                        ErrorCode::Unavailable,
                        format!("worker {} is unreachable: {e}", self.addr),
                    ));
                }
            }
        }
        let client = state.client.as_mut().expect("client just ensured");
        let request = make(client.fresh_id());
        let t0 = Instant::now();
        let result = client.call(&request);
        let elapsed = t0.elapsed();
        self.metrics.call_micros.observe_micros(elapsed);
        match result {
            Ok(response) => {
                state.backoff = config.backoff_initial;
                self.metrics
                    .backoff_micros
                    .set(state.backoff.as_micros() as i64);
                Ok(response.body)
            }
            Err(e) => {
                if elapsed >= config.worker_timeout {
                    self.metrics.timeouts_total.inc();
                }
                state.client = None;
                state.next_attempt = Instant::now() + state.backoff;
                state.backoff = (state.backoff * 2).min(config.backoff_max);
                self.metrics
                    .backoff_micros
                    .set(state.backoff.as_micros() as i64);
                Err((
                    ErrorCode::Unavailable,
                    format!("worker {} failed mid-call: {e}", self.addr),
                ))
            }
        }
    }
}

struct Inner {
    workers: Vec<WorkerLink>,
    indexes: Vec<RouterIndex>,
    config: RouterConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    queries: AtomicU64,
    worker_errors: AtomicU64,
    connections: AtomicU64,
    registry: MetricsRegistry,
    queries_total: Counter,
    connections_total: Counter,
}

impl Inner {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        match stream.try_clone() {
            Ok(clone) => {
                self.conns.lock().expect("conns lock").insert(id, clone);
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().expect("conns lock").remove(&id);
    }

    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(match target {
                    SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(target);
            for conn in self.conns.lock().expect("conns lock").values() {
                let _ = conn.shutdown(Shutdown::Read);
            }
        }
    }

    /// Fans one query out to every worker and merges, or explains why not.
    /// Worker order is shard order: worker `w`'s local id `i` is global id
    /// `map.to_global(w, i)`.
    fn route_query(
        &self,
        index: &str,
        params: &hydra::SearchParams,
        query: &[f32],
    ) -> ResponseBody {
        let Some(rix) = self.indexes.iter().find(|rix| rix.info.name == index) else {
            return ResponseBody::Error {
                code: ErrorCode::UnknownIndex,
                message: format!("no index named {index:?} is served"),
            };
        };
        let call_worker = |w: usize| -> Result<Vec<Neighbor>, (ErrorCode, String)> {
            let link = &self.workers[w];
            let body = link.call(&self.config, |request_id| Request::Query {
                request_id,
                index: index.to_string(),
                params: *params,
                query: query.to_vec(),
            })?;
            match body {
                ResponseBody::Answer { mut neighbors } => {
                    // A decodable answer can still carry garbage ids (a
                    // buggy or corrupted worker); remapping one would
                    // fabricate a neighbor some *other* worker owns.
                    if neighbors.iter().any(|n| n.index >= rix.map.shard_len(w)) {
                        self.workers[w].poison(&self.config);
                        return Err((
                            ErrorCode::Unavailable,
                            format!(
                                "worker {} answered an out-of-range series id",
                                link.addr
                            ),
                        ));
                    }
                    for n in &mut neighbors {
                        n.index = rix.map.to_global(w, n.index);
                    }
                    Ok(neighbors)
                }
                ResponseBody::Error { code, message } => {
                    Err((code, format!("worker {}: {message}", link.addr)))
                }
                other => {
                    self.workers[w].poison(&self.config);
                    Err((
                        ErrorCode::Unavailable,
                        format!("worker {} answered a query with {other:?}", link.addr),
                    ))
                }
            }
        };
        let results: Vec<_> = if self.workers.len() == 1 {
            vec![call_worker(0)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.workers.len())
                    .map(|w| {
                        let call_worker = &call_worker;
                        scope.spawn(move || call_worker(w))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };
        let mut answers = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(neighbors) => answers.push(neighbors),
                Err((code, message)) => {
                    self.worker_errors.fetch_add(1, Ordering::Relaxed);
                    return ResponseBody::Error { code, message };
                }
            }
        }
        ResponseBody::Answer {
            neighbors: merge_top_k(params.k, &answers),
        }
    }
}

/// A running router. Obtained from [`Router::spawn`]; dropping the handle
/// does **not** stop it — call [`RouterHandle::shutdown`] (or send a
/// shutdown frame) and then [`RouterHandle::join`].
pub struct RouterHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: std::thread::JoinHandle<()>,
}

impl RouterHandle {
    /// The address the router actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics registry — the same one a stats frame scrapes
    /// over the wire, exposed for in-process inspection in tests.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Stops the router itself. Workers are **not** told to stop — only a
    /// client's shutdown frame is forwarded to them (that is the whole-
    /// deployment shutdown path the CI smoke uses).
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Waits for the acceptor and every client connection to finish, then
    /// reports the run's counters.
    ///
    /// # Panics
    /// Propagates a panic of the acceptor thread (not expected).
    pub fn join(self) -> RouterStats {
        self.acceptor.join().expect("acceptor panicked");
        RouterStats {
            queries: self.inner.queries.load(Ordering::Relaxed),
            worker_errors: self.inner.worker_errors.load(Ordering::Relaxed),
            connections: self.inner.connections.load(Ordering::Relaxed),
        }
    }
}

/// The scale-out router: connects to the workers, validates their
/// listings agree, and serves the merged zoo.
pub struct Router;

impl Router {
    /// Connects to `workers` (shard order — worker `w` must hold shard `w`
    /// of every index), validates that every worker serves the same index
    /// names with the same method and series length, and binds `addr` for
    /// clients.
    ///
    /// # Errors
    /// An [`std::io::Error`] if `workers` is empty, a worker cannot be
    /// reached within [`RouterConfig::boot_timeout`], the workers'
    /// listings disagree (serving a zoo where shard 1 of `rand256-dstree`
    /// is missing would answer every query wrongly), the shard sizes are
    /// not a valid split under [`RouterConfig::scheme`], or the listener
    /// cannot bind.
    pub fn spawn<A: ToSocketAddrs>(
        workers: &[SocketAddr],
        addr: A,
        config: RouterConfig,
    ) -> std::io::Result<RouterHandle> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        if workers.is_empty() {
            return Err(invalid("refusing to route to zero workers".into()));
        }
        // Boot: list every worker's zoo, with the boot clients kept as the
        // initial link connections.
        let registry = MetricsRegistry::new();
        let mut links = Vec::with_capacity(workers.len());
        let mut listings: Vec<Vec<IndexInfo>> = Vec::with_capacity(workers.len());
        for &worker in workers {
            let mut client = ServeClient::connect_with_retry(worker, config.boot_timeout)?;
            client.set_read_timeout(Some(config.worker_timeout)).ok();
            let mut listing = client
                .list_indexes()
                .map_err(|e| invalid(format!("worker {worker} listing failed: {e}")))?;
            listing.sort_by(|a, b| a.name.cmp(&b.name));
            listings.push(listing);
            let metrics = WorkerMetrics::new(&registry, worker);
            metrics
                .backoff_micros
                .set(config.backoff_initial.as_micros() as i64);
            links.push(WorkerLink {
                addr: worker,
                state: Mutex::new(LinkState {
                    client: Some(client),
                    backoff: config.backoff_initial,
                    next_attempt: Instant::now(),
                }),
                metrics,
            });
        }
        // Validate agreement and build the merged view.
        let mut indexes = Vec::with_capacity(listings[0].len());
        for (listing, &worker) in listings.iter().zip(workers).skip(1) {
            if listing.len() != listings[0].len() {
                return Err(invalid(format!(
                    "worker {worker} serves {} indexes but worker {} serves {} — every \
                     worker must hold one shard of the same zoo",
                    listing.len(),
                    workers[0],
                    listings[0].len()
                )));
            }
        }
        for (i, first) in listings[0].iter().enumerate() {
            let mut lens = Vec::with_capacity(workers.len());
            for (listing, &worker) in listings.iter().zip(workers) {
                let info = &listing[i];
                if info.name != first.name
                    || info.method != first.method
                    || info.series_len != first.series_len
                    || info.capabilities() != first.capabilities()
                {
                    return Err(invalid(format!(
                        "worker {worker} serves {:?} ({} over series of length {}) where \
                         worker {} serves {:?} ({} over series of length {})",
                        info.name,
                        info.method,
                        info.series_len,
                        workers[0],
                        first.name,
                        first.method,
                        first.series_len
                    )));
                }
                lens.push(info.num_series as usize);
            }
            let map = ShardMap::from_lens(config.scheme, &lens).map_err(|e| {
                invalid(format!(
                    "shard sizes {lens:?} of index {:?} are not a valid {} split: {e}",
                    first.name,
                    config.scheme.label()
                ))
            })?;
            let mut info = first.clone();
            info.num_series = map.total() as u64;
            indexes.push(RouterIndex { info, map });
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            workers: links,
            indexes,
            config,
            addr,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            worker_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            queries_total: registry.counter("hydra_router_queries_total", &[]),
            connections_total: registry.counter("hydra_router_connections_total", &[]),
            registry,
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, &listener))
        };
        Ok(RouterHandle {
            addr,
            inner,
            acceptor,
        })
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        conns = conns
            .into_iter()
            .filter_map(|handle| {
                if handle.is_finished() {
                    let _ = handle.join();
                    None
                } else {
                    Some(handle)
                }
            })
            .collect();
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        inner.connections.fetch_add(1, Ordering::Relaxed);
        inner.connections_total.inc();
        if let Some(timeout) = inner.config.write_timeout.filter(|t| !t.is_zero()) {
            let _ = stream.set_write_timeout(Some(timeout));
        }
        let conn_id = inner.register(&stream);
        let inner = Arc::clone(inner);
        conns.push(std::thread::spawn(move || {
            connection_loop(&inner, stream, conn_id)
        }));
    }
    for conn in conns {
        let _ = conn.join();
    }
}

/// One client connection: requests are handled in order, each fanning out
/// to all workers before the next is read. (Cross-*connection* queries
/// still overlap — each connection has its own thread — and the workers
/// run their own micro-batchers.)
fn connection_loop(inner: &Arc<Inner>, stream: TcpStream, conn_id: u64) {
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            inner.deregister(conn_id);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut respond = |response: Response| {
        let frame = response.encode();
        write_half
            .write_all(&frame)
            .and_then(|()| write_half.flush())
            .is_ok()
    };
    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(Request::Query {
                request_id,
                index,
                params,
                query,
            })) => {
                inner.queries.fetch_add(1, Ordering::Relaxed);
                inner.queries_total.inc();
                let body = inner.route_query(&index, &params, &query);
                if !respond(Response { request_id, body }) {
                    break;
                }
            }
            Ok(Some(Request::ListIndexes { request_id })) => {
                let indexes = inner.indexes.iter().map(|rix| rix.info.clone()).collect();
                if !respond(Response {
                    request_id,
                    body: ResponseBody::Indexes { indexes },
                }) {
                    break;
                }
            }
            Ok(Some(Request::Reload { request_id })) => {
                // Fan the reload out to every worker, all-or-nothing like a
                // query: a zoo where only some shards reloaded would merge
                // answers across snapshot generations. The acked epoch is
                // the minimum across workers — the number of reloads every
                // worker has completed at least.
                let mut epochs = Vec::with_capacity(inner.workers.len());
                let mut failure = None;
                for link in &inner.workers {
                    match link.call(&inner.config, |request_id| Request::Reload { request_id }) {
                        Ok(ResponseBody::ReloadAck { epoch }) => epochs.push(epoch),
                        Ok(ResponseBody::Error { code, message }) => {
                            failure = Some((code, format!("worker {}: {message}", link.addr)));
                            break;
                        }
                        Ok(other) => {
                            link.poison(&inner.config);
                            failure = Some((
                                ErrorCode::Unavailable,
                                format!("worker {} answered a reload with {other:?}", link.addr),
                            ));
                            break;
                        }
                        Err(err) => {
                            failure = Some(err);
                            break;
                        }
                    }
                }
                let body = match failure {
                    None => ResponseBody::ReloadAck {
                        epoch: epochs.iter().copied().min().unwrap_or(0),
                    },
                    Some((code, message)) => {
                        inner.worker_errors.fetch_add(1, Ordering::Relaxed);
                        ResponseBody::Error { code, message }
                    }
                };
                if !respond(Response { request_id, body }) {
                    break;
                }
            }
            Ok(Some(Request::Stats { request_id })) => {
                // The router answers with its *own* registry — per-worker
                // link health and fan-out counters. Scraping a worker's
                // query/stage metrics means scraping that worker directly;
                // merging texts here would conflate two processes' clocks.
                let text = inner.registry.render();
                if !respond(Response {
                    request_id,
                    body: ResponseBody::Stats { text },
                }) {
                    break;
                }
            }
            Ok(Some(Request::Shutdown { request_id })) => {
                // Whole-deployment shutdown: acknowledge, pass the frame on
                // to every reachable worker (best effort — a dead worker
                // has nothing to stop), then stop routing.
                let _ = respond(Response {
                    request_id,
                    body: ResponseBody::ShutdownAck,
                });
                for link in &inner.workers {
                    let _ = link.call(&inner.config, |request_id| Request::Shutdown {
                        request_id,
                    });
                }
                inner.begin_shutdown();
                break;
            }
            Err(e) => {
                // Same contract as the server: one typed error on id 0,
                // then hang up this connection only.
                let _ = respond(Response {
                    request_id: 0,
                    body: ResponseBody::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                });
                break;
            }
        }
    }
    inner.deregister(conn_id);
    let _ = reader.into_inner().shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServedIndex, Server, ServerConfig, ServerHandle};
    use hydra::core::{Capabilities, Representation};
    use hydra::{AnnIndex, QueryStats, Result, SearchParams, SearchResult};

    /// A worker-side stand-in: `num_series` ids, neighbor distance is
    /// `base + local id`, so merged global answers are fully predictable.
    struct Ramp {
        num_series: usize,
        base: f32,
    }

    impl AnnIndex for Ramp {
        fn name(&self) -> &'static str {
            "ramp"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: false,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                streaming_insert: false,
                representation: Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            self.num_series
        }
        fn series_len(&self) -> usize {
            2
        }
        fn memory_footprint(&self) -> usize {
            0
        }
        fn search(&self, _query: &[f32], params: &SearchParams) -> Result<SearchResult> {
            let neighbors = (0..self.num_series.min(params.k))
                .map(|i| Neighbor::new(i, self.base + i as f32))
                .collect();
            Ok(SearchResult::new(neighbors, QueryStats::new()))
        }
    }

    fn ramp_worker(name: &str, num_series: usize, base: f32) -> ServerHandle {
        Server::spawn(
            vec![ServedIndex {
                name: name.into(),
                index: Box::new(Ramp { num_series, base }),
            }],
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap()
    }

    fn fast_config() -> RouterConfig {
        RouterConfig {
            worker_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(200),
            boot_timeout: Duration::from_secs(5),
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn routes_and_merges_across_two_workers() {
        // Worker 0: ids 0..3 at distances 10,11,12. Worker 1: ids 0..2 at
        // distances 5,6 → global 3,4. Merged top-3: (5, g3), (6, g4), (10, g0).
        let w0 = ramp_worker("ramp", 3, 10.0);
        let w1 = ramp_worker("ramp", 2, 5.0);
        let router = Router::spawn(
            &[w0.local_addr(), w1.local_addr()],
            "127.0.0.1:0",
            fast_config(),
        )
        .unwrap();
        let mut client = ServeClient::connect(router.local_addr()).unwrap();
        let infos = client.list_indexes().unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "ramp");
        assert_eq!(infos[0].num_series, 5, "merged listing sums the shards");
        let response = client
            .call(&Request::Query {
                request_id: 1,
                index: "ramp".into(),
                params: SearchParams::exact(3),
                query: vec![0.0, 0.0],
            })
            .unwrap();
        match response.body {
            ResponseBody::Answer { neighbors } => {
                assert_eq!(
                    neighbors,
                    vec![
                        Neighbor::new(3, 5.0),
                        Neighbor::new(4, 6.0),
                        Neighbor::new(0, 10.0),
                    ]
                );
            }
            other => panic!("expected an answer, got {other:?}"),
        }
        // Unknown index is the router's own typed error, no worker calls.
        let response = client
            .call(&Request::Query {
                request_id: 2,
                index: "nope".into(),
                params: SearchParams::exact(1),
                query: vec![0.0, 0.0],
            })
            .unwrap();
        assert!(matches!(
            response.body,
            ResponseBody::Error {
                code: ErrorCode::UnknownIndex,
                ..
            }
        ));
        // Client shutdown reaches the workers through the router.
        client.shutdown().unwrap();
        drop(client);
        let stats = router.join();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.worker_errors, 0);
        w0.join();
        w1.join();
    }

    #[test]
    fn boot_rejects_disagreeing_workers_and_zero_workers() {
        assert!(Router::spawn(&[], "127.0.0.1:0", fast_config()).is_err());
        let w0 = ramp_worker("ramp", 3, 0.0);
        let w1 = ramp_worker("other", 3, 0.0);
        let err = Router::spawn(
            &[w0.local_addr(), w1.local_addr()],
            "127.0.0.1:0",
            fast_config(),
        );
        assert!(err.is_err(), "mismatched index names must fail the boot");
        w0.shutdown();
        w1.shutdown();
        w0.join();
        w1.join();
    }

    #[test]
    fn malformed_client_frames_hang_up_that_connection_only() {
        let w0 = ramp_worker("ramp", 2, 0.0);
        let router =
            Router::spawn(&[w0.local_addr()], "127.0.0.1:0", fast_config()).unwrap();
        let mut bad = TcpStream::connect(router.local_addr()).unwrap();
        bad.write_all(b"not a frame at all").unwrap();
        bad.flush().unwrap();
        let mut reader = BufReader::new(bad.try_clone().unwrap());
        let resp = crate::protocol::read_response(&mut reader).unwrap().unwrap();
        assert_eq!(resp.request_id, 0);
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
        assert!(crate::protocol::read_response(&mut reader).unwrap().is_none());
        // A fresh connection still routes.
        let mut client = ServeClient::connect(router.local_addr()).unwrap();
        assert_eq!(client.list_indexes().unwrap().len(), 1);
        client.shutdown().unwrap();
        drop(client);
        router.join();
        w0.join();
    }
}
