//! The `hydra-serve` binary: boot the index zoo from a snapshot directory
//! and serve it until a shutdown frame arrives — standalone, as one shard
//! worker of a scale-out deployment, or as the router in front of the
//! workers.
//!
//! ```text
//! # standalone server, or one shard worker (the same thing: a worker is
//! # just a server booted from one shard's snapshot directory)
//! hydra-serve --snapshots DIR [--addr 127.0.0.1:7878]
//!             [--shard-role worker]
//!             [--storage on-disk|in-memory] [--seed N]
//!             [--pool-pages N] [--out-of-core] [--page-codec u8|f16|f32]
//!             [--batch-window-ms N] [--max-batch N]
//!             [--slow-query-ms N]
//!
//! # the router: no snapshots of its own, speaks the same protocol to
//! # clients and fans each query out to the workers (in shard order)
//! hydra-serve --shard-role router --workers HOST:PORT,HOST:PORT,...
//!             [--addr 127.0.0.1:7878]
//!             [--worker-timeout-ms 30000] [--worker-connect-timeout-ms 120000]
//!             [--shard-scheme contiguous|strided]
//! ```
//!
//! `--storage` and `--seed` select the `hydra::standard_registry`
//! configuration the snapshots must fingerprint-match: use `on-disk`/`5`
//! for `fig4_ondisk --save-index` directories (the defaults) and
//! `in-memory`/`3` for `fig3_inmemory` ones. A mismatch fails at boot with
//! the offending file named — the server never guesses. (The *storage*
//! part of a configuration — page size, pool, backing — is not
//! fingerprinted; it only shapes I/O economics.)
//!
//! `--out-of-core` serves raw series from the snapshot files themselves
//! through a real page cache instead of holding them resident, and
//! `--pool-pages N` bounds that cache — together they let a boot serve
//! collections whose raw series far exceed the configured pool. Answers
//! are byte-identical to a resident boot.
//!
//! `--page-codec u8|f16|f32` (default `f32`) serves the booted indexes'
//! raw-series tier quantized: pages hold u8 or f16 codes with per-page
//! min/scale headers, candidate pruning runs fused decode+distance
//! kernels, and every returned distance is refined against the exact f32
//! series — answers stay byte-identical while each page read moves ~4×
//! (`u8`) or ~2× (`f16`) fewer bytes. The coded traffic is scrapeable as
//! the `hydra_store` gauge with the `compressed_bytes_read` label.
//!
//! In router mode, `--workers` lists the shard workers *in shard order*
//! (worker `w` must serve shard `w` of every index — the per-shard
//! subdirectories a `fig* --save-index DIR --shards S` run writes), and
//! `--shard-scheme` must name the scheme that run partitioned with.
//! `--worker-timeout-ms` bounds every call to a worker; a worker that dies
//! or stalls turns its in-flight queries into typed `Unavailable` error
//! responses, never a hang, and is reconnected with exponential backoff.
//!
//! `--slow-query-ms N` (worker role, off by default) logs one structured
//! stderr line per query whose served latency — queue wait plus its
//! amortized share of the batched search plus response encoding — reaches
//! `N` milliseconds, with a per-stage breakdown. Both roles answer stats
//! frames with a Prometheus text scrape of their registry (see the
//! `hydra_stat` binary in `hydra-bench`).
//!
//! All diagnostics go to stderr; stdout is never written, so the binary
//! composes with shell pipelines the same way the figure binaries do.

use std::time::Duration;

use hydra::PartitionScheme;
use hydra_serve::{boot_from_dir_with, Router, RouterConfig, Server, ServerConfig};

/// Heap-tracking allocator: the price is two relaxed atomics per
/// allocation, and the payoff is the `hydra_boot_peak_heap_bytes` gauge —
/// the measurement that keeps the out-of-core boot honest about *never*
/// materializing a dataset (CI pins it below the dataset size).
#[global_allocator]
static ALLOC: hydra_obs::TrackingAllocator = hydra_obs::TrackingAllocator;

/// Which half of a scale-out deployment this process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// A plain server (the default) — also exactly what a shard worker is.
    Worker,
    /// The fan-out/merge router in front of shard workers.
    Router,
}

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    role: Role,
    snapshots: std::path::PathBuf,
    addr: String,
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    out_of_core: bool,
    page_codec: hydra::PageCodec,
    backing_io: hydra::FileIoMode,
    batch_window: Duration,
    max_batch: usize,
    slow_query: Option<Duration>,
    workers: Vec<String>,
    worker_timeout: Duration,
    worker_connect_timeout: Duration,
    scheme: PartitionScheme,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            role: Role::Worker,
            snapshots: std::path::PathBuf::new(),
            addr: "127.0.0.1:7878".into(),
            in_memory: false,
            seed: 5,
            pool_pages: None,
            out_of_core: false,
            page_codec: hydra::PageCodec::F32,
            backing_io: hydra::FileIoMode::Pread,
            batch_window: Duration::from_millis(1),
            max_batch: 64,
            slow_query: None,
            workers: Vec::new(),
            worker_timeout: Duration::from_secs(30),
            worker_connect_timeout: Duration::from_secs(120),
            scheme: PartitionScheme::Contiguous,
        }
    }
}

/// Strict flag parsing in the house style (scaffolding shared with
/// `serve_client` via [`hydra_serve::cli`]): both `--flag VALUE` and
/// `--flag=VALUE` spellings, and anything unusable — a typo, a bad value,
/// a duplicate, a flag that does not belong to the chosen role — is an
/// error, never a silent fallback.
fn parse_args(args: &[String]) -> Result<Args, String> {
    use hydra_serve::cli::{once, value_of as cli_value_of};
    let mut out = Args::default();
    let mut seen: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &'static str| cli_value_of(arg, name, &mut it);
        if let Some(value) = value_of("--snapshots") {
            once("--snapshots", &mut seen)?;
            let value = value?;
            if value.is_empty() {
                return Err("--snapshots expects a directory path".into());
            }
            out.snapshots = value.into();
        } else if let Some(value) = value_of("--addr") {
            once("--addr", &mut seen)?;
            out.addr = value?;
        } else if let Some(value) = value_of("--shard-role") {
            once("--shard-role", &mut seen)?;
            out.role = match value?.as_str() {
                "worker" => Role::Worker,
                "router" => Role::Router,
                other => {
                    return Err(format!(
                        "--shard-role expects worker or router, got {other:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--workers") {
            once("--workers", &mut seen)?;
            let value = value?;
            out.workers = value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if out.workers.is_empty() {
                return Err("--workers expects a comma-separated list of HOST:PORT".into());
            }
        } else if let Some(value) = value_of("--worker-timeout-ms") {
            once("--worker-timeout-ms", &mut seen)?;
            let value = value?;
            out.worker_timeout = match value.parse::<u64>() {
                Ok(ms) if ms > 0 => Duration::from_millis(ms),
                _ => {
                    return Err(format!(
                        "--worker-timeout-ms expects a positive integer, got {value:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--worker-connect-timeout-ms") {
            once("--worker-connect-timeout-ms", &mut seen)?;
            let value = value?;
            out.worker_connect_timeout = match value.parse::<u64>() {
                Ok(ms) if ms > 0 => Duration::from_millis(ms),
                _ => {
                    return Err(format!(
                        "--worker-connect-timeout-ms expects a positive integer, got {value:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--shard-scheme") {
            once("--shard-scheme", &mut seen)?;
            let value = value?;
            out.scheme = PartitionScheme::parse(&value).ok_or_else(|| {
                format!("--shard-scheme expects contiguous or strided, got {value:?}")
            })?;
        } else if let Some(value) = value_of("--storage") {
            once("--storage", &mut seen)?;
            out.in_memory = match value?.as_str() {
                "in-memory" => true,
                "on-disk" => false,
                other => {
                    return Err(format!(
                        "--storage expects in-memory or on-disk, got {other:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--seed") {
            once("--seed", &mut seen)?;
            let value = value?;
            out.seed = value
                .parse()
                .map_err(|_| format!("--seed expects an integer, got {value:?}"))?;
        } else if let Some(value) = value_of("--pool-pages") {
            once("--pool-pages", &mut seen)?;
            let value = value?;
            out.pool_pages = Some(value.parse::<usize>().map_err(|_| {
                format!("--pool-pages expects a non-negative integer, got {value:?}")
            })?);
        } else if arg == "--out-of-core" {
            once("--out-of-core", &mut seen)?;
            out.out_of_core = true;
        } else if let Some(value) = value_of("--page-codec") {
            once("--page-codec", &mut seen)?;
            let value = value?;
            out.page_codec = hydra::PageCodec::parse(&value)
                .map_err(|_| format!("--page-codec expects u8, f16 or f32, got {value:?}"))?;
        } else if let Some(value) = value_of("--backing") {
            once("--backing", &mut seen)?;
            let value = value?;
            out.backing_io = hydra::FileIoMode::parse(&value)
                .ok_or_else(|| format!("--backing expects pread or mmap, got {value:?}"))?;
        } else if let Some(value) = value_of("--batch-window-ms") {
            once("--batch-window-ms", &mut seen)?;
            let value = value?;
            let ms: u64 = value
                .parse()
                .map_err(|_| format!("--batch-window-ms expects an integer, got {value:?}"))?;
            out.batch_window = Duration::from_millis(ms);
        } else if let Some(value) = value_of("--max-batch") {
            once("--max-batch", &mut seen)?;
            let value = value?;
            out.max_batch = match value.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return Err(format!("--max-batch expects a positive integer, got {value:?}")),
            };
        } else if let Some(value) = value_of("--slow-query-ms") {
            once("--slow-query-ms", &mut seen)?;
            let value = value?;
            out.slow_query = match value.parse::<u64>() {
                Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
                _ => {
                    return Err(format!(
                        "--slow-query-ms expects a positive integer, got {value:?}"
                    ))
                }
            };
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (accepted: --snapshots DIR, --addr HOST:PORT, \
                 --shard-role worker|router, --workers HOST:PORT,..., --worker-timeout-ms N, \
                 --worker-connect-timeout-ms N, --shard-scheme contiguous|strided, \
                 --storage on-disk|in-memory, --seed N, --pool-pages N, --out-of-core, \
                 --page-codec u8|f16|f32, --backing pread|mmap, --batch-window-ms N, \
                 --max-batch N, --slow-query-ms N)"
            ));
        }
    }
    // Role/flag agreement: a router serves no snapshots of its own, a
    // worker routes to no one. A flag for the other role is a
    // misunderstanding of the topology, so it is an error, not ignored.
    match out.role {
        Role::Router => {
            if !seen.contains(&"--workers") {
                return Err("--shard-role router requires --workers HOST:PORT,...".into());
            }
            for flag in [
                "--snapshots",
                "--storage",
                "--seed",
                "--pool-pages",
                "--out-of-core",
                "--page-codec",
                "--backing",
                "--batch-window-ms",
                "--max-batch",
                "--slow-query-ms",
            ] {
                if seen.contains(&flag) {
                    return Err(format!(
                        "{flag} belongs to the worker role (the router holds no snapshots \
                         and does no batching of its own)"
                    ));
                }
            }
        }
        Role::Worker => {
            if !seen.contains(&"--snapshots") {
                return Err("--snapshots DIR is required".into());
            }
            for flag in [
                "--workers",
                "--worker-timeout-ms",
                "--worker-connect-timeout-ms",
                "--shard-scheme",
            ] {
                if seen.contains(&flag) {
                    return Err(format!("{flag} requires --shard-role router"));
                }
            }
        }
    }
    Ok(out)
}

/// Runs the router role: resolve the worker list, boot against the
/// workers' listings, serve until shutdown.
fn run_router(args: &Args) {
    use std::net::ToSocketAddrs;
    let mut workers = Vec::with_capacity(args.workers.len());
    for spec in &args.workers {
        match spec.to_socket_addrs().ok().and_then(|mut it| it.next()) {
            Some(addr) => workers.push(addr),
            None => {
                eprintln!("error: cannot resolve worker address {spec:?}");
                std::process::exit(2);
            }
        }
    }
    let config = RouterConfig {
        worker_timeout: args.worker_timeout,
        boot_timeout: args.worker_connect_timeout,
        scheme: args.scheme,
        ..RouterConfig::default()
    };
    let handle = match Router::spawn(&workers, args.addr.as_str(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: router boot failed: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "hydra-serve: routing on {} to {} workers ({:?} shards, {:?} worker timeout)",
        handle.local_addr(),
        workers.len(),
        args.scheme,
        args.worker_timeout
    );
    let stats = handle.join();
    eprintln!(
        "hydra-serve: router shutdown after {} queries ({} worker errors, {} connections)",
        stats.queries, stats.worker_errors, stats.connections
    );
}

/// Publishes one boot's per-index load telemetry: how long each snapshot
/// took to load (including journal replay) and whether a journal was
/// replayed. Gauges, not counters — a reload overwrites them with the
/// latest boot's values.
fn set_boot_gauges(metrics: &hydra_serve::MetricsRegistry, loads: &[hydra_serve::IndexLoad]) {
    for load in loads {
        let labels: &[(&str, &str)] = &[("index", load.name.as_str())];
        metrics
            .gauge("hydra_index_load_micros", labels)
            .set(load.elapsed.as_micros() as i64);
        metrics
            .gauge("hydra_index_journaled", labels)
            .set(load.journaled as i64);
    }
}

/// Runs the worker (= plain server) role: boot snapshots, serve.
fn run_worker(args: &Args) {
    let registry = hydra::standard_registry_io(
        args.in_memory,
        args.seed,
        args.pool_pages,
        args.page_codec,
        args.backing_io,
    );
    let options = hydra_serve::BootOptions {
        file_backed: args.out_of_core,
    };
    hydra_obs::reset_heap_peak();
    let report = match boot_from_dir_with(&args.snapshots, &registry, options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: boot failed: {e}");
            std::process::exit(2);
        }
    };
    let boot_peak_heap = hydra_obs::heap_peak_bytes();
    if args.out_of_core {
        eprintln!(
            "hydra-serve: serving out-of-core (raw series file-backed via {}{})",
            args.backing_io.name(),
            match args.pool_pages {
                Some(p) => format!(", pool {p} pages"),
                None => String::new(),
            }
        );
        eprintln!("hydra-serve: boot peak heap {boot_peak_heap} bytes");
    }
    if args.page_codec != hydra::PageCodec::F32 {
        eprintln!(
            "hydra-serve: raw-series tier quantized ({} pages, exact-refined answers)",
            args.page_codec.name()
        );
    }
    for (name, n, len) in &report.datasets {
        eprintln!("hydra-serve: dataset {name}: {n} series of length {len}");
    }
    for served in &report.indexes {
        eprintln!(
            "hydra-serve: serving {} ({}, {} series)",
            served.name,
            served.index.name(),
            served.index.num_series()
        );
    }
    for file in &report.skipped {
        eprintln!("hydra-serve: skipping {} (not an index of any dataset)", file.display());
    }
    let config = ServerConfig {
        batch_window: args.batch_window,
        max_batch: args.max_batch,
        slow_query: args.slow_query,
        ..ServerConfig::default()
    };
    let metrics = hydra_serve::MetricsRegistry::new();
    set_boot_gauges(&metrics, &report.loads);
    // The lazy-boot acceptance gauge: peak heap bytes between boot start
    // and serving. Out-of-core this must stay far below the dataset's
    // raw-series footprint — CI scrapes and pins it.
    metrics
        .gauge("hydra_boot_peak_heap_bytes", &[])
        .set(boot_peak_heap as i64);
    // A reload frame re-runs exactly this boot (same directory, same
    // registry, same backing) and swaps the zoo in as a fresh epoch —
    // picking up snapshots rewritten by an ingesting harness run. The
    // reload's own load telemetry lands in the same scrapeable registry.
    let snapshots = args.snapshots.clone();
    let reload_metrics = metrics.clone();
    let reloader: hydra_serve::Reloader = Box::new(move || {
        boot_from_dir_with(&snapshots, &registry, options)
            .map(|report| {
                set_boot_gauges(&reload_metrics, &report.loads);
                report.indexes
            })
            .map_err(|e| e.to_string())
    });
    let handle = match Server::spawn_with_metrics(
        report.indexes,
        args.addr.as_str(),
        config,
        Some(reloader),
        metrics,
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    eprintln!(
        "hydra-serve: listening on {} (batch window {:?}, max batch {})",
        handle.local_addr(),
        config.batch_window,
        config.max_batch
    );
    let stats = handle.join();
    eprintln!(
        "hydra-serve: clean shutdown after {} queries in {} batch calls over {} ticks ({} connections, {} reloads)",
        stats.queries, stats.batch_calls, stats.ticks, stats.connections, stats.reloads
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    match args.role {
        Role::Router => run_router(&args),
        Role::Worker => run_worker(&args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_accepts_both_spellings_and_rejects_garbage() {
        let a = parse_args(&args(&["--snapshots", "/snaps"])).unwrap();
        assert_eq!(a.snapshots, std::path::Path::new("/snaps"));
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert!(!a.in_memory);
        assert_eq!(a.seed, 5);
        assert_eq!(a.role, Role::Worker);
        let a = parse_args(&args(&[
            "--snapshots=/s",
            "--addr=0.0.0.0:9000",
            "--storage=in-memory",
            "--seed=4",
            "--batch-window-ms=5",
            "--max-batch=128",
        ]))
        .unwrap();
        assert!(a.in_memory);
        assert_eq!(a.seed, 4);
        assert_eq!(a.batch_window, Duration::from_millis(5));
        assert_eq!(a.max_batch, 128);
        assert_eq!(a.addr, "0.0.0.0:9000");
        // Required, duplicate, unknown, malformed.
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--snapshots"])).is_err());
        assert!(parse_args(&args(&["--snapshots="])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--snapshots", "/b"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--storage", "floppy"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--seed", "many"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--max-batch", "0"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["extra"])).is_err());
        // Out-of-core serving flags.
        let a = parse_args(&args(&[
            "--snapshots=/s",
            "--out-of-core",
            "--pool-pages=4",
        ]))
        .unwrap();
        assert!(a.out_of_core);
        assert_eq!(a.pool_pages, Some(4));
        let a = parse_args(&args(&["--snapshots", "/s"])).unwrap();
        assert!(!a.out_of_core);
        assert_eq!(a.pool_pages, None);
        assert!(parse_args(&args(&["--snapshots", "/s", "--pool-pages", "lots"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--pool-pages"])).is_err());
        assert!(parse_args(&args(&[
            "--snapshots",
            "/s",
            "--out-of-core",
            "--out-of-core"
        ]))
        .is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--out-of-core=yes"])).is_err());
        // Page-codec flag: f32 by default, strict values, worker-only.
        let a = parse_args(&args(&["--snapshots", "/s"])).unwrap();
        assert_eq!(a.page_codec, hydra::PageCodec::F32);
        let a = parse_args(&args(&["--snapshots=/s", "--page-codec=u8"])).unwrap();
        assert_eq!(a.page_codec, hydra::PageCodec::U8);
        let a = parse_args(&args(&["--snapshots", "/s", "--page-codec", "f16"])).unwrap();
        assert_eq!(a.page_codec, hydra::PageCodec::F16);
        assert!(parse_args(&args(&["--snapshots", "/s", "--page-codec", "mp3"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--page-codec"])).is_err());
        assert!(parse_args(&args(&[
            "--snapshots=/s",
            "--page-codec=u8",
            "--page-codec=u8"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--page-codec=u8"
        ]))
        .is_err());
        // Slow-query logging: off by default, positive ms only, worker-only.
        let a = parse_args(&args(&["--snapshots", "/s"])).unwrap();
        assert_eq!(a.slow_query, None);
        let a = parse_args(&args(&["--snapshots=/s", "--slow-query-ms=250"])).unwrap();
        assert_eq!(a.slow_query, Some(Duration::from_millis(250)));
        assert!(parse_args(&args(&["--snapshots", "/s", "--slow-query-ms", "0"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--slow-query-ms", "soon"])).is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--slow-query-ms=100"
        ]))
        .is_err());
    }

    #[test]
    fn parser_understands_the_shard_roles() {
        // Worker role is the default and an explicit no-op.
        let a = parse_args(&args(&["--snapshots", "/s", "--shard-role", "worker"])).unwrap();
        assert_eq!(a.role, Role::Worker);
        // Router role: workers required, shard knobs parsed, both spellings.
        let a = parse_args(&args(&[
            "--shard-role=router",
            "--workers=127.0.0.1:7971, 127.0.0.1:7972",
            "--worker-timeout-ms=250",
            "--worker-connect-timeout-ms=9000",
            "--shard-scheme=strided",
            "--addr=127.0.0.1:7970",
        ]))
        .unwrap();
        assert_eq!(a.role, Role::Router);
        assert_eq!(a.workers, vec!["127.0.0.1:7971", "127.0.0.1:7972"]);
        assert_eq!(a.worker_timeout, Duration::from_millis(250));
        assert_eq!(a.worker_connect_timeout, Duration::from_millis(9000));
        assert_eq!(a.scheme, PartitionScheme::Strided);
        // Router defaults.
        let a = parse_args(&args(&["--shard-role", "router", "--workers", "h:1"])).unwrap();
        assert_eq!(a.worker_timeout, Duration::from_secs(30));
        assert_eq!(a.worker_connect_timeout, Duration::from_secs(120));
        assert_eq!(a.scheme, PartitionScheme::Contiguous);
        // Bad values.
        assert!(parse_args(&args(&["--snapshots", "/s", "--shard-role", "boss"])).is_err());
        assert!(parse_args(&args(&["--shard-role", "router", "--workers", ","])).is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--worker-timeout-ms=0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--shard-scheme=diagonal"
        ]))
        .is_err());
        // Role/flag disagreements.
        assert!(parse_args(&args(&["--shard-role", "router"])).is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--snapshots=/s"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--shard-role=router",
            "--workers=h:1",
            "--out-of-core"
        ]))
        .is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--workers", "h:1"])).is_err());
        assert!(parse_args(&args(&[
            "--snapshots=/s",
            "--worker-timeout-ms=100"
        ]))
        .is_err());
    }
}
