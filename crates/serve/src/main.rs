//! The `hydra-serve` binary: boot the index zoo from a snapshot directory
//! and serve it until a shutdown frame arrives.
//!
//! ```text
//! hydra-serve --snapshots DIR [--addr 127.0.0.1:7878]
//!             [--storage on-disk|in-memory] [--seed N]
//!             [--pool-pages N] [--out-of-core]
//!             [--batch-window-ms N] [--max-batch N]
//! ```
//!
//! `--storage` and `--seed` select the `hydra::standard_registry`
//! configuration the snapshots must fingerprint-match: use `on-disk`/`5`
//! for `fig4_ondisk --save-index` directories (the defaults) and
//! `in-memory`/`3` for `fig3_inmemory` ones. A mismatch fails at boot with
//! the offending file named — the server never guesses. (The *storage*
//! part of a configuration — page size, pool, backing — is not
//! fingerprinted; it only shapes I/O economics.)
//!
//! `--out-of-core` serves raw series from the snapshot files themselves
//! through a real page cache instead of holding them resident, and
//! `--pool-pages N` bounds that cache — together they let a boot serve
//! collections whose raw series far exceed the configured pool. Answers
//! are byte-identical to a resident boot.
//!
//! All diagnostics go to stderr; stdout is never written, so the binary
//! composes with shell pipelines the same way the figure binaries do.

use std::time::Duration;

use hydra_serve::{boot_from_dir_with, Server, ServerConfig};

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    snapshots: std::path::PathBuf,
    addr: String,
    in_memory: bool,
    seed: u64,
    pool_pages: Option<usize>,
    out_of_core: bool,
    batch_window: Duration,
    max_batch: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            snapshots: std::path::PathBuf::new(),
            addr: "127.0.0.1:7878".into(),
            in_memory: false,
            seed: 5,
            pool_pages: None,
            out_of_core: false,
            batch_window: Duration::from_millis(1),
            max_batch: 64,
        }
    }
}

/// Strict flag parsing in the house style (scaffolding shared with
/// `serve_client` via [`hydra_serve::cli`]): both `--flag VALUE` and
/// `--flag=VALUE` spellings, and anything unusable — a typo, a bad value,
/// a duplicate — is an error, never a silent fallback.
fn parse_args(args: &[String]) -> Result<Args, String> {
    use hydra_serve::cli::{once, value_of as cli_value_of};
    let mut out = Args::default();
    let mut seen: Vec<&'static str> = Vec::new();
    let mut snapshots_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &'static str| cli_value_of(arg, name, &mut it);
        if let Some(value) = value_of("--snapshots") {
            once("--snapshots", &mut seen)?;
            let value = value?;
            if value.is_empty() {
                return Err("--snapshots expects a directory path".into());
            }
            out.snapshots = value.into();
            snapshots_given = true;
        } else if let Some(value) = value_of("--addr") {
            once("--addr", &mut seen)?;
            out.addr = value?;
        } else if let Some(value) = value_of("--storage") {
            once("--storage", &mut seen)?;
            out.in_memory = match value?.as_str() {
                "in-memory" => true,
                "on-disk" => false,
                other => {
                    return Err(format!(
                        "--storage expects in-memory or on-disk, got {other:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--seed") {
            once("--seed", &mut seen)?;
            let value = value?;
            out.seed = value
                .parse()
                .map_err(|_| format!("--seed expects an integer, got {value:?}"))?;
        } else if let Some(value) = value_of("--pool-pages") {
            once("--pool-pages", &mut seen)?;
            let value = value?;
            out.pool_pages = Some(value.parse::<usize>().map_err(|_| {
                format!("--pool-pages expects a non-negative integer, got {value:?}")
            })?);
        } else if arg == "--out-of-core" {
            once("--out-of-core", &mut seen)?;
            out.out_of_core = true;
        } else if let Some(value) = value_of("--batch-window-ms") {
            once("--batch-window-ms", &mut seen)?;
            let value = value?;
            let ms: u64 = value
                .parse()
                .map_err(|_| format!("--batch-window-ms expects an integer, got {value:?}"))?;
            out.batch_window = Duration::from_millis(ms);
        } else if let Some(value) = value_of("--max-batch") {
            once("--max-batch", &mut seen)?;
            let value = value?;
            out.max_batch = match value.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return Err(format!("--max-batch expects a positive integer, got {value:?}")),
            };
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (accepted: --snapshots DIR, --addr HOST:PORT, \
                 --storage on-disk|in-memory, --seed N, --pool-pages N, --out-of-core, \
                 --batch-window-ms N, --max-batch N)"
            ));
        }
    }
    if !snapshots_given {
        return Err("--snapshots DIR is required".into());
    }
    Ok(out)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let registry = hydra::standard_registry_pooled(args.in_memory, args.seed, args.pool_pages);
    let options = hydra_serve::BootOptions {
        file_backed: args.out_of_core,
    };
    let report = match boot_from_dir_with(&args.snapshots, &registry, options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: boot failed: {e}");
            std::process::exit(2);
        }
    };
    if args.out_of_core {
        eprintln!(
            "hydra-serve: serving out-of-core (raw series file-backed{})",
            match args.pool_pages {
                Some(p) => format!(", pool {p} pages"),
                None => String::new(),
            }
        );
    }
    for (name, n, len) in &report.datasets {
        eprintln!("hydra-serve: dataset {name}: {n} series of length {len}");
    }
    for served in &report.indexes {
        eprintln!(
            "hydra-serve: serving {} ({}, {} series)",
            served.name,
            served.index.name(),
            served.index.num_series()
        );
    }
    for file in &report.skipped {
        eprintln!("hydra-serve: skipping {} (not an index of any dataset)", file.display());
    }
    let config = ServerConfig {
        batch_window: args.batch_window,
        max_batch: args.max_batch,
        ..ServerConfig::default()
    };
    let handle = match Server::spawn(report.indexes, args.addr.as_str(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    eprintln!(
        "hydra-serve: listening on {} (batch window {:?}, max batch {})",
        handle.local_addr(),
        config.batch_window,
        config.max_batch
    );
    let stats = handle.join();
    eprintln!(
        "hydra-serve: clean shutdown after {} queries in {} batch calls over {} ticks ({} connections)",
        stats.queries, stats.batch_calls, stats.ticks, stats.connections
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_accepts_both_spellings_and_rejects_garbage() {
        let a = parse_args(&args(&["--snapshots", "/snaps"])).unwrap();
        assert_eq!(a.snapshots, std::path::Path::new("/snaps"));
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert!(!a.in_memory);
        assert_eq!(a.seed, 5);
        let a = parse_args(&args(&[
            "--snapshots=/s",
            "--addr=0.0.0.0:9000",
            "--storage=in-memory",
            "--seed=4",
            "--batch-window-ms=5",
            "--max-batch=128",
        ]))
        .unwrap();
        assert!(a.in_memory);
        assert_eq!(a.seed, 4);
        assert_eq!(a.batch_window, Duration::from_millis(5));
        assert_eq!(a.max_batch, 128);
        assert_eq!(a.addr, "0.0.0.0:9000");
        // Required, duplicate, unknown, malformed.
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--snapshots"])).is_err());
        assert!(parse_args(&args(&["--snapshots="])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--snapshots", "/b"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--storage", "floppy"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--seed", "many"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--max-batch", "0"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/a", "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["extra"])).is_err());
        // Out-of-core serving flags.
        let a = parse_args(&args(&[
            "--snapshots=/s",
            "--out-of-core",
            "--pool-pages=4",
        ]))
        .unwrap();
        assert!(a.out_of_core);
        assert_eq!(a.pool_pages, Some(4));
        let a = parse_args(&args(&["--snapshots", "/s"])).unwrap();
        assert!(!a.out_of_core);
        assert_eq!(a.pool_pages, None);
        assert!(parse_args(&args(&["--snapshots", "/s", "--pool-pages", "lots"])).is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--pool-pages"])).is_err());
        assert!(parse_args(&args(&[
            "--snapshots",
            "/s",
            "--out-of-core",
            "--out-of-core"
        ]))
        .is_err());
        assert!(parse_args(&args(&["--snapshots", "/s", "--out-of-core=yes"])).is_err());
    }
}
