//! Hierarchical k-means tree (the "k-means tree" algorithm of FLANN).
//!
//! The dataset is recursively partitioned by k-means with a small branching
//! factor; leaves hold a bounded number of points. Search descends to the
//! closest centroid at each level and keeps unexplored siblings in a
//! priority queue ordered by centroid distance, stopping after `max_checks`
//! point comparisons.

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{codec, Fingerprint, PersistError, Section, SnapshotReader, SnapshotWriter};
use hydra_summarize::quantization::KMeans;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a [`KMeansTree`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansTreeConfig {
    /// Branching factor of each internal node.
    pub branching: usize,
    /// Maximum number of points per leaf.
    pub leaf_size: usize,
    /// k-means iterations per node.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansTreeConfig {
    fn default() -> Self {
        Self {
            branching: 16,
            leaf_size: 32,
            kmeans_iters: 8,
            seed: 0xF1A,
        }
    }
}

enum TreeNode {
    Leaf {
        points: Vec<u32>,
    },
    Internal {
        centroids: KMeans,
        children: Vec<usize>,
    },
}

/// The hierarchical k-means tree.
pub struct KMeansTree {
    config: KMeansTreeConfig,
    data: Dataset,
    nodes: Vec<TreeNode>,
}

impl KMeansTree {
    /// Builds the tree.
    pub fn build(dataset: &Dataset, config: KMeansTreeConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.branching < 2 || config.leaf_size == 0 {
            return Err(Error::InvalidParameter(
                "k-means tree needs branching >= 2 and a positive leaf size".into(),
            ));
        }
        let mut tree = Self {
            config,
            data: dataset.clone(),
            nodes: Vec::new(),
        };
        let ids: Vec<u32> = (0..dataset.len() as u32).collect();
        tree.build_node(ids, config.seed);
        Ok(tree)
    }

    fn build_node(&mut self, ids: Vec<u32>, seed: u64) -> usize {
        let my_index = self.nodes.len();
        if ids.len() <= self.config.leaf_size.max(self.config.branching) {
            self.nodes.push(TreeNode::Leaf { points: ids });
            return my_index;
        }
        let refs: Vec<&[f32]> = ids.iter().map(|&i| self.data.series(i as usize)).collect();
        let km = KMeans::fit(&refs, self.config.branching, self.config.kmeans_iters, seed);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); km.k()];
        for &id in &ids {
            let c = km.assign(self.data.series(id as usize));
            buckets[c].push(id);
        }
        // If clustering failed to separate the points, fall back to a leaf.
        if buckets.iter().filter(|b| !b.is_empty()).count() <= 1 {
            self.nodes.push(TreeNode::Leaf { points: ids });
            return my_index;
        }
        self.nodes.push(TreeNode::Internal {
            centroids: km,
            children: Vec::new(),
        });
        let mut children = Vec::new();
        for (c, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                children.push(usize::MAX);
                continue;
            }
            let child = self.build_node(bucket, seed.wrapping_add(c as u64 + 1));
            children.push(child);
        }
        if let TreeNode::Internal { children: ch, .. } = &mut self.nodes[my_index] {
            *ch = children;
        }
        my_index
    }

    /// The in-memory dataset the tree was built over (persistence hook).
    pub(crate) fn data(&self) -> &Dataset {
        &self.data
    }

    /// Hashes the build parameters into a snapshot fingerprint (persistence
    /// hook shared with the [`crate::Flann`] wrapper).
    pub(crate) fn push_fingerprint(config: &KMeansTreeConfig, f: &mut Fingerprint) {
        f.push_usize(config.branching);
        f.push_usize(config.leaf_size);
        f.push_usize(config.kmeans_iters);
        f.push_u64(config.seed);
    }

    /// Appends the tree's structure (leaf membership and per-node k-means
    /// codebooks) to a snapshot being written (persistence hook).
    ///
    /// Empty-cluster children are recorded with the same `usize::MAX`
    /// sentinel the in-memory arena uses (stored as `u64::MAX`).
    pub(crate) fn persist_sections(&self, w: &mut SnapshotWriter) {
        let mut meta = Section::new();
        meta.put_usize(self.data.series_len());
        meta.put_usize(self.data.len());
        meta.put_usize(self.nodes.len());
        w.push(meta);

        let mut nodes = Section::new();
        for node in &self.nodes {
            match node {
                TreeNode::Leaf { points } => {
                    nodes.put_u8(0);
                    nodes.put_u32s(points);
                }
                TreeNode::Internal {
                    centroids,
                    children,
                } => {
                    nodes.put_u8(1);
                    codec::put_kmeans(&mut nodes, centroids);
                    nodes.put_usizes(children);
                }
            }
        }
        w.push(nodes);
    }

    /// Restores a tree from the sections written by
    /// [`Self::persist_sections`] (persistence hook).
    pub(crate) fn restore_sections(
        r: &mut SnapshotReader,
        dataset: &Dataset,
        config: KMeansTreeConfig,
    ) -> hydra_persist::Result<Self> {
        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let n = meta.get_usize()?;
        let node_count = meta.get_usize()?;
        if series_len != dataset.series_len() || n != dataset.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(match sec.get_u8()? {
                0 => {
                    let points = sec.get_u32s()?;
                    if points.iter().any(|&p| p as usize >= n) {
                        return Err(PersistError::Corrupt(
                            "k-means leaf point out of range".into(),
                        ));
                    }
                    TreeNode::Leaf { points }
                }
                1 => {
                    let centroids = codec::get_kmeans(&mut sec)?;
                    if centroids.dim() != series_len {
                        return Err(PersistError::Corrupt(
                            "node codebook dimensionality mismatch".into(),
                        ));
                    }
                    let children = sec.get_usizes()?;
                    if children
                        .iter()
                        .any(|&c| c != usize::MAX && c >= node_count)
                    {
                        return Err(PersistError::Corrupt(
                            "k-means child id out of range".into(),
                        ));
                    }
                    TreeNode::Internal {
                        centroids,
                        children,
                    }
                }
                tag => {
                    return Err(PersistError::Corrupt(format!(
                        "invalid k-means-tree node tag {tag}"
                    )))
                }
            });
        }

        Ok(Self {
            config,
            data: dataset.clone(),
            nodes,
        })
    }
}

impl AnnIndex for KMeansTree {
    fn name(&self) -> &'static str {
        "FLANN-kmeans"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: false,
            streaming_insert: false,
            representation: Representation::Partitions,
        }
    }

    fn num_series(&self) -> usize {
        self.data.len()
    }

    fn series_len(&self) -> usize {
        self.data.series_len()
    }

    fn memory_footprint(&self) -> usize {
        let centroid_bytes: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                TreeNode::Internal { centroids, .. } => centroids.memory_footprint(),
                TreeNode::Leaf { points } => points.len() * std::mem::size_of::<u32>(),
            })
            .sum();
        centroid_bytes + self.data.payload_bytes()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.data.series_len() {
            return Err(Error::DimensionMismatch {
                expected: self.data.series_len(),
                found: query.len(),
            });
        }
        let SearchMode::Ng { nprobe } = params.mode else {
            return Err(Error::UnsupportedMode(
                "FLANN is ng-approximate only (no guarantees)".into(),
            ));
        };
        let max_checks = nprobe.max(params.k).max(1);
        let mut stats = QueryStats::new();
        let mut top = TopK::new(params.k.max(1));
        let mut checks = 0usize;

        #[derive(PartialEq)]
        struct Entry(f32, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
            }
        }
        let mut queue: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        queue.push(Reverse(Entry(0.0, 0)));

        while let Some(Reverse(Entry(_, node))) = queue.pop() {
            if checks >= max_checks {
                break;
            }
            match &self.nodes[node] {
                TreeNode::Leaf { points } => {
                    stats.leaves_visited += 1;
                    for &id in points {
                        if checks >= max_checks {
                            break;
                        }
                        let id = id as usize;
                        checks += 1;
                        stats.distance_computations += 1;
                        stats.series_scanned += 1;
                        if let Some(d) = hydra_core::euclidean_early_abandon(
                            query,
                            self.data.series(id),
                            top.kth_distance(),
                        ) {
                            top.push(Neighbor::new(id, d));
                        }
                    }
                }
                TreeNode::Internal {
                    centroids,
                    children,
                } => {
                    let dists = centroids.distances(query);
                    stats.lower_bound_computations += dists.len() as u64;
                    for (c, d) in dists.into_iter().enumerate() {
                        if children[c] != usize::MAX {
                            queue.push(Reverse(Entry(d.sqrt(), children[c])));
                        }
                    }
                }
            }
        }
        Ok(SearchResult::new(top.into_sorted(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, sift_like};

    #[test]
    fn tree_reaches_good_recall_with_enough_checks() {
        let data = sift_like(700, 20, 21);
        let tree = KMeansTree::build(
            &data,
            KMeansTreeConfig {
                branching: 8,
                leaf_size: 16,
                kmeans_iters: 6,
                seed: 2,
            },
        )
        .unwrap();
        let queries = sift_like(5, 20, 98);
        let mut hits = 0usize;
        for q in queries.iter() {
            let res = tree.search(q, &SearchParams::ng(1, 300)).unwrap();
            let gt = exact_knn(&data, q, 1);
            if res.neighbors[0].index == gt[0].index {
                hits += 1;
            }
        }
        assert!(hits >= 3, "k-means tree 1-NN hits: {hits}/5");
    }

    #[test]
    fn checks_budget_is_respected_and_improves_quality() {
        let data = sift_like(600, 16, 23);
        let tree = KMeansTree::build(&data, KMeansTreeConfig::default()).unwrap();
        let q = data.series(1);
        let small = tree.search(q, &SearchParams::ng(5, 40)).unwrap();
        let large = tree.search(q, &SearchParams::ng(5, 400)).unwrap();
        assert!(small.stats.series_scanned <= 40);
        assert!(large.stats.series_scanned <= 400);
        assert!(large.kth_distance() <= small.kth_distance() + 1e-6);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let empty = Dataset::new(4).unwrap();
        assert!(KMeansTree::build(&empty, KMeansTreeConfig::default()).is_err());
        let data = sift_like(10, 8, 1);
        assert!(KMeansTree::build(
            &data,
            KMeansTreeConfig {
                branching: 1,
                ..KMeansTreeConfig::default()
            }
        )
        .is_err());
        let tree = KMeansTree::build(&data, KMeansTreeConfig::default()).unwrap();
        assert!(tree.search(&[0.0; 8], &SearchParams::epsilon(1, 1.0)).is_err());
        assert!(tree.search(&[0.0; 2], &SearchParams::ng(1, 5)).is_err());
        assert_eq!(tree.name(), "FLANN-kmeans");
        assert!(tree.memory_footprint() > 0);
    }
}
