//! # hydra-flann
//!
//! A FLANN-style ensemble (Muja & Lowe) for ng-approximate nearest-neighbor
//! search: randomized kd-trees searched jointly with a shared priority
//! queue, a hierarchical k-means tree, and an auto-selection wrapper that
//! picks between them — mirroring the library the Lernaean Hydra paper
//! evaluates as "Flann".
//!
//! Both algorithms are in-memory and provide no guarantees; the
//! speed/accuracy knob is the number of leaf/point checks (`max_checks`),
//! mapped onto the `nprobe` parameter of [`hydra_core::SearchMode::Ng`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod kdforest;
mod kmeans_tree;

pub use kdforest::{KdForest, KdForestConfig};
pub use kmeans_tree::{KMeansTree, KMeansTreeConfig};

use std::path::Path;

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Representation, Result, SearchParams, SearchResult,
};
use hydra_persist::{
    fingerprint_dataset, Fingerprint, PersistError, PersistentIndex, Section, SnapshotReader,
    SnapshotWriter,
};

/// Which algorithm a [`Flann`] instance selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlannAlgorithm {
    /// Ensemble of randomized kd-trees.
    RandomizedKdTrees,
    /// Hierarchical k-means tree.
    HierarchicalKMeans,
}

/// Configuration of the [`Flann`] auto-selection wrapper.
#[derive(Debug, Clone, Copy)]
pub struct FlannConfig {
    /// kd-forest configuration (used when the kd-tree algorithm is chosen).
    pub kd: KdForestConfig,
    /// k-means-tree configuration (used when that algorithm is chosen).
    pub kmeans: KMeansTreeConfig,
    /// Force a specific algorithm instead of auto-selecting.
    pub force: Option<FlannAlgorithm>,
}

impl Default for FlannConfig {
    fn default() -> Self {
        Self {
            kd: KdForestConfig::default(),
            kmeans: KMeansTreeConfig::default(),
            force: None,
        }
    }
}

enum Inner {
    Kd(KdForest),
    KMeans(KMeansTree),
}

/// The FLANN-style auto-selecting index.
pub struct Flann {
    inner: Inner,
    algorithm: FlannAlgorithm,
    /// The full configuration the wrapper was built with (both algorithms'
    /// parameters), kept for snapshot fingerprinting.
    config: FlannConfig,
}

impl Flann {
    /// Builds a FLANN index, auto-selecting the algorithm.
    ///
    /// The (simplified) selection rule follows FLANN's empirical guidance:
    /// strongly clustered data with moderate dimensionality favours the
    /// hierarchical k-means tree, everything else the randomized kd-forest.
    /// The heuristic compares the dataset's mean nearest-centroid distance
    /// under a coarse k-means against the global spread.
    pub fn build(dataset: &Dataset, config: FlannConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let algorithm = match config.force {
            Some(a) => a,
            None => {
                if dataset.series_len() <= 64 && dataset.len() >= 1000 {
                    FlannAlgorithm::HierarchicalKMeans
                } else {
                    FlannAlgorithm::RandomizedKdTrees
                }
            }
        };
        let inner = match algorithm {
            FlannAlgorithm::RandomizedKdTrees => Inner::Kd(KdForest::build(dataset, config.kd)?),
            FlannAlgorithm::HierarchicalKMeans => {
                Inner::KMeans(KMeansTree::build(dataset, config.kmeans)?)
            }
        };
        Ok(Self {
            inner,
            algorithm,
            config,
        })
    }

    /// Which algorithm was selected.
    pub fn algorithm(&self) -> FlannAlgorithm {
        self.algorithm
    }

    /// The configuration the wrapper was built with.
    pub fn config(&self) -> &FlannConfig {
        &self.config
    }
}

/// Everything that shapes a FLANN build — both algorithms' parameters plus
/// the forced-algorithm choice — hashed together with the dataset content
/// (see [`PersistentIndex`]). Auto-selection is deterministic in the
/// dataset, so fingerprinting the full configuration pins down the built
/// structure exactly.
fn snapshot_fingerprint(config: &FlannConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Flann::KIND);
    KdForest::push_fingerprint(&config.kd, &mut f);
    KMeansTree::push_fingerprint(&config.kmeans, &mut f);
    f.push_u64(match config.force {
        None => 0,
        Some(FlannAlgorithm::RandomizedKdTrees) => 1,
        Some(FlannAlgorithm::HierarchicalKMeans) => 2,
    });
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Flann {
    type Config = FlannConfig;
    const KIND: &'static str = "flann";

    /// Snapshots which algorithm auto-selection picked followed by that
    /// algorithm's structure (kd-forest node arenas, or the hierarchical
    /// k-means tree with its per-node codebooks). The raw vectors are
    /// re-attached from the dataset at load time.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let data = match &self.inner {
            Inner::Kd(i) => i.data(),
            Inner::KMeans(i) => i.data(),
        };
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, fingerprint_dataset(data)),
        );
        let mut algo = Section::new();
        algo.put_u8(match self.algorithm {
            FlannAlgorithm::RandomizedKdTrees => 0,
            FlannAlgorithm::HierarchicalKMeans => 1,
        });
        w.push(algo);
        match &self.inner {
            Inner::Kd(i) => i.persist_sections(&mut w),
            Inner::KMeans(i) => i.persist_sections(&mut w),
        }
        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &FlannConfig) -> hydra_persist::Result<Self> {
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, fingerprint_dataset(dataset)))?;

        let mut algo = r.next_section()?;
        let algorithm = match algo.get_u8()? {
            0 => FlannAlgorithm::RandomizedKdTrees,
            1 => FlannAlgorithm::HierarchicalKMeans,
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "invalid FLANN algorithm tag {tag}"
                )))
            }
        };
        let inner = match algorithm {
            FlannAlgorithm::RandomizedKdTrees => {
                Inner::Kd(KdForest::restore_sections(&mut r, dataset, config.kd)?)
            }
            FlannAlgorithm::HierarchicalKMeans => {
                Inner::KMeans(KMeansTree::restore_sections(&mut r, dataset, config.kmeans)?)
            }
        };
        Ok(Self {
            inner,
            algorithm,
            config: *config,
        })
    }
}

impl AnnIndex for Flann {
    fn name(&self) -> &'static str {
        "FLANN"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: false,
            streaming_insert: false,
            representation: Representation::Partitions,
        }
    }

    fn num_series(&self) -> usize {
        match &self.inner {
            Inner::Kd(i) => i.num_series(),
            Inner::KMeans(i) => i.num_series(),
        }
    }

    fn series_len(&self) -> usize {
        match &self.inner {
            Inner::Kd(i) => i.series_len(),
            Inner::KMeans(i) => i.series_len(),
        }
    }

    fn memory_footprint(&self) -> usize {
        match &self.inner {
            Inner::Kd(i) => i.memory_footprint(),
            Inner::KMeans(i) => i.memory_footprint(),
        }
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        match &self.inner {
            Inner::Kd(i) => i.search(query, params),
            Inner::KMeans(i) => i.search(query, params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, sift_like};
    use hydra_core::Neighbor;

    fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
        let ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
        found.iter().filter(|n| ids.contains(&n.index)).count() as f64 / truth.len() as f64
    }

    #[test]
    fn auto_selection_picks_an_algorithm_and_answers() {
        let data = sift_like(1200, 32, 3);
        let flann = Flann::build(&data, FlannConfig::default()).unwrap();
        assert_eq!(flann.algorithm(), FlannAlgorithm::HierarchicalKMeans);
        let small = sift_like(200, 96, 3);
        let flann2 = Flann::build(&small, FlannConfig::default()).unwrap();
        assert_eq!(flann2.algorithm(), FlannAlgorithm::RandomizedKdTrees);
        assert_eq!(flann.name(), "FLANN");
        assert!(!flann.capabilities().exact);
        assert!(flann.memory_footprint() > 0);
        assert_eq!(flann.num_series(), 1200);
        assert_eq!(flann.series_len(), 32);
    }

    #[test]
    fn both_forced_algorithms_reach_reasonable_recall() {
        let data = sift_like(800, 24, 5);
        let queries = sift_like(6, 24, 55);
        for algo in [
            FlannAlgorithm::RandomizedKdTrees,
            FlannAlgorithm::HierarchicalKMeans,
        ] {
            let flann = Flann::build(
                &data,
                FlannConfig {
                    force: Some(algo),
                    ..FlannConfig::default()
                },
            )
            .unwrap();
            let mut total = 0.0;
            for q in queries.iter() {
                let res = flann.search(q, &hydra_core::SearchParams::ng(10, 400)).unwrap();
                let gt = exact_knn(&data, q, 10);
                total += recall(&res.neighbors, &gt);
            }
            assert!(total / 6.0 > 0.6, "{algo:?} recall too low: {}", total / 6.0);
        }
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let empty = Dataset::new(8).unwrap();
        assert!(Flann::build(&empty, FlannConfig::default()).is_err());
    }
}
