//! Randomized kd-tree forest.
//!
//! Each tree chooses, at every node, a random split dimension among the few
//! dimensions with the highest variance (Silpa-Anan & Hartley). All trees
//! are searched simultaneously with one shared priority queue of unexplored
//! branches, and the search stops after `max_checks` point comparisons.

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{Fingerprint, PersistError, Section, SnapshotReader, SnapshotWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a [`KdForest`].
#[derive(Debug, Clone, Copy)]
pub struct KdForestConfig {
    /// Number of randomized trees.
    pub num_trees: usize,
    /// Maximum number of points per leaf.
    pub leaf_size: usize,
    /// Number of top-variance dimensions the random split dimension is
    /// drawn from (FLANN uses 5).
    pub top_dims: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KdForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 4,
            leaf_size: 16,
            top_dims: 5,
            seed: 0x5D,
        }
    }
}

#[derive(Debug)]
enum KdNode {
    Leaf {
        points: Vec<u32>,
    },
    Split {
        dim: usize,
        value: f32,
        left: usize,
        right: usize,
    },
}

/// An ensemble of randomized kd-trees over an in-memory dataset.
pub struct KdForest {
    config: KdForestConfig,
    data: Dataset,
    /// Per tree: an arena of nodes, root at index 0.
    trees: Vec<Vec<KdNode>>,
}

impl KdForest {
    /// Builds the forest.
    pub fn build(dataset: &Dataset, config: KdForestConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.num_trees == 0 || config.leaf_size == 0 {
            return Err(Error::InvalidParameter(
                "kd-forest needs at least one tree and a positive leaf size".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            let mut nodes = Vec::new();
            let ids: Vec<u32> = (0..dataset.len() as u32).collect();
            build_node(dataset, ids, &config, &mut nodes, &mut rng);
            trees.push(nodes);
        }
        Ok(Self {
            config,
            data: dataset.clone(),
            trees,
        })
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The configuration the forest was built with.
    pub fn config(&self) -> &KdForestConfig {
        &self.config
    }

    /// The in-memory dataset the forest was built over (persistence hook).
    pub(crate) fn data(&self) -> &Dataset {
        &self.data
    }

    /// Hashes the build parameters into a snapshot fingerprint (persistence
    /// hook shared with the [`crate::Flann`] wrapper).
    pub(crate) fn push_fingerprint(config: &KdForestConfig, f: &mut Fingerprint) {
        f.push_usize(config.num_trees);
        f.push_usize(config.leaf_size);
        f.push_usize(config.top_dims);
        f.push_u64(config.seed);
    }

    /// Appends the forest's structure (every tree's node arena) to a
    /// snapshot being written (persistence hook).
    pub(crate) fn persist_sections(&self, w: &mut SnapshotWriter) {
        let mut meta = Section::new();
        meta.put_usize(self.data.series_len());
        meta.put_usize(self.data.len());
        meta.put_usize(self.trees.len());
        w.push(meta);

        let mut trees = Section::new();
        for nodes in &self.trees {
            trees.put_usize(nodes.len());
            for node in nodes {
                match node {
                    KdNode::Leaf { points } => {
                        trees.put_u8(0);
                        trees.put_u32s(points);
                    }
                    KdNode::Split {
                        dim,
                        value,
                        left,
                        right,
                    } => {
                        trees.put_u8(1);
                        trees.put_usize(*dim);
                        trees.put_f32(*value);
                        trees.put_usize(*left);
                        trees.put_usize(*right);
                    }
                }
            }
        }
        w.push(trees);
    }

    /// Restores a forest from the sections written by
    /// [`Self::persist_sections`] (persistence hook).
    pub(crate) fn restore_sections(
        r: &mut SnapshotReader,
        dataset: &Dataset,
        config: KdForestConfig,
    ) -> hydra_persist::Result<Self> {
        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let n = meta.get_usize()?;
        let tree_count = meta.get_usize()?;
        if series_len != dataset.series_len() || n != dataset.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut trees = Vec::with_capacity(tree_count);
        for _ in 0..tree_count {
            let node_count = sec.get_usize()?;
            let mut nodes = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                nodes.push(match sec.get_u8()? {
                    0 => {
                        let points = sec.get_u32s()?;
                        if points.iter().any(|&p| p as usize >= n) {
                            return Err(PersistError::Corrupt(
                                "kd leaf point out of range".into(),
                            ));
                        }
                        KdNode::Leaf { points }
                    }
                    1 => {
                        let dim = sec.get_usize()?;
                        let value = sec.get_f32()?;
                        let left = sec.get_usize()?;
                        let right = sec.get_usize()?;
                        if dim >= series_len || left >= node_count || right >= node_count {
                            return Err(PersistError::Corrupt(
                                "kd split references a missing node or dimension".into(),
                            ));
                        }
                        KdNode::Split {
                            dim,
                            value,
                            left,
                            right,
                        }
                    }
                    tag => {
                        return Err(PersistError::Corrupt(format!(
                            "invalid kd-node tag {tag}"
                        )))
                    }
                });
            }
            trees.push(nodes);
        }

        Ok(Self {
            config,
            data: dataset.clone(),
            trees,
        })
    }
}

/// Recursively builds one node; returns its index in the arena.
fn build_node(
    data: &Dataset,
    ids: Vec<u32>,
    config: &KdForestConfig,
    nodes: &mut Vec<KdNode>,
    rng: &mut StdRng,
) -> usize {
    let my_index = nodes.len();
    if ids.len() <= config.leaf_size {
        nodes.push(KdNode::Leaf { points: ids });
        return my_index;
    }
    // Pick a random dimension among the top-variance ones.
    let dim_count = data.series_len();
    let mut variances: Vec<(f32, usize)> = (0..dim_count)
        .map(|d| {
            let mean: f32 = ids.iter().map(|&i| data.series(i as usize)[d]).sum::<f32>()
                / ids.len() as f32;
            let var: f32 = ids
                .iter()
                .map(|&i| {
                    let v = data.series(i as usize)[d] - mean;
                    v * v
                })
                .sum::<f32>()
                / ids.len() as f32;
            (var, d)
        })
        .collect();
    variances.sort_by(|a, b| b.0.total_cmp(&a.0));
    let pick = rng.gen_range(0..config.top_dims.min(variances.len()));
    let dim = variances[pick].1;
    let mut values: Vec<f32> = ids.iter().map(|&i| data.series(i as usize)[dim]).collect();
    values.sort_by(f32::total_cmp);
    let median = values[values.len() / 2];
    let (left_ids, right_ids): (Vec<u32>, Vec<u32>) = ids
        .iter()
        .partition(|&&i| data.series(i as usize)[dim] < median);
    if left_ids.is_empty() || right_ids.is_empty() {
        // Constant dimension slice: stop splitting.
        nodes.push(KdNode::Leaf { points: ids });
        return my_index;
    }
    nodes.push(KdNode::Split {
        dim,
        value: median,
        left: 0,
        right: 0,
    });
    let left = build_node(data, left_ids, config, nodes, rng);
    let right = build_node(data, right_ids, config, nodes, rng);
    if let KdNode::Split {
        left: l, right: r, ..
    } = &mut nodes[my_index]
    {
        *l = left;
        *r = right;
    }
    my_index
}

impl AnnIndex for KdForest {
    fn name(&self) -> &'static str {
        "FLANN-kd"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: false,
            streaming_insert: false,
            representation: Representation::Partitions,
        }
    }

    fn num_series(&self) -> usize {
        self.data.len()
    }

    fn series_len(&self) -> usize {
        self.data.series_len()
    }

    fn memory_footprint(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.len() * std::mem::size_of::<KdNode>())
            .sum::<usize>()
            + self.data.payload_bytes()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.data.series_len() {
            return Err(Error::DimensionMismatch {
                expected: self.data.series_len(),
                found: query.len(),
            });
        }
        let SearchMode::Ng { nprobe } = params.mode else {
            return Err(Error::UnsupportedMode(
                "FLANN is ng-approximate only (no guarantees)".into(),
            ));
        };
        let max_checks = nprobe.max(params.k).max(1);
        let mut stats = QueryStats::new();
        let mut top = TopK::new(params.k.max(1));
        let mut checked = vec![false; self.data.len()];
        let mut checks = 0usize;

        // Shared branch queue across all trees: (lower bound, tree, node).
        #[derive(PartialEq)]
        struct Branch(f32, usize, usize);
        impl Eq for Branch {}
        impl PartialOrd for Branch {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Branch {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then(self.1.cmp(&other.1))
                    .then(self.2.cmp(&other.2))
            }
        }
        let mut queue: BinaryHeap<Reverse<Branch>> = BinaryHeap::new();
        for t in 0..self.trees.len() {
            queue.push(Reverse(Branch(0.0, t, 0)));
        }

        while let Some(Reverse(Branch(lb, tree, mut node))) = queue.pop() {
            if checks >= max_checks {
                break;
            }
            if top.is_full() && lb > top.kth_distance() {
                continue;
            }
            // Descend to a leaf, pushing the unexplored sibling branches.
            loop {
                match &self.trees[tree][node] {
                    KdNode::Leaf { points } => {
                        stats.leaves_visited += 1;
                        for &id in points {
                            let id = id as usize;
                            if checked[id] || checks >= max_checks {
                                continue;
                            }
                            checked[id] = true;
                            checks += 1;
                            stats.distance_computations += 1;
                            stats.series_scanned += 1;
                            if let Some(d) = hydra_core::euclidean_early_abandon(
                                query,
                                self.data.series(id),
                                top.kth_distance(),
                            ) {
                                top.push(Neighbor::new(id, d));
                            }
                        }
                        break;
                    }
                    KdNode::Split {
                        dim,
                        value,
                        left,
                        right,
                    } => {
                        let diff = query[*dim] - value;
                        let (near, far) = if diff < 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        queue.push(Reverse(Branch(lb.max(diff.abs()), tree, far)));
                        node = near;
                    }
                }
            }
        }
        Ok(SearchResult::new(top.into_sorted(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, sift_like};

    #[test]
    fn forest_reaches_good_recall_with_enough_checks() {
        let data = sift_like(600, 20, 11);
        let forest = KdForest::build(
            &data,
            KdForestConfig {
                num_trees: 4,
                leaf_size: 8,
                top_dims: 5,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(forest.num_trees(), 4);
        let queries = sift_like(5, 20, 99);
        let mut hits = 0usize;
        for q in queries.iter() {
            let res = forest.search(q, &SearchParams::ng(1, 300)).unwrap();
            let gt = exact_knn(&data, q, 1);
            if res.neighbors[0].index == gt[0].index {
                hits += 1;
            }
        }
        assert!(hits >= 3, "kd-forest 1-NN hits: {hits}/5");
    }

    #[test]
    fn checks_budget_is_respected() {
        let data = sift_like(500, 16, 13);
        let forest = KdForest::build(&data, KdForestConfig::default()).unwrap();
        let q = data.series(0);
        let res = forest.search(q, &SearchParams::ng(5, 50)).unwrap();
        assert!(res.stats.series_scanned <= 50);
        let bigger = forest.search(q, &SearchParams::ng(5, 200)).unwrap();
        assert!(bigger.stats.series_scanned <= 200);
        assert!(bigger.kth_distance() <= res.kth_distance() + 1e-6);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let empty = Dataset::new(4).unwrap();
        assert!(KdForest::build(&empty, KdForestConfig::default()).is_err());
        let data = sift_like(10, 8, 1);
        assert!(KdForest::build(
            &data,
            KdForestConfig {
                num_trees: 0,
                ..KdForestConfig::default()
            }
        )
        .is_err());
        let forest = KdForest::build(&data, KdForestConfig::default()).unwrap();
        assert!(forest.search(&[0.0; 8], &SearchParams::exact(1)).is_err());
        assert!(forest.search(&[0.0; 2], &SearchParams::ng(1, 5)).is_err());
    }
}
