//! Small dense-matrix kernel.
//!
//! Only what the summarizers need: row-major matrices, multiplication,
//! transpose, Gram–Schmidt orthonormalization, a cyclic Jacobi
//! eigendecomposition for symmetric matrices, and the orthogonal Procrustes
//! solution used to train OPQ rotations. `O(d³)` algorithms in `f64` are
//! both fast enough and numerically robust for the dimensionalities the
//! summarizers see (up to the ~1000-point series of the long random-walk
//! datasets) — but only because every iteration count is convergence-bound
//! with a tolerance *relative* to the matrix norm, never a fixed sweep
//! count.

/// A row-major dense matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The row-major value buffer (persistence accessor; pairs with
    /// [`Matrix::from_vec`]).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector (`self * v`).
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm of the difference to another matrix.
    pub fn distance(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Orthonormalizes the rows of `m` in place with modified Gram–Schmidt.
/// Rows that become numerically zero are replaced by canonical basis
/// vectors — themselves orthogonalized against the rows above — so for
/// `rows ≤ cols` the result always has orthonormal rows.
pub fn gram_schmidt_rows(m: &mut Matrix) {
    let cols = m.cols();
    for i in 0..m.rows() {
        // Subtract projections on previous rows. Contiguous-slice inner
        // loops (rather than per-element indexing) — this is the hot path
        // of the thin Procrustes basis completions.
        let (head, tail) = m.data.split_at_mut(i * cols);
        let row = &mut tail[..cols];
        if row.iter().all(|v| *v == 0.0) {
            // Exactly-zero rows (basis-completion padding) skip straight to
            // replacement; projecting them would be `i` wasted dot products.
            replace_degenerate_row(m, i);
            continue;
        }
        for j in 0..i {
            let prev = &head[j * cols..(j + 1) * cols];
            let dot: f64 = row.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
            for (x, p) in row.iter_mut().zip(prev.iter()) {
                *x -= dot * p;
            }
        }
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            replace_degenerate_row(m, i);
        } else {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
}

/// Replaces row `i` (numerically zero after projection) with a canonical
/// basis vector orthogonalized against rows `0..i`.
///
/// The candidate is chosen without any trial projections: against
/// orthonormal rows, the residual of `e_c` is exactly
/// `1 - Σⱼ m[j][c]²` (the "coverage" of coordinate `c`), so the
/// least-covered coordinate has residual² `≥ 1 - i/cols > 0` whenever
/// `i < cols` and always succeeds. Scanning candidates in a fixed order
/// instead is quadratic in the worst case — structured inputs (e.g.
/// quantizer-decoded data) saturate whole coordinate blocks early, and
/// every saturated candidate costs a full projection pass to reject.
///
/// The surviving candidate is orthogonalized and then re-orthogonalized
/// once more ("twice is enough") to keep the completion numerically
/// orthonormal at large sizes.
fn replace_degenerate_row(m: &mut Matrix, i: usize) {
    let cols = m.cols();
    let (head, tail) = m.data.split_at_mut(i * cols);
    let row = &mut tail[..cols];
    let mut covered = vec![0.0f64; cols];
    for j in 0..i {
        let prev = &head[j * cols..(j + 1) * cols];
        for (cov, v) in covered.iter_mut().zip(prev.iter()) {
            *cov += v * v;
        }
    }
    let e = covered
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(i % cols, |(c, _)| c);
    row.fill(0.0);
    row[e] = 1.0;
    let mut norm = 0.0;
    for _pass in 0..2 {
        for j in 0..i {
            let prev = &head[j * cols..(j + 1) * cols];
            let dot: f64 = row.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
            for (x, p) in row.iter_mut().zip(prev.iter()) {
                *x -= dot * p;
            }
        }
        norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= 1e-8 {
            break;
        }
        for x in row.iter_mut() {
            *x /= norm;
        }
    }
    if norm <= 1e-8 {
        // More rows than dimensions: no orthogonal direction is left; fall
        // back to a bare basis vector so the row is at least unit-norm.
        row.fill(0.0);
        row[e] = 1.0;
    }
}

/// Eigendecomposition of a symmetric matrix with the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` where column `j` of the eigenvector
/// matrix corresponds to `eigenvalues[j]`, sorted in decreasing order.
///
/// Convergence is judged *relative* to the input's Frobenius norm (which
/// Jacobi rotations preserve): the sweeps stop once the off-diagonal mass is
/// below `1e-24` of the total. An absolute threshold cannot work here — it
/// either never fires on large/high-variance matrices (forcing the full
/// sweep budget, each sweep `O(n³)`) or fires vacuously on tiny-scale ones.
/// Jacobi converges quadratically, so the relative test is reached in ~10
/// sweeps regardless of `n`.
pub fn symmetric_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let fro2: f64 = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| a[(i, j)] * a[(i, j)])
        .sum();
    let tol = 1e-24 * fro2;
    // Per-element rotation skip at the same relative scale: an element is
    // negligible when a full grid of elements its size would still pass the
    // sweep test.
    let skip = tol / (n * (n - 1) / 2).max(1) as f64;
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if m[(p, q)] * m[(p, q)] <= skip {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, (_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, *old_col)];
        }
    }
    (eigenvalues, vectors)
}

/// Solves the orthogonal Procrustes problem: the rotation `R` minimizing
/// `|| A R - B ||_F` over orthogonal matrices.
///
/// The minimizer is `U Vᵀ` from the SVD of `M = Aᵀ B` — which is exactly
/// the orthogonal factor of `M`'s polar decomposition. Three routes share
/// the work by shape:
///
/// * fewer samples than dimensions (`n < d`, the typical OPQ training
///   regime) — `M` is rank-deficient *by construction*, so the problem is
///   first collapsed onto the data's row spaces and solved at `n × n`
///   (the thin route);
/// * square-or-tall with nonsingular `M` — the scaled Newton polar
///   iteration `X ← (γX + (γX)⁻ᵀ) / 2` converges quadratically in ~10
///   `O(d³)` inversions, an order of magnitude cheaper than Jacobi sweeps;
/// * singular / non-converging leftovers — the explicit SVD route.
pub fn procrustes_rotation(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    if a.rows() < a.cols() {
        return thin_procrustes(a, b);
    }
    let m = a.transpose().matmul(b); // d x d
    if let Some(r) = polar_orthogonal_factor(&m) {
        return r;
    }
    svd_rotation(&m)
}

/// [`procrustes_rotation`] for the thin case `n < d`, where `M = AᵀB` has
/// rank at most `n` and a `d × d` SVD would waste `O(d³)` sweeps on a
/// subspace problem. Orthonormalize the rows of `A` and `B`
/// (`A = Rx Qx`, `B = Ry Qy`), solve the *n × n* Procrustes problem on
/// `S = Rxᵀ Ry`, and lift: `R = Qx⁺ᵀ · diag(P, I) · Qy⁺`, where `Qx⁺`/`Qy⁺`
/// complete the row bases to full orthogonal matrices. Since
/// `M = Qx⁺ᵀ · diag(S, 0) · Qy⁺`, `tr(Rᵀ M) = tr(Pᵀ S) = Σ σᵢ(M)` — the
/// lifted rotation attains the same bound as the full-space solution, so it
/// is a true minimizer (the completion directions are free).
fn thin_procrustes(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.rows();
    let d = a.cols();
    let mut qx = a.clone();
    gram_schmidt_rows(&mut qx);
    let mut qy = b.clone();
    gram_schmidt_rows(&mut qy);
    let rx = a.matmul(&qx.transpose()); // n x n coefficients: A = Rx Qx
    let ry = b.matmul(&qy.transpose());
    let s = rx.transpose().matmul(&ry);
    let p = polar_orthogonal_factor(&s).unwrap_or_else(|| svd_rotation(&s));
    let mut qx_full = Matrix::zeros(d, d);
    qx_full.data[..n * d].copy_from_slice(&qx.data);
    gram_schmidt_rows(&mut qx_full);
    let mut qy_full = Matrix::zeros(d, d);
    qy_full.data[..n * d].copy_from_slice(&qy.data);
    gram_schmidt_rows(&mut qy_full);
    // diag(P, I) · Qy_full: the first n rows of Qy_full mixed by P, the
    // completion rows passed through.
    let mut mixed = Matrix::zeros(d, d);
    mixed.data[n * d..].copy_from_slice(&qy_full.data[n * d..]);
    for i in 0..n {
        let out = &mut mixed.data[i * d..(i + 1) * d];
        for j in 0..n {
            let coeff = p[(i, j)];
            let src = &qy_full.data[j * d..(j + 1) * d];
            for (o, v) in out.iter_mut().zip(src.iter()) {
                *o += coeff * v;
            }
        }
    }
    qx_full.transpose().matmul(&mixed)
}

/// Gauss–Jordan inverse with partial pivoting; `None` when a pivot is
/// negligible relative to the matrix scale (numerically singular).
fn invert(m: &Matrix) -> Option<Matrix> {
    let n = m.rows();
    debug_assert_eq!(m.cols(), n);
    let w = 2 * n;
    let mut aug = vec![0.0f64; n * w];
    for i in 0..n {
        for j in 0..n {
            aug[i * w + j] = m[(i, j)];
        }
        aug[i * w + n + i] = 1.0;
    }
    let scale = m.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    if scale == 0.0 {
        return None;
    }
    let tol = scale * n as f64 * f64::EPSILON;
    let mut pivot_row = vec![0.0f64; w];
    for col in 0..n {
        let mut piv = col;
        let mut best = aug[col * w + col].abs();
        for r in col + 1..n {
            let v = aug[r * w + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best <= tol {
            return None;
        }
        if piv != col {
            for j in 0..w {
                aug.swap(col * w + j, piv * w + j);
            }
        }
        let inv_p = 1.0 / aug[col * w + col];
        for j in col..w {
            aug[col * w + j] *= inv_p;
        }
        pivot_row.copy_from_slice(&aug[col * w..(col + 1) * w]);
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = aug[r * w + col];
            if f == 0.0 {
                continue;
            }
            let row = &mut aug[r * w + col..(r + 1) * w];
            for (x, p) in row.iter_mut().zip(&pivot_row[col..]) {
                *x -= f * p;
            }
        }
    }
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = aug[i * w + n + j];
        }
    }
    Some(out)
}

/// The orthogonal factor of the polar decomposition `M = R H` (`R`
/// orthogonal, `H` symmetric PSD) by the norm-scaled Newton iteration, or
/// `None` when `M` is singular or the iterate fails the orthogonality
/// check. The γ scaling (Higham) keeps the iteration count ~10 even for
/// poorly conditioned inputs.
fn polar_orthogonal_factor(m: &Matrix) -> Option<Matrix> {
    let d = m.rows();
    debug_assert_eq!(m.cols(), d);
    let fro = m.frobenius_norm();
    if fro == 0.0 || !fro.is_finite() {
        return None;
    }
    let mut x = m.clone();
    for v in &mut x.data {
        *v /= fro;
    }
    for _iter in 0..60 {
        let xinv = invert(&x)?;
        let gamma = (xinv.frobenius_norm() / x.frobenius_norm()).sqrt();
        if !gamma.is_finite() || gamma == 0.0 {
            return None;
        }
        let mut next = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                next[(i, j)] = 0.5 * (gamma * x[(i, j)] + xinv[(j, i)] / gamma);
            }
        }
        let step = next.distance(&x);
        x = next;
        // An orthogonal matrix has Frobenius norm √d; once the step is deep
        // below that scale the quadratic convergence has bottomed out.
        if step <= 1e-13 * (d as f64).sqrt() {
            break;
        }
    }
    let orthogonality = x.transpose().matmul(&x).distance(&Matrix::identity(d));
    (orthogonality <= 1e-8 * (d as f64).sqrt()).then_some(x)
}

/// The Procrustes rotation via an explicit SVD of `M` — the slow but fully
/// general route, covering the rank-deficient inputs the polar Newton
/// iteration cannot.
///
/// Only *one* symmetric eigendecomposition is needed: `V` comes from
/// `MᵀM`, and each left singular vector is `u_i = M v_i / ‖M v_i‖` — which
/// makes `u_iᵀ M v_i = σ_i ≥ 0` hold by construction, so no separate sign
/// alignment pass is required. Directions with (numerically) zero singular
/// value are free in the Procrustes solution; they are filled in by
/// Gram–Schmidt completion, keeping `R` orthogonal for rank-deficient
/// inputs too.
fn svd_rotation(m: &Matrix) -> Matrix {
    let d = m.rows();
    let mtm = m.transpose().matmul(&m);
    let (_, v) = symmetric_eigen(&mtm);
    let mv = m.matmul(&v); // column i = M v_i, whose norm is σ_i
    let sigma: Vec<f64> = (0..d)
        .map(|i| (0..d).map(|r| mv[(r, i)] * mv[(r, i)]).sum::<f64>().sqrt())
        .collect();
    let sigma_max = sigma.iter().fold(0.0f64, |acc, &s| acc.max(s));
    // Rows of `ut` are the left singular vectors; rows for negligible σ_i
    // stay zero and are replaced by the Gram–Schmidt completion.
    let mut ut = Matrix::zeros(d, d);
    for i in 0..d {
        if sigma[i] > sigma_max * 1e-12 && sigma[i] > 0.0 {
            for r in 0..d {
                ut[(i, r)] = mv[(r, i)] / sigma[i];
            }
        }
    }
    gram_schmidt_rows(&mut ut);
    // R = U V^T with U = utᵀ.
    ut.transpose().matmul(&v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id.rows(), 3);
        assert_eq!(id.cols(), 3);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn apply_multiplies_vector() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]);
        assert_eq!(a.apply(&[2.0, 3.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_rows() {
        let mut m = Matrix::from_vec(
            3,
            3,
            vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0],
        );
        gram_schmidt_rows(&mut m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|c| m[(i, c)] * m[(j, c)]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "rows {i},{j}");
            }
        }
    }

    #[test]
    fn jacobi_eigen_recovers_known_spectrum() {
        // Symmetric matrix with known eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // A v = lambda v for the leading eigenvector.
        let v0: Vec<f64> = (0..2).map(|r| vecs[(r, 0)]).collect();
        let av = a.apply(&v0);
        for r in 0..2 {
            assert!((av[r] - 3.0 * v0[r]).abs() < 1e-8);
        }
    }

    #[test]
    fn procrustes_recovers_a_known_rotation() {
        // B = A R for a known rotation R (90 degrees in 2D); Procrustes must
        // recover R.
        let a = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 1.0, -1.0, 3.0]);
        let r_true = Matrix::from_vec(2, 2, vec![0.0, -1.0, 1.0, 0.0]);
        let b = a.matmul(&r_true);
        let r = procrustes_rotation(&a, &b);
        assert!(r.distance(&r_true) < 1e-6, "{r:?}");
    }

    #[test]
    fn procrustes_result_is_orthogonal() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0]);
        let b = Matrix::from_vec(3, 3, vec![0.3, 1.0, 0.0, 2.0, -0.5, 1.0, 1.0, 0.0, 2.0]);
        let r = procrustes_rotation(&a, &b);
        let should_be_identity = r.transpose().matmul(&r);
        assert!(should_be_identity.distance(&Matrix::identity(3)) < 1e-6);
    }

    #[test]
    fn invert_recovers_identity_and_rejects_singular() {
        let m = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = invert(&m).expect("well conditioned");
        assert!(m.matmul(&inv).distance(&Matrix::identity(3)) < 1e-9);
        let singular = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(invert(&singular).is_none());
    }

    #[test]
    fn polar_and_svd_routes_agree_on_nonsingular_input() {
        let a = Matrix::from_vec(
            4,
            3,
            vec![1.0, 0.2, -0.5, 0.3, 2.0, 1.0, -1.0, 0.7, 0.1, 0.4, -0.6, 1.5],
        );
        let b = Matrix::from_vec(
            4,
            3,
            vec![0.9, -0.1, 0.3, 1.2, 0.8, -0.4, 0.0, 1.1, 0.6, -0.7, 0.5, 0.2],
        );
        let m = a.transpose().matmul(&b);
        let polar = polar_orthogonal_factor(&m).expect("M is nonsingular");
        let svd = svd_rotation(&m);
        assert!(polar.distance(&svd) < 1e-6, "{}", polar.distance(&svd));
    }

    #[test]
    fn thin_route_attains_the_full_svd_objective() {
        // n < d: the thin row-space route and the full d x d SVD route are
        // both minimizers, so the attained ||A R - B||_F must agree even
        // though the free completion directions may differ.
        let a = Matrix::from_vec(2, 4, vec![1.0, 0.5, -0.3, 2.0, 0.7, -1.0, 0.4, 0.1]);
        let b = Matrix::from_vec(2, 4, vec![0.2, 1.0, 0.8, -0.5, 1.5, 0.3, -0.2, 0.9]);
        let r_thin = procrustes_rotation(&a, &b);
        let orthogonality = r_thin.transpose().matmul(&r_thin);
        assert!(orthogonality.distance(&Matrix::identity(4)) < 1e-9);
        let r_full = svd_rotation(&a.transpose().matmul(&b));
        let thin_obj = a.matmul(&r_thin).distance(&b);
        let full_obj = a.matmul(&r_full).distance(&b);
        assert!(
            (thin_obj - full_obj).abs() < 1e-9,
            "{thin_obj} vs {full_obj}"
        );
    }

    #[test]
    fn procrustes_handles_rank_deficient_inputs() {
        // Rank-1 A makes M = AᵀB singular, forcing the SVD fallback; the
        // result must still be orthogonal.
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0]);
        let b = Matrix::from_vec(2, 3, vec![0.5, 1.0, 0.0, 1.0, 2.0, 0.0]);
        let r = procrustes_rotation(&a, &b);
        let should_be_identity = r.transpose().matmul(&r);
        assert!(should_be_identity.distance(&Matrix::identity(3)) < 1e-6);
    }
}
