//! Small dense-matrix kernel.
//!
//! Only what the summarizers need: row-major matrices, multiplication,
//! transpose, Gram–Schmidt orthonormalization, a cyclic Jacobi
//! eigendecomposition for symmetric matrices, and the orthogonal Procrustes
//! solution used to train OPQ rotations. Dimensions here are small (at most
//! a few hundred), so `O(d³)` algorithms in `f64` are both fast enough and
//! numerically robust.

/// A row-major dense matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The row-major value buffer (persistence accessor; pairs with
    /// [`Matrix::from_vec`]).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector (`self * v`).
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm of the difference to another matrix.
    pub fn distance(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Orthonormalizes the rows of `m` in place with modified Gram–Schmidt.
/// Rows that become numerically zero are replaced by canonical basis vectors
/// so the result always has full rank.
pub fn gram_schmidt_rows(m: &mut Matrix) {
    let cols = m.cols();
    for i in 0..m.rows() {
        // Subtract projections on previous rows.
        for j in 0..i {
            let dot: f64 = (0..cols).map(|c| m[(i, c)] * m[(j, c)]).sum();
            for c in 0..cols {
                m[(i, c)] -= dot * m[(j, c)];
            }
        }
        let norm: f64 = (0..cols).map(|c| m[(i, c)] * m[(i, c)]).sum::<f64>().sqrt();
        if norm < 1e-12 {
            for c in 0..cols {
                m[(i, c)] = if c == i % cols { 1.0 } else { 0.0 };
            }
        } else {
            for c in 0..cols {
                m[(i, c)] /= norm;
            }
        }
    }
}

/// Eigendecomposition of a symmetric matrix with the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` where column `j` of the eigenvector
/// matrix corresponds to `eigenvalues[j]`, sorted in decreasing order.
pub fn symmetric_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if m[(p, q)].abs() < 1e-18 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, (_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, *old_col)];
        }
    }
    (eigenvalues, vectors)
}

/// Solves the orthogonal Procrustes problem: the rotation `R` minimizing
/// `|| A R - B ||_F` over orthogonal matrices, via the SVD of `Aᵀ B`
/// (computed from two symmetric eigendecompositions).
pub fn procrustes_rotation(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let m = a.transpose().matmul(b); // d x d
    // SVD of M: M = U S V^T, with U from eigenvectors of M M^T and V from
    // eigenvectors of M^T M. Signs are aligned through M.
    let mmt = m.matmul(&m.transpose());
    let mtm = m.transpose().matmul(&m);
    let (_, u) = symmetric_eigen(&mmt);
    let (_, v) = symmetric_eigen(&mtm);
    // Align sign: for each singular direction, require u_i^T M v_i >= 0.
    let d = m.rows();
    let mut u_aligned = u.clone();
    for i in 0..d {
        let mut s = 0.0;
        for r in 0..d {
            let mut mv = 0.0;
            for c in 0..d {
                mv += m[(r, c)] * v[(c, i)];
            }
            s += u[(r, i)] * mv;
        }
        if s < 0.0 {
            for r in 0..d {
                u_aligned[(r, i)] = -u[(r, i)];
            }
        }
    }
    // R = U V^T
    u_aligned.matmul(&v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id.rows(), 3);
        assert_eq!(id.cols(), 3);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn apply_multiplies_vector() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]);
        assert_eq!(a.apply(&[2.0, 3.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_rows() {
        let mut m = Matrix::from_vec(
            3,
            3,
            vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0],
        );
        gram_schmidt_rows(&mut m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|c| m[(i, c)] * m[(j, c)]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "rows {i},{j}");
            }
        }
    }

    #[test]
    fn jacobi_eigen_recovers_known_spectrum() {
        // Symmetric matrix with known eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // A v = lambda v for the leading eigenvector.
        let v0: Vec<f64> = (0..2).map(|r| vecs[(r, 0)]).collect();
        let av = a.apply(&v0);
        for r in 0..2 {
            assert!((av[r] - 3.0 * v0[r]).abs() < 1e-8);
        }
    }

    #[test]
    fn procrustes_recovers_a_known_rotation() {
        // B = A R for a known rotation R (90 degrees in 2D); Procrustes must
        // recover R.
        let a = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 1.0, -1.0, 3.0]);
        let r_true = Matrix::from_vec(2, 2, vec![0.0, -1.0, 1.0, 0.0]);
        let b = a.matmul(&r_true);
        let r = procrustes_rotation(&a, &b);
        assert!(r.distance(&r_true) < 1e-6, "{r:?}");
    }

    #[test]
    fn procrustes_result_is_orthogonal() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0]);
        let b = Matrix::from_vec(3, 3, vec![0.3, 1.0, 0.0, 2.0, -0.5, 1.0, 1.0, 0.0, 2.0]);
        let r = procrustes_rotation(&a, &b);
        let should_be_identity = r.transpose().matmul(&r);
        assert!(should_be_identity.distance(&Matrix::identity(3)) < 1e-6);
    }
}
