//! Adaptive Piecewise Constant Approximation (APCA) and its extended form
//! EAPCA.
//!
//! APCA (Chakrabarti et al.) represents a series with `l` variable-length
//! segments, each summarized by its mean. EAPCA (Wang et al., the DSTree
//! paper) additionally stores the standard deviation of each segment, which
//! gives the DSTree both a lower- and an upper-bounding distance.
//!
//! The adaptive segmentation implemented here follows the classic
//! bottom-up merge strategy: start from single-point segments and repeatedly
//! merge the adjacent pair whose merge increases the within-segment variance
//! the least, until `l` segments remain.

/// A segment `[start, end)` of a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First point of the segment (inclusive).
    pub start: usize,
    /// One past the last point of the segment (exclusive).
    pub end: usize,
}

impl Segment {
    /// Number of points covered by this segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment covers no points.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Mean and standard deviation of a series restricted to one segment —
/// the per-segment synopsis of EAPCA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentStats {
    /// Mean of the points in the segment.
    pub mean: f32,
    /// Population standard deviation of the points in the segment.
    pub std: f32,
}

/// Computes the mean/std synopsis of `series` over each segment of
/// `segments` (the EAPCA representation for a fixed segmentation).
pub fn eapca_segments(series: &[f32], segments: &[Segment]) -> Vec<SegmentStats> {
    segments
        .iter()
        .map(|seg| segment_stats(series, *seg))
        .collect()
}

/// Mean and standard deviation of `series[seg.start..seg.end]`.
pub fn segment_stats(series: &[f32], seg: Segment) -> SegmentStats {
    let slice = &series[seg.start..seg.end];
    let n = slice.len().max(1) as f32;
    let mean = slice.iter().sum::<f32>() / n;
    let var = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    SegmentStats {
        mean,
        std: var.sqrt(),
    }
}

/// Splits `[0, series_len)` into `count` equal-width segments (the
/// non-adaptive segmentation used to initialize DSTree nodes and by plain
/// PAA/SAX).
pub fn uniform_segments(series_len: usize, count: usize) -> Vec<Segment> {
    let count = count.clamp(1, series_len.max(1));
    (0..count)
        .map(|s| Segment {
            start: s * series_len / count,
            end: (s + 1) * series_len / count,
        })
        .collect()
}

/// Adaptive (APCA-style) segmentation of `series` into at most
/// `target_segments` variable-length segments, chosen to minimize the total
/// within-segment squared error via bottom-up merging.
pub fn adaptive_segments(series: &[f32], target_segments: usize) -> Vec<Segment> {
    let n = series.len();
    let target = target_segments.clamp(1, n.max(1));
    if n == 0 {
        return vec![];
    }
    // Start with one segment per point; merge greedily.
    let mut segments: Vec<Segment> = (0..n)
        .map(|i| Segment {
            start: i,
            end: i + 1,
        })
        .collect();
    while segments.len() > target {
        // Find the adjacent pair whose merge has the smallest SSE increase.
        let mut best = 0usize;
        let mut best_cost = f32::INFINITY;
        for i in 0..segments.len() - 1 {
            let merged = Segment {
                start: segments[i].start,
                end: segments[i + 1].end,
            };
            let cost = sse(series, merged) - sse(series, segments[i]) - sse(series, segments[i + 1]);
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        segments[best].end = segments[best + 1].end;
        segments.remove(best + 1);
    }
    segments
}

/// APCA representation: adaptive segments plus their means.
pub fn apca(series: &[f32], target_segments: usize) -> Vec<(Segment, f32)> {
    adaptive_segments(series, target_segments)
        .into_iter()
        .map(|seg| (seg, segment_stats(series, seg).mean))
        .collect()
}

fn sse(series: &[f32], seg: Segment) -> f32 {
    let slice = &series[seg.start..seg.end];
    let n = slice.len() as f32;
    let mean = slice.iter().sum::<f32>() / n;
    slice.iter().map(|v| (v - mean) * (v - mean)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_segments_cover_series_exactly() {
        for n in [1usize, 7, 16, 100] {
            for c in [1usize, 3, 4, 16] {
                let segs = uniform_segments(n, c);
                assert_eq!(segs[0].start, 0);
                assert_eq!(segs.last().unwrap().end, n);
                for w in segs.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "segments must be contiguous");
                }
                assert!(segs.iter().all(|s| !s.is_empty()));
            }
        }
    }

    #[test]
    fn segment_stats_matches_manual_computation() {
        let s = [1.0f32, 3.0, 5.0, 7.0];
        let st = segment_stats(&s, Segment { start: 0, end: 4 });
        assert!((st.mean - 4.0).abs() < 1e-6);
        assert!((st.std - 5.0f32.sqrt()).abs() < 1e-5);
        let st2 = segment_stats(&s, Segment { start: 2, end: 4 });
        assert!((st2.mean - 6.0).abs() < 1e-6);
    }

    #[test]
    fn eapca_segments_one_stat_per_segment() {
        let s: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let segs = uniform_segments(12, 3);
        let stats = eapca_segments(&s, &segs);
        assert_eq!(stats.len(), 3);
        assert!((stats[0].mean - 1.5).abs() < 1e-6);
        assert!((stats[2].mean - 9.5).abs() < 1e-6);
    }

    #[test]
    fn adaptive_segmentation_finds_the_step() {
        // A step function: the adaptive segmentation with 2 segments should
        // split exactly at the step.
        let mut s = vec![0.0f32; 10];
        s.extend(vec![10.0f32; 6]);
        let segs = adaptive_segments(&s, 2);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], Segment { start: 0, end: 10 });
        assert_eq!(segs[1], Segment { start: 10, end: 16 });
    }

    #[test]
    fn apca_means_follow_segments() {
        let mut s = vec![1.0f32; 4];
        s.extend(vec![5.0f32; 4]);
        let rep = apca(&s, 2);
        assert_eq!(rep.len(), 2);
        assert!((rep[0].1 - 1.0).abs() < 1e-6);
        assert!((rep[1].1 - 5.0).abs() < 1e-6);
    }

    #[test]
    fn adaptive_segments_degenerate_inputs() {
        assert!(adaptive_segments(&[], 4).is_empty());
        let one = adaptive_segments(&[1.0], 4);
        assert_eq!(one, vec![Segment { start: 0, end: 1 }]);
        let clamped = adaptive_segments(&[1.0, 2.0, 3.0], 1);
        assert_eq!(clamped, vec![Segment { start: 0, end: 3 }]);
    }
}
