//! # hydra-summarize
//!
//! Summarization (dimensionality-reduction) techniques used by the
//! similarity search methods of the Lernaean Hydra study:
//!
//! * [`mod@paa`] — Piecewise Aggregate Approximation, the first step of SAX.
//! * [`apca`] — Adaptive Piecewise Constant Approximation and its extended
//!   variant EAPCA (mean + standard deviation per segment) used by DSTree.
//! * [`sax`] — Symbolic Aggregate approXimation and the indexable iSAX
//!   representation with variable per-segment cardinality.
//! * [`dft`] — Discrete Fourier Transform summarization (the paper's
//!   modified VA+file replaces KLT with DFT).
//! * [`quantization`] — scalar quantization (VA+file cells), k-means, product
//!   quantization and optimized product quantization (IMI).
//! * [`projection`] — Gaussian random projections (SRS, QALSH signatures),
//!   backed by the Johnson–Lindenstrauss lemma.
//! * [`linalg`] — the small dense-matrix kernel (Gram–Schmidt, Jacobi
//!   eigendecomposition, Procrustes) needed to train OPQ rotations.
//!
//! Every technique that supports it exposes a **lower-bounding** distance:
//! distances computed in the reduced space never exceed the true Euclidean
//! distance, which is what makes exact and ε-approximate pruning sound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apca;
pub mod dft;
pub mod linalg;
pub mod paa;
pub mod projection;
pub mod quantization;
#[cfg(test)]
mod proptests;
pub mod sax;

pub use apca::{eapca_segments, Segment, SegmentStats};
pub use dft::DftSummarizer;
pub use paa::{paa, paa_lower_bound};
pub use projection::GaussianProjection;
pub use quantization::{KMeans, OptimizedProductQuantizer, ProductQuantizer, ScalarQuantizer};
pub use sax::{IsaxWord, SaxParams};
