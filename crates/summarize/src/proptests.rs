//! Property-based tests of the summarization invariants every index relies
//! on: all reduced-space distances must lower-bound the true Euclidean
//! distance, and encode/decode round trips must stay inside their cells.

#![cfg(test)]

use proptest::prelude::*;

use crate::apca::{eapca_segments, uniform_segments};
use crate::dft::DftSummarizer;
use crate::paa::{paa, paa_lower_bound};
use crate::quantization::ScalarQuantizer;
use crate::sax::{mindist_paa_isax, normal_breakpoints, sax_word, SaxParams};

fn series_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paa_lower_bound_never_exceeds_euclidean(
        a in series_strategy(64),
        b in series_strategy(64),
        segments in 1usize..32,
    ) {
        let lb = paa_lower_bound(&paa(&a, segments), &paa(&b, segments), 64);
        let d = hydra_core::euclidean(&a, &b);
        prop_assert!(lb <= d + 1e-2, "PAA lower bound {lb} > distance {d}");
    }

    #[test]
    fn sax_mindist_never_exceeds_euclidean(
        a in series_strategy(64),
        b in series_strategy(64),
    ) {
        // SAX assumes z-normalized series.
        let a = hydra_core::znormalized(&a);
        let b = hydra_core::znormalized(&b);
        let params = SaxParams::new(8, 8);
        let breakpoints = normal_breakpoints(params.max_cardinality());
        let word = sax_word(&b, &params, &breakpoints);
        let lb = mindist_paa_isax(&paa(&a, 8), &word, &breakpoints, 64, 8);
        let d = hydra_core::euclidean(&a, &b);
        prop_assert!(lb <= d + 1e-2, "SAX MINDIST {lb} > distance {d}");
    }

    #[test]
    fn dft_lower_bound_never_exceeds_euclidean(
        a in series_strategy(32),
        b in series_strategy(32),
        coeffs in 1usize..16,
    ) {
        let dft = DftSummarizer::new(32, coeffs);
        let lb = dft.lower_bound(&dft.transform(&a), &dft.transform(&b));
        let d = hydra_core::euclidean(&a, &b);
        prop_assert!(lb <= d + 1e-2, "DFT lower bound {lb} > distance {d}");
    }

    #[test]
    fn eapca_stats_are_within_segment_range(
        s in series_strategy(48),
        segments in 1usize..12,
    ) {
        let segs = uniform_segments(48, segments);
        for (seg, st) in segs.iter().zip(eapca_segments(&s, &segs)) {
            let slice = &s[seg.start..seg.end];
            let min = slice.iter().copied().fold(f32::INFINITY, f32::min);
            let max = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(st.mean >= min - 1e-3 && st.mean <= max + 1e-3);
            prop_assert!(st.std >= 0.0);
            prop_assert!(st.std <= (max - min) + 1e-3);
        }
    }

    #[test]
    fn scalar_quantizer_bounds_bracket_distances_for_training_points(
        flat in proptest::collection::vec(-50.0f32..50.0, 16 * 20),
    ) {
        let rows: Vec<&[f32]> = flat.chunks(16).collect();
        let sq = ScalarQuantizer::train(&rows, 3);
        let query = rows[0];
        for v in rows.iter().skip(1) {
            let code = sq.encode(v);
            let d = hydra_core::euclidean(query, v);
            prop_assert!(sq.lower_bound(query, &code) <= d + 1e-2);
            prop_assert!(sq.upper_bound(query, &code) + 1e-2 >= d);
        }
    }

    #[test]
    fn paa_preserves_mean(s in series_strategy(40), segments in 1usize..20) {
        // The weighted mean of the PAA values equals the series mean.
        let p = paa(&s, segments);
        let segs = uniform_segments(40, segments.min(40));
        let weighted: f32 = p
            .iter()
            .zip(segs.iter())
            .map(|(v, seg)| v * seg.len() as f32)
            .sum::<f32>()
            / 40.0;
        let mean: f32 = s.iter().sum::<f32>() / 40.0;
        prop_assert!((weighted - mean).abs() < 1e-2);
    }
}
