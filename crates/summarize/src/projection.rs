//! Gaussian random projections.
//!
//! SRS and (indirectly) QALSH rely on projecting the original
//! `d`-dimensional data onto `m ≪ d` random directions whose components are
//! i.i.d. standard normal. The Johnson–Lindenstrauss lemma guarantees that
//! pairwise distances are approximately preserved with high probability, and
//! 2-stable projections guarantee that the projected difference of two
//! points is normally distributed with scale proportional to their original
//! Euclidean distance — the property both LSH methods build on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `m × d` Gaussian random projection matrix.
#[derive(Debug, Clone)]
pub struct GaussianProjection {
    input_dim: usize,
    output_dim: usize,
    /// Row-major projection matrix (`output_dim` rows of `input_dim`).
    matrix: Vec<f32>,
}

impl GaussianProjection {
    /// Samples a projection from `input_dim` to `output_dim` dimensions
    /// using the given seed.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix = (0..input_dim * output_dim)
            .map(|_| standard_normal(&mut rng))
            .collect();
        Self {
            input_dim,
            output_dim,
            matrix,
        }
    }

    /// Original dimensionality accepted by [`GaussianProjection::project`].
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Dimensionality of projected vectors.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Projects a vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.input_dim()`.
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.input_dim, "dimension mismatch");
        (0..self.output_dim)
            .map(|r| {
                let row = &self.matrix[r * self.input_dim..(r + 1) * self.input_dim];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Projects onto a single direction `r` (used by QALSH, which treats
    /// each direction as an independent hash function).
    pub fn project_one(&self, v: &[f32], r: usize) -> f32 {
        assert!(r < self.output_dim);
        let row = &self.matrix[r * self.input_dim..(r + 1) * self.input_dim];
        row.iter().zip(v).map(|(a, b)| a * b).sum()
    }

    /// Memory footprint of the projection matrix in bytes.
    pub fn memory_footprint(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<f32>()
    }
}

/// Samples a standard normal variate with the Box–Muller transform (keeps
/// the dependency surface to `rand`'s uniform sampling only).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::euclidean;

    #[test]
    fn projection_is_deterministic_per_seed() {
        let p1 = GaussianProjection::new(32, 8, 7);
        let p2 = GaussianProjection::new(32, 8, 7);
        let p3 = GaussianProjection::new(32, 8, 8);
        let v: Vec<f32> = (0..32).map(|i| i as f32).collect();
        assert_eq!(p1.project(&v), p2.project(&v));
        assert_ne!(p1.project(&v), p3.project(&v));
        assert_eq!(p1.input_dim(), 32);
        assert_eq!(p1.output_dim(), 8);
        assert_eq!(p1.memory_footprint(), 32 * 8 * 4);
    }

    #[test]
    fn project_one_matches_full_projection() {
        let p = GaussianProjection::new(16, 4, 3);
        let v: Vec<f32> = (0..16).map(|i| (i as f32).cos()).collect();
        let full = p.project(&v);
        for r in 0..4 {
            assert!((full[r] - p.project_one(&v, r)).abs() < 1e-6);
        }
    }

    #[test]
    fn jl_distances_roughly_preserved_on_average() {
        // With enough projected dimensions, the expected squared projected
        // distance equals m times the original squared distance. Check the
        // ratio is within a loose factor for an average over pairs.
        let d = 64;
        let m = 32;
        let p = GaussianProjection::new(d, m, 99);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ratio_sum = 0.0f64;
        let pairs = 30;
        for _ in 0..pairs {
            let a: Vec<f32> = (0..d).map(|_| standard_normal(&mut rng)).collect();
            let b: Vec<f32> = (0..d).map(|_| standard_normal(&mut rng)).collect();
            let orig = euclidean(&a, &b);
            let proj = euclidean(&p.project(&a), &p.project(&b)) / (m as f32).sqrt();
            ratio_sum += (proj / orig) as f64;
        }
        let mean_ratio = ratio_sum / pairs as f64;
        assert!(
            (0.8..1.2).contains(&mean_ratio),
            "JL mean distance ratio {mean_ratio} outside tolerance"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn project_rejects_wrong_dim() {
        let p = GaussianProjection::new(8, 2, 1);
        let _ = p.project(&[0.0; 4]);
    }
}
