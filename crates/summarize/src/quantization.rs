//! Quantization-based summarizations.
//!
//! * [`ScalarQuantizer`] — per-dimension adaptive (equi-depth) scalar
//!   quantization, the cell grid of the VA+file. Provides lower and upper
//!   bounding distances between a query and a cell.
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding; the building
//!   block of product quantization and of FLANN's hierarchical k-means tree.
//! * [`ProductQuantizer`] — splits vectors into `m` subspaces and quantizes
//!   each with its own codebook; supports asymmetric distance computation
//!   (ADC) through per-query lookup tables.
//! * [`OptimizedProductQuantizer`] — product quantization preceded by a
//!   learned orthonormal rotation (OPQ), trained by alternating between
//!   codebook updates and an orthogonal Procrustes solve.

use crate::linalg::{procrustes_rotation, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Scalar quantization (VA+file cells)
// ---------------------------------------------------------------------------

/// Per-dimension adaptive scalar quantizer.
///
/// For every dimension the training values are split into `2^bits`
/// equi-depth cells; a vector is encoded as one cell index per dimension.
/// Distances between a query and a cell are bounded from below (distance to
/// the nearest cell edge) and above (distance to the farthest cell edge),
/// exactly as the VA-file / VA+file do.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    bits: u8,
    /// Per dimension: cell edges of length `2^bits + 1` (first = training
    /// min, last = training max).
    edges: Vec<Vec<f32>>,
}

impl ScalarQuantizer {
    /// Trains a quantizer with `bits` bits per dimension from training
    /// vectors.
    ///
    /// # Panics
    /// Panics if `training` is empty or `bits == 0`.
    pub fn train(training: &[&[f32]], bits: u8) -> Self {
        assert!(!training.is_empty(), "training sample must not be empty");
        assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
        let dims = training[0].len();
        let cells = 1usize << bits;
        let mut edges = Vec::with_capacity(dims);
        let mut column = Vec::with_capacity(training.len());
        for d in 0..dims {
            column.clear();
            column.extend(training.iter().map(|v| v[d]));
            column.sort_by(f32::total_cmp);
            let mut e = Vec::with_capacity(cells + 1);
            for c in 0..=cells {
                // Equi-depth edges: the c-th edge is the (c/cells)-quantile of
                // the training values (VA+ adapts cell sizes to the data).
                let idx = ((c * (column.len() - 1)) as f64 / cells as f64).round() as usize;
                e.push(column[idx.min(column.len() - 1)]);
            }
            // Guard against duplicate edges in constant dimensions.
            for i in 1..e.len() {
                if e[i] <= e[i - 1] {
                    e[i] = e[i - 1] + f32::EPSILON;
                }
            }
            edges.push(e);
        }
        Self { bits, edges }
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.edges.len()
    }

    /// Number of cells per dimension (`2^bits`).
    pub fn cells(&self) -> usize {
        1usize << self.bits
    }

    /// Encodes a vector into one cell index per dimension.
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        assert_eq!(v.len(), self.dims(), "dimension mismatch");
        v.iter()
            .enumerate()
            .map(|(d, &x)| self.encode_dim(d, x))
            .collect()
    }

    fn encode_dim(&self, dim: usize, x: f32) -> u16 {
        let e = &self.edges[dim];
        // Find the cell whose interval [e[c], e[c+1]) contains x.
        let cells = self.cells();
        let pos = e.partition_point(|edge| *edge <= x);
        (pos.saturating_sub(1)).min(cells - 1) as u16
    }

    /// Lower bound on the Euclidean distance between `query` and any vector
    /// whose code is `code`.
    pub fn lower_bound(&self, query: &[f32], code: &[u16]) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..self.dims() {
            let e = &self.edges[d];
            let c = code[d] as usize;
            let lo = e[c];
            let hi = e[c + 1];
            let q = query[d];
            let diff = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc.sqrt()
    }

    /// Upper bound on the Euclidean distance between `query` and any vector
    /// whose code is `code`.
    pub fn upper_bound(&self, query: &[f32], code: &[u16]) -> f32 {
        let mut acc = 0.0f32;
        for d in 0..self.dims() {
            let e = &self.edges[d];
            let c = code[d] as usize;
            let lo = e[c];
            let hi = e[c + 1];
            let q = query[d];
            let diff = (q - lo).abs().max((q - hi).abs());
            acc += diff * diff;
        }
        acc.sqrt()
    }

    /// Approximate reconstruction: the center of each cell.
    pub fn decode(&self, code: &[u16]) -> Vec<f32> {
        (0..self.dims())
            .map(|d| {
                let e = &self.edges[d];
                let c = code[d] as usize;
                (e[c] + e[c + 1]) / 2.0
            })
            .collect()
    }

    /// Bytes needed to store one code (packed at `bits` per dimension).
    pub fn code_bytes(&self) -> usize {
        (self.dims() * self.bits as usize).div_ceil(8)
    }

    /// Per-dimension cell edges (persistence accessor; pairs with
    /// [`ScalarQuantizer::from_parts`]).
    pub fn edges(&self) -> &[Vec<f32>] {
        &self.edges
    }

    /// Reassembles a trained quantizer from its stored parts.
    ///
    /// # Panics
    /// Panics if `bits` is outside `1..=16` or any dimension does not carry
    /// exactly `2^bits + 1` edges.
    pub fn from_parts(bits: u8, edges: Vec<Vec<f32>>) -> Self {
        assert!(bits > 0 && bits <= 16, "bits must be in 1..=16");
        let cells = 1usize << bits;
        assert!(
            edges.iter().all(|e| e.len() == cells + 1),
            "each dimension must carry 2^bits + 1 edges"
        );
        Self { bits, edges }
    }
}

// ---------------------------------------------------------------------------
// k-means
// ---------------------------------------------------------------------------

/// Lloyd's k-means with k-means++ initialization.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Flattened centroids (`k` rows of `dim` values).
    centroids: Vec<f32>,
    dim: usize,
    k: usize,
}

impl KMeans {
    /// Fits `k` centroids to the training vectors with at most `max_iters`
    /// Lloyd iterations.
    ///
    /// # Panics
    /// Panics if `training` is empty or `k == 0`.
    pub fn fit(training: &[&[f32]], k: usize, max_iters: usize, seed: u64) -> Self {
        assert!(!training.is_empty(), "training sample must not be empty");
        assert!(k > 0, "k must be positive");
        let dim = training[0].len();
        let k = k.min(training.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
        let first = rng.gen_range(0..training.len());
        centroids.extend_from_slice(training[first]);
        let mut dists: Vec<f32> = training
            .iter()
            .map(|v| hydra_core::squared_euclidean(v, training[first]))
            .collect();
        while centroids.len() / dim < k {
            let total: f32 = dists.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..training.len())
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = training.len() - 1;
                for (i, &d) in dists.iter().enumerate() {
                    if target < d {
                        chosen = i;
                        break;
                    }
                    target -= d;
                }
                chosen
            };
            centroids.extend_from_slice(training[pick]);
            let c = &training[pick];
            for (i, v) in training.iter().enumerate() {
                let d = hydra_core::squared_euclidean(v, c);
                if d < dists[i] {
                    dists[i] = d;
                }
            }
        }

        let mut km = Self { centroids, dim, k };

        // Lloyd iterations.
        let mut assignment = vec![0usize; training.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, v) in training.iter().enumerate() {
                let a = km.assign(v);
                if a != assignment[i] {
                    assignment[i] = a;
                    changed = true;
                }
            }
            let mut sums = vec![0.0f64; km.k * dim];
            let mut counts = vec![0usize; km.k];
            for (i, v) in training.iter().enumerate() {
                let a = assignment[i];
                counts[a] += 1;
                for (d, &x) in v.iter().enumerate() {
                    sums[a * dim + d] += x as f64;
                }
            }
            for c in 0..km.k {
                if counts[c] == 0 {
                    // Re-seed empty clusters from a random training point.
                    let pick = rng.gen_range(0..training.len());
                    km.centroids[c * dim..(c + 1) * dim].copy_from_slice(training[pick]);
                    continue;
                }
                for d in 0..dim {
                    km.centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
            if !changed {
                break;
            }
        }
        km
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dimensionality of the centroids.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of centroid `c`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v`.
    pub fn assign(&self, v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k {
            let d = hydra_core::squared_euclidean(v, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Squared distances from `v` to every centroid.
    pub fn distances(&self, v: &[f32]) -> Vec<f32> {
        (0..self.k)
            .map(|c| hydra_core::squared_euclidean(v, self.centroid(c)))
            .collect()
    }

    /// Memory footprint of the codebook in bytes.
    pub fn memory_footprint(&self) -> usize {
        self.centroids.len() * std::mem::size_of::<f32>()
    }

    /// The flattened centroid buffer (`k` rows of `dim` values; persistence
    /// accessor, pairs with [`KMeans::from_parts`]).
    pub fn centroids_flat(&self) -> &[f32] {
        &self.centroids
    }

    /// Reassembles a fitted codebook from its stored parts.
    ///
    /// # Panics
    /// Panics if the buffer does not hold exactly `k * dim` values or either
    /// dimension is zero.
    pub fn from_parts(centroids: Vec<f32>, dim: usize, k: usize) -> Self {
        assert!(k > 0 && dim > 0, "k and dim must be positive");
        assert_eq!(centroids.len(), k * dim, "centroid buffer shape mismatch");
        Self { centroids, dim, k }
    }
}

// ---------------------------------------------------------------------------
// Product quantization
// ---------------------------------------------------------------------------

/// Product quantizer: the vector is split into `m` contiguous subvectors,
/// each quantized with its own `k`-centroid codebook.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    subquantizers: Vec<KMeans>,
    dim: usize,
    sub_dim: usize,
}

impl ProductQuantizer {
    /// Trains a product quantizer with `m` subspaces of `k` centroids each.
    ///
    /// # Panics
    /// Panics if `training` is empty, or if the dimensionality is not a
    /// multiple of `m`.
    pub fn train(training: &[&[f32]], m: usize, k: usize, max_iters: usize, seed: u64) -> Self {
        assert!(!training.is_empty(), "training sample must not be empty");
        let dim = training[0].len();
        assert!(m > 0 && dim % m == 0, "dimension must be a multiple of m");
        let sub_dim = dim / m;
        let mut subquantizers = Vec::with_capacity(m);
        let mut sub_training: Vec<Vec<f32>> = Vec::with_capacity(training.len());
        for s in 0..m {
            sub_training.clear();
            sub_training.extend(
                training
                    .iter()
                    .map(|v| v[s * sub_dim..(s + 1) * sub_dim].to_vec()),
            );
            let refs: Vec<&[f32]> = sub_training.iter().map(|v| v.as_slice()).collect();
            subquantizers.push(KMeans::fit(&refs, k, max_iters, seed.wrapping_add(s as u64)));
        }
        Self {
            subquantizers,
            dim,
            sub_dim,
        }
    }

    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.subquantizers.len()
    }

    /// Codebook size per subspace.
    pub fn codebook_size(&self) -> usize {
        self.subquantizers[0].k()
    }

    /// Original dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a vector into one centroid id per subspace.
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        self.subquantizers
            .iter()
            .enumerate()
            .map(|(s, q)| q.assign(&v[s * self.sub_dim..(s + 1) * self.sub_dim]) as u16)
            .collect()
    }

    /// Reconstructs the approximate vector for a code.
    pub fn decode(&self, code: &[u16]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for (s, q) in self.subquantizers.iter().enumerate() {
            out.extend_from_slice(q.centroid(code[s] as usize));
        }
        out
    }

    /// Builds the per-query ADC lookup table: `table[s][c]` is the squared
    /// distance between the query's `s`-th subvector and centroid `c` of
    /// subquantizer `s`.
    pub fn distance_table(&self, query: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        self.subquantizers
            .iter()
            .enumerate()
            .map(|(s, q)| q.distances(&query[s * self.sub_dim..(s + 1) * self.sub_dim]))
            .collect()
    }

    /// Builds the ADC lookup tables for a whole batch of queries in a single
    /// pass over the codebooks.
    ///
    /// Per-query construction ([`Self::distance_table`]) walks every
    /// codebook once per query; here each centroid is visited once and
    /// scored against all queries while it is hot in cache, so a batch of
    /// `B` queries costs one codebook pass instead of `B`. The returned
    /// tables are element-for-element identical to what
    /// [`Self::distance_table`] produces for each query (same distance
    /// kernel, same summation order), so batched search results match
    /// per-query search bit for bit.
    pub fn distance_tables(&self, queries: &[&[f32]]) -> Vec<Vec<Vec<f32>>> {
        for q in queries {
            assert_eq!(q.len(), self.dim, "dimension mismatch");
        }
        let mut tables: Vec<Vec<Vec<f32>>> = queries
            .iter()
            .map(|_| Vec::with_capacity(self.subquantizers.len()))
            .collect();
        for (s, sub) in self.subquantizers.iter().enumerate() {
            for table in &mut tables {
                table.push(vec![0.0f32; sub.k()]);
            }
            let lo = s * self.sub_dim;
            let hi = lo + self.sub_dim;
            for c in 0..sub.k() {
                let centroid = sub.centroid(c);
                for (qi, q) in queries.iter().enumerate() {
                    tables[qi][s][c] = hydra_core::squared_euclidean(&q[lo..hi], centroid);
                }
            }
        }
        tables
    }

    /// Asymmetric distance (ADC): approximate Euclidean distance between the
    /// query represented by `table` and the encoded vector `code`.
    pub fn adc_distance(table: &[Vec<f32>], code: &[u16]) -> f32 {
        code.iter()
            .enumerate()
            .map(|(s, &c)| table[s][c as usize])
            .sum::<f32>()
            .sqrt()
    }

    /// Memory footprint of all codebooks in bytes.
    pub fn memory_footprint(&self) -> usize {
        self.subquantizers
            .iter()
            .map(|q| q.memory_footprint())
            .sum()
    }

    /// The per-subspace codebooks (persistence accessor; pairs with
    /// [`ProductQuantizer::from_parts`]).
    pub fn subquantizers(&self) -> &[KMeans] {
        &self.subquantizers
    }

    /// Reassembles a trained product quantizer from its stored parts.
    ///
    /// # Panics
    /// Panics if there are no subquantizers, `dim` is not divisible by their
    /// count, or any subquantizer's dimensionality is not `dim / m`.
    pub fn from_parts(subquantizers: Vec<KMeans>, dim: usize) -> Self {
        let m = subquantizers.len();
        assert!(m > 0 && dim % m == 0, "dimension must be a multiple of m");
        let sub_dim = dim / m;
        assert!(
            subquantizers.iter().all(|q| q.dim() == sub_dim),
            "every subquantizer must cover dim / m dimensions"
        );
        Self {
            subquantizers,
            dim,
            sub_dim,
        }
    }
}

// ---------------------------------------------------------------------------
// Optimized product quantization
// ---------------------------------------------------------------------------

/// Product quantization preceded by a learned orthonormal rotation.
///
/// Training alternates between (1) fitting the PQ codebooks on rotated data
/// and (2) updating the rotation as the orthogonal Procrustes solution
/// aligning the original data with its PQ reconstruction (Ge et al., 2014).
#[derive(Debug, Clone)]
pub struct OptimizedProductQuantizer {
    rotation: Matrix,
    pq: ProductQuantizer,
    dim: usize,
}

impl OptimizedProductQuantizer {
    /// Trains OPQ with `m` subspaces of `k` centroids using `opq_iters`
    /// alternations.
    pub fn train(
        training: &[&[f32]],
        m: usize,
        k: usize,
        kmeans_iters: usize,
        opq_iters: usize,
        seed: u64,
    ) -> Self {
        assert!(!training.is_empty(), "training sample must not be empty");
        let dim = training[0].len();
        let n = training.len();
        let mut rotation = Matrix::identity(dim);

        // Original data as an n x d matrix (f64 for the Procrustes solve).
        let mut x = Matrix::zeros(n, dim);
        for (i, v) in training.iter().enumerate() {
            for (j, &val) in v.iter().enumerate() {
                x[(i, j)] = val as f64;
            }
        }

        let mut rotated: Vec<Vec<f32>> = training.iter().map(|v| v.to_vec()).collect();
        for it in 0..opq_iters.max(1) {
            // (1) Fit PQ on the rotated data.
            let refs: Vec<&[f32]> = rotated.iter().map(|v| v.as_slice()).collect();
            let fitted = ProductQuantizer::train(&refs, m, k, kmeans_iters, seed ^ it as u64);
            // (2) Update the rotation: align X with the reconstructions.
            let mut y = Matrix::zeros(n, dim);
            for (i, v) in rotated.iter().enumerate() {
                let rec = fitted.decode(&fitted.encode(v));
                for (j, &val) in rec.iter().enumerate() {
                    y[(i, j)] = val as f64;
                }
            }
            rotation = procrustes_rotation(&x, &y);
            // Re-rotate the training data for the next iteration.
            for (i, v) in training.iter().enumerate() {
                rotated[i] = Self::rotate_with(&rotation, v);
            }
        }
        // Final codebooks on the final rotation.
        let refs: Vec<&[f32]> = rotated.iter().map(|v| v.as_slice()).collect();
        let pq = ProductQuantizer::train(&refs, m, k, kmeans_iters, seed ^ 0xA5A5);
        Self { rotation, pq, dim }
    }

    fn rotate_with(rotation: &Matrix, v: &[f32]) -> Vec<f32> {
        // x' = x R  (row vector times rotation).
        let d = v.len();
        (0..d)
            .map(|j| {
                (0..d)
                    .map(|i| v[i] as f64 * rotation[(i, j)])
                    .sum::<f64>() as f32
            })
            .collect()
    }

    /// Applies the learned rotation to a vector.
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        Self::rotate_with(&self.rotation, v)
    }

    /// Encodes a vector (rotation followed by PQ encoding).
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        self.pq.encode(&self.rotate(v))
    }

    /// The underlying product quantizer (operating in rotated space).
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Builds the ADC table for a query (rotating it first).
    pub fn distance_table(&self, query: &[f32]) -> Vec<Vec<f32>> {
        self.pq.distance_table(&self.rotate(query))
    }

    /// Builds the ADC tables for a batch of queries in one codebook pass
    /// (each query is rotated first). See
    /// [`ProductQuantizer::distance_tables`].
    pub fn distance_tables(&self, queries: &[&[f32]]) -> Vec<Vec<Vec<f32>>> {
        let rotated: Vec<Vec<f32>> = queries.iter().map(|q| self.rotate(q)).collect();
        let refs: Vec<&[f32]> = rotated.iter().map(|v| v.as_slice()).collect();
        self.pq.distance_tables(&refs)
    }

    /// Memory footprint (rotation matrix plus codebooks).
    pub fn memory_footprint(&self) -> usize {
        self.dim * self.dim * std::mem::size_of::<f64>() + self.pq.memory_footprint()
    }

    /// The learned rotation (persistence accessor; pairs with
    /// [`OptimizedProductQuantizer::from_parts`]).
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// Reassembles a trained OPQ from its stored parts.
    ///
    /// # Panics
    /// Panics unless `rotation` is square with the codebook dimensionality.
    pub fn from_parts(rotation: Matrix, pq: ProductQuantizer) -> Self {
        let dim = pq.dim();
        assert!(
            rotation.rows() == dim && rotation.cols() == dim,
            "rotation must be square in the codebook dimensionality"
        );
        Self { rotation, pq, dim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::euclidean;

    fn training_set(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    fn as_refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn scalar_quantizer_bounds_bracket_true_distance() {
        let train = training_set(200, 8, 1);
        let refs = as_refs(&train);
        let sq = ScalarQuantizer::train(&refs, 3);
        assert_eq!(sq.cells(), 8);
        assert_eq!(sq.dims(), 8);
        assert_eq!(sq.bits(), 3);
        let query = &train[0];
        for v in train.iter().skip(1).take(50) {
            let code = sq.encode(v);
            let d = euclidean(query, v);
            let lb = sq.lower_bound(query, &code);
            let ub = sq.upper_bound(query, &code);
            assert!(lb <= d + 1e-4, "lb {lb} > d {d}");
            // Upper bound only holds for vectors inside the training range;
            // all are, since we encode training vectors themselves.
            assert!(ub + 1e-4 >= d, "ub {ub} < d {d}");
            assert!(lb <= ub + 1e-4);
        }
    }

    #[test]
    fn scalar_quantizer_decode_falls_in_cell() {
        let train = training_set(100, 4, 3);
        let refs = as_refs(&train);
        let sq = ScalarQuantizer::train(&refs, 2);
        let v = &train[10];
        let code = sq.encode(v);
        let rec = sq.decode(&code);
        // The reconstruction must itself encode to the same cells.
        assert_eq!(sq.encode(&rec), code);
        assert!(sq.code_bytes() >= 1);
    }

    #[test]
    fn kmeans_separates_well_separated_clusters() {
        // Two clear clusters around (0,0) and (10,10).
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            data.push(vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            data.push(vec![
                10.0 + rng.gen_range(-0.5f32..0.5),
                10.0 + rng.gen_range(-0.5f32..0.5),
            ]);
        }
        let refs = as_refs(&data);
        let km = KMeans::fit(&refs, 2, 20, 11);
        assert_eq!(km.k(), 2);
        assert_eq!(km.dim(), 2);
        let a = km.assign(&[0.0, 0.0]);
        let b = km.assign(&[10.0, 10.0]);
        assert_ne!(a, b);
        // Centroids land near the cluster centers.
        let near_origin = km.centroid(a);
        assert!(near_origin[0].abs() < 1.0 && near_origin[1].abs() < 1.0);
    }

    #[test]
    fn kmeans_handles_k_larger_than_data() {
        let data = training_set(3, 4, 9);
        let refs = as_refs(&data);
        let km = KMeans::fit(&refs, 10, 5, 1);
        assert_eq!(km.k(), 3);
    }

    #[test]
    fn pq_adc_approximates_true_distance() {
        let data = training_set(400, 16, 21);
        let refs = as_refs(&data);
        let pq = ProductQuantizer::train(&refs, 4, 16, 15, 5);
        assert_eq!(pq.num_subspaces(), 4);
        assert_eq!(pq.codebook_size(), 16);
        assert_eq!(pq.dim(), 16);
        let query = &data[0];
        let table = pq.distance_table(query);
        let mut err_sum = 0.0f32;
        let mut dist_sum = 0.0f32;
        for v in data.iter().skip(1).take(100) {
            let code = pq.encode(v);
            let adc = ProductQuantizer::adc_distance(&table, &code);
            let d = euclidean(query, v);
            err_sum += (adc - d).abs();
            dist_sum += d;
        }
        // The quantization error should be small relative to typical distances.
        assert!(err_sum / dist_sum < 0.35, "relative ADC error too large");
    }

    #[test]
    fn pq_decode_reduces_error_vs_random() {
        let data = training_set(300, 8, 31);
        let refs = as_refs(&data);
        let pq = ProductQuantizer::train(&refs, 2, 32, 15, 3);
        let mut rec_err = 0.0;
        let mut rand_err = 0.0;
        for (i, v) in data.iter().enumerate().take(50) {
            let rec = pq.decode(&pq.encode(v));
            rec_err += euclidean(v, &rec);
            rand_err += euclidean(v, &data[(i + 37) % data.len()]);
        }
        assert!(rec_err < rand_err, "PQ reconstruction should beat random");
    }

    #[test]
    fn batched_distance_tables_match_per_query_tables() {
        let data = training_set(300, 16, 51);
        let refs = as_refs(&data);
        let pq = ProductQuantizer::train(&refs, 4, 16, 10, 5);
        let queries: Vec<&[f32]> = data.iter().take(7).map(|v| v.as_slice()).collect();
        let batched = pq.distance_tables(&queries);
        assert_eq!(batched.len(), 7);
        for (q, table) in queries.iter().zip(batched.iter()) {
            let single = pq.distance_table(q);
            assert_eq!(table, &single, "batched ADC table must be bit-identical");
        }

        let opq = OptimizedProductQuantizer::train(&refs, 4, 16, 8, 2, 52);
        let batched = opq.distance_tables(&queries);
        for (q, table) in queries.iter().zip(batched.iter()) {
            assert_eq!(table, &opq.distance_table(q));
        }
    }

    #[test]
    fn opq_rotation_is_orthonormal_and_improves_or_matches_pq() {
        let data = training_set(200, 8, 41);
        let refs = as_refs(&data);
        let opq = OptimizedProductQuantizer::train(&refs, 2, 16, 10, 3, 13);
        // Rotation preserves norms.
        for v in data.iter().take(20) {
            let r = opq.rotate(v);
            let n1 = euclidean(v, &vec![0.0; 8]);
            let n2 = euclidean(&r, &vec![0.0; 8]);
            assert!((n1 - n2).abs() < 1e-3, "rotation must preserve norms");
        }
        // Codes decode into the rotated space with bounded error.
        let query = &data[0];
        let table = opq.distance_table(query);
        let mut err = 0.0;
        let mut tot = 0.0;
        for v in data.iter().skip(1).take(60) {
            let adc = ProductQuantizer::adc_distance(&table, &opq.encode(v));
            let d = euclidean(query, v);
            err += (adc - d).abs();
            tot += d;
        }
        assert!(err / tot < 0.4);
        assert!(opq.memory_footprint() > 0);
        assert!(opq.pq().memory_footprint() > 0);
    }
}
