//! Symbolic Aggregate approXimation (SAX) and the indexable iSAX
//! representation.
//!
//! SAX discretizes the PAA representation of a z-normalized series into
//! symbols drawn from an alphabet whose breakpoints are the quantiles of the
//! standard normal distribution (Lin et al.). iSAX (Shieh & Keogh) stores
//! each symbol at the maximum cardinality and allows comparisons between
//! words of different per-segment cardinalities by looking only at the most
//! significant bits — this is what makes SAX indexable and lets iSAX tree
//! nodes split one segment at a time by "promoting" one extra bit.

use crate::paa::paa;

/// Maximum number of bits per SAX symbol supported by this implementation
/// (cardinality 2⁸ = 256), matching the iSAX2+ defaults.
pub const MAX_CARD_BITS: u8 = 8;

/// Configuration of a SAX summarization: number of PAA segments and maximum
/// per-segment cardinality (as a number of bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxParams {
    /// Number of PAA segments (the SAX word length `l`).
    pub segments: usize,
    /// Maximum bits per symbol (cardinality = 2^max_bits).
    pub max_bits: u8,
}

impl SaxParams {
    /// Creates SAX parameters, clamping `max_bits` to [`MAX_CARD_BITS`].
    pub fn new(segments: usize, max_bits: u8) -> Self {
        Self {
            segments: segments.max(1),
            max_bits: max_bits.clamp(1, MAX_CARD_BITS),
        }
    }

    /// The maximum cardinality `2^max_bits`.
    pub fn max_cardinality(&self) -> u16 {
        1u16 << self.max_bits
    }
}

impl Default for SaxParams {
    /// 16 segments at cardinality 256 — the configuration used in the paper.
    fn default() -> Self {
        Self::new(16, MAX_CARD_BITS)
    }
}

/// An iSAX word: per-segment symbols stored at maximum cardinality together
/// with the number of valid (most-significant) bits per segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IsaxWord {
    /// Symbols at maximum cardinality (only the top `bits[i]` bits are
    /// semantically meaningful for segment `i`).
    pub symbols: Vec<u16>,
    /// Number of valid bits per segment (1 ..= `MAX_CARD_BITS`).
    pub bits: Vec<u8>,
}

impl IsaxWord {
    /// Number of segments in the word.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word has no segments.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol of segment `i` truncated to its valid bits (i.e., the
    /// value actually used for comparisons at that segment's cardinality).
    pub fn truncated_symbol(&self, i: usize, max_bits: u8) -> u16 {
        self.symbols[i] >> (max_bits - self.bits[i])
    }

    /// Returns true if `other` (a full-cardinality word) falls inside the
    /// region represented by `self`, i.e. `self` is a prefix of `other` on
    /// every segment.
    pub fn contains(&self, other: &IsaxWord, max_bits: u8) -> bool {
        debug_assert_eq!(self.len(), other.len());
        (0..self.len()).all(|i| {
            let shift = max_bits - self.bits[i];
            (other.symbols[i] >> shift) == (self.symbols[i] >> shift)
        })
    }
}

/// Breakpoints of the standard normal distribution for an alphabet of size
/// `cardinality` (there are `cardinality - 1` breakpoints).
///
/// Symbol `s` covers the interval `[breakpoint[s-1], breakpoint[s])`, with
/// `breakpoint[-1] = -∞` and `breakpoint[cardinality-1] = +∞`.
pub fn normal_breakpoints(cardinality: u16) -> Vec<f32> {
    let c = cardinality.max(2) as usize;
    (1..c)
        .map(|i| inverse_normal_cdf(i as f64 / c as f64) as f32)
        .collect()
}

/// Converts a PAA value to a SAX symbol under the given breakpoints.
/// Symbol 0 is the lowest region.
pub fn value_to_symbol(value: f32, breakpoints: &[f32]) -> u16 {
    // Binary search the first breakpoint strictly greater than the value.
    match breakpoints.binary_search_by(|b| b.total_cmp(&value)) {
        Ok(pos) => (pos + 1) as u16,
        Err(pos) => pos as u16,
    }
}

/// Computes the full-cardinality SAX word of a series.
pub fn sax_word(series: &[f32], params: &SaxParams, breakpoints: &[f32]) -> IsaxWord {
    let p = paa(series, params.segments);
    let symbols = p
        .iter()
        .map(|&v| value_to_symbol(v, breakpoints))
        .collect();
    IsaxWord {
        symbols,
        bits: vec![params.max_bits; params.segments.min(series.len())],
    }
}

/// Lower bound (MINDIST) between the PAA representation of a query and an
/// iSAX word, following Shieh & Keogh. `series_len` is the original series
/// length; `breakpoints` must be the full-cardinality breakpoints used to
/// build the word.
pub fn mindist_paa_isax(
    query_paa: &[f32],
    word: &IsaxWord,
    breakpoints: &[f32],
    series_len: usize,
    max_bits: u8,
) -> f32 {
    debug_assert_eq!(query_paa.len(), word.len());
    let l = word.len().max(1);
    let scale = series_len as f32 / l as f32;
    let full_card = breakpoints.len() + 1;
    let mut acc = 0.0f32;
    for i in 0..word.len() {
        let bits = word.bits[i];
        let shift = max_bits - bits;
        let prefix = (word.symbols[i] >> shift) as usize;
        // The region covered by this segment at its cardinality spans the
        // full-cardinality symbols [prefix << shift, ((prefix+1) << shift) - 1].
        let lo_sym = prefix << shift;
        let hi_sym = ((prefix + 1) << shift) - 1;
        // Lower edge of the region (or -inf) and upper edge (or +inf).
        let lower = if lo_sym == 0 {
            f32::NEG_INFINITY
        } else {
            breakpoints[lo_sym - 1]
        };
        let upper = if hi_sym >= full_card - 1 {
            f32::INFINITY
        } else {
            breakpoints[hi_sym]
        };
        let q = query_paa[i];
        let d = if q < lower {
            lower - q
        } else if q > upper {
            q - upper
        } else {
            0.0
        };
        acc += d * d;
    }
    (scale * acc).sqrt()
}

/// Acklam's rational approximation of the inverse standard normal CDF
/// (maximum relative error ≈ 1.15e-9, far below what SAX breakpoints need).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile only defined on (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::euclidean;

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn breakpoints_are_sorted_and_symmetric() {
        for card in [2u16, 4, 8, 16, 64, 256] {
            let b = normal_breakpoints(card);
            assert_eq!(b.len(), card as usize - 1);
            for w in b.windows(2) {
                assert!(w[0] < w[1]);
            }
            // Symmetric around 0.
            let mid = b.len() / 2;
            for i in 0..mid {
                assert!((b[i] + b[b.len() - 1 - i]).abs() < 1e-4);
            }
        }
        // Cardinality 4 breakpoints from the SAX paper: -0.67, 0, 0.67.
        let b4 = normal_breakpoints(4);
        assert!((b4[0] + 0.6745).abs() < 1e-3);
        assert!(b4[1].abs() < 1e-6);
        assert!((b4[2] - 0.6745).abs() < 1e-3);
    }

    #[test]
    fn value_to_symbol_respects_regions() {
        let b = normal_breakpoints(4); // [-0.67, 0, 0.67]
        assert_eq!(value_to_symbol(-2.0, &b), 0);
        assert_eq!(value_to_symbol(-0.3, &b), 1);
        assert_eq!(value_to_symbol(0.3, &b), 2);
        assert_eq!(value_to_symbol(2.0, &b), 3);
    }

    #[test]
    fn sax_word_has_requested_shape() {
        let params = SaxParams::new(8, 8);
        let b = normal_breakpoints(params.max_cardinality());
        let s: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.7).sin()).collect();
        let w = sax_word(&s, &params, &b);
        assert_eq!(w.len(), 8);
        assert!(w.symbols.iter().all(|&sym| sym < 256));
        assert!(w.bits.iter().all(|&bit| bit == 8));
    }

    #[test]
    fn truncated_symbol_and_containment() {
        let full = IsaxWord {
            symbols: vec![0b1011_0010, 0b0100_1111],
            bits: vec![8, 8],
        };
        let region = IsaxWord {
            symbols: vec![0b1011_0010, 0b0100_1111],
            bits: vec![2, 4],
        };
        assert_eq!(region.truncated_symbol(0, 8), 0b10);
        assert_eq!(region.truncated_symbol(1, 8), 0b0100);
        assert!(region.contains(&full, 8));
        let other = IsaxWord {
            symbols: vec![0b0011_0010, 0b0100_1111],
            bits: vec![8, 8],
        };
        assert!(!region.contains(&other, 8));
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let params = SaxParams::new(16, 8);
        let b = normal_breakpoints(params.max_cardinality());
        let gen = |seed: u32, n: usize| -> Vec<f32> {
            let mut x = seed;
            let mut v: Vec<f32> = (0..n)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 16) as f32 / 65536.0 - 0.5
                })
                .collect();
            hydra_core::znormalize(&mut v);
            v
        };
        for seed in [3u32, 17, 99] {
            let q = gen(seed, 128);
            let c = gen(seed + 1, 128);
            let qp = paa(&q, params.segments);
            let w = sax_word(&c, &params, &b);
            let lb = mindist_paa_isax(&qp, &w, &b, 128, params.max_bits);
            let d = euclidean(&q, &c);
            assert!(lb <= d + 1e-3, "seed={seed}: lb={lb} d={d}");
            // Lower-cardinality words give looser (but still valid) bounds.
            let coarse = IsaxWord {
                symbols: w.symbols.clone(),
                bits: vec![2; w.len()],
            };
            let lb_coarse = mindist_paa_isax(&qp, &coarse, &b, 128, params.max_bits);
            assert!(lb_coarse <= lb + 1e-4);
        }
    }

    #[test]
    fn default_params_match_paper() {
        let p = SaxParams::default();
        assert_eq!(p.segments, 16);
        assert_eq!(p.max_cardinality(), 256);
    }
}
