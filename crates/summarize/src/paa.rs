//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA divides a series of length `n` into `l` equal-length segments and
//! represents each segment by the mean of its points (Keogh et al.). The
//! PAA distance multiplied by `sqrt(n / l)` lower-bounds the Euclidean
//! distance, which SAX inherits.

/// Computes the PAA representation of `series` with `segments` segments.
///
/// When `segments` does not divide the series length, trailing segments are
/// one point shorter — the standard fractional-segment handling. The number
/// of segments is clamped to the series length.
///
/// # Panics
/// Panics if `segments == 0` or the series is empty.
pub fn paa(series: &[f32], segments: usize) -> Vec<f32> {
    assert!(segments > 0, "PAA requires at least one segment");
    assert!(!series.is_empty(), "PAA of an empty series is undefined");
    let segments = segments.min(series.len());
    let n = series.len();
    let mut out = Vec::with_capacity(segments);
    for s in 0..segments {
        // Segment boundaries chosen so every point belongs to exactly one
        // segment and segment sizes differ by at most one.
        let start = s * n / segments;
        let end = (s + 1) * n / segments;
        let len = (end - start).max(1);
        let mean: f32 = series[start..end].iter().sum::<f32>() / len as f32;
        out.push(mean);
    }
    out
}

/// Lower bound on the Euclidean distance between two series of length
/// `series_len`, computed from their PAA representations.
///
/// `LB = sqrt(n / l) * || paa(a) - paa(b) ||₂` (Keogh et al., 2001).
pub fn paa_lower_bound(paa_a: &[f32], paa_b: &[f32], series_len: usize) -> f32 {
    debug_assert_eq!(paa_a.len(), paa_b.len());
    let l = paa_a.len().max(1);
    let scale = series_len as f32 / l as f32;
    let sum: f32 = paa_a
        .iter()
        .zip(paa_b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (scale * sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::euclidean;

    #[test]
    fn paa_of_constant_series_is_constant() {
        let s = vec![3.0f32; 16];
        assert_eq!(paa(&s, 4), vec![3.0; 4]);
    }

    #[test]
    fn paa_exact_when_segments_equal_length() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(paa(&s, 4), s);
    }

    #[test]
    fn paa_means_are_correct_for_even_split() {
        let s = vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0];
        assert_eq!(paa(&s, 2), vec![4.0, 5.0]);
    }

    #[test]
    fn paa_handles_non_divisible_lengths() {
        let s: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = paa(&s, 3);
        assert_eq!(p.len(), 3);
        // Segments are [0..3), [3..6), [6..10).
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!((p[1] - 4.0).abs() < 1e-6);
        assert!((p[2] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn paa_clamps_segments_to_length() {
        let s = vec![1.0, 2.0];
        assert_eq!(paa(&s, 10).len(), 2);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        // Deterministic pseudo-random series.
        let gen = |seed: u32, n: usize| -> Vec<f32> {
            let mut x = seed;
            (0..n)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 16) as f32 / 65536.0 - 0.5
                })
                .collect()
        };
        for n in [32usize, 100, 256] {
            for l in [4usize, 8, 16] {
                let a = gen(1, n);
                let b = gen(99, n);
                let lb = paa_lower_bound(&paa(&a, l), &paa(&b, l), n);
                let d = euclidean(&a, &b);
                assert!(lb <= d + 1e-4, "n={n} l={l}: lb={lb} > d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = paa(&[1.0], 0);
    }
}
