//! Discrete Fourier Transform summarization.
//!
//! The paper's modified VA+file replaces the Karhunen–Loève transform with
//! the DFT, which decorrelates data series almost as well (energy compacts
//! into the low frequencies for autocorrelated series) while being dataset
//! independent and much cheaper to compute.
//!
//! The transform here is orthonormal (scaled by `1/sqrt(n)`), so by
//! Parseval's theorem the Euclidean distance between two series equals the
//! Euclidean distance between their full coefficient vectors; keeping only
//! the first `l` coefficients therefore yields a lower-bounding distance.

use std::f32::consts::PI;

/// Orthonormal real DFT summarizer keeping the first `coefficients` complex
/// coefficients (stored interleaved as `re, im, re, im, ...`).
#[derive(Debug, Clone)]
pub struct DftSummarizer {
    series_len: usize,
    coefficients: usize,
}

impl DftSummarizer {
    /// Creates a summarizer for series of length `series_len` keeping
    /// `coefficients` complex coefficients (so `2 * coefficients` reduced
    /// dimensions). The coefficient count is clamped to `series_len / 2 + 1`.
    pub fn new(series_len: usize, coefficients: usize) -> Self {
        let max_coeffs = series_len / 2 + 1;
        Self {
            series_len,
            coefficients: coefficients.clamp(1, max_coeffs.max(1)),
        }
    }

    /// Number of complex coefficients kept.
    pub fn num_coefficients(&self) -> usize {
        self.coefficients
    }

    /// Number of real values in a summary (`2 *` coefficients).
    pub fn summary_len(&self) -> usize {
        self.coefficients * 2
    }

    /// Length of the series this summarizer accepts.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Computes the truncated orthonormal DFT of `series`.
    ///
    /// # Panics
    /// Panics if `series.len() != self.series_len()`.
    pub fn transform(&self, series: &[f32]) -> Vec<f32> {
        assert_eq!(series.len(), self.series_len, "series length mismatch");
        let n = series.len();
        let (re, im) = if n.is_power_of_two() && n >= 2 {
            fft_real(series)
        } else {
            naive_dft(series)
        };
        let scale = 1.0 / (n as f32).sqrt();
        let mut out = Vec::with_capacity(self.summary_len());
        for k in 0..self.coefficients {
            out.push(re[k] * scale);
            out.push(im[k] * scale);
        }
        out
    }

    /// Lower bound on the Euclidean distance between two series given their
    /// truncated DFT summaries.
    ///
    /// Because the transform is orthonormal, the distance over any subset of
    /// coefficients never exceeds the true distance. Coefficients other than
    /// DC and (for even lengths) Nyquist appear twice in the full spectrum
    /// (conjugate symmetry), so their contribution is doubled, which keeps
    /// the bound as tight as possible while remaining a lower bound.
    pub fn lower_bound(&self, summary_a: &[f32], summary_b: &[f32]) -> f32 {
        debug_assert_eq!(summary_a.len(), summary_b.len());
        let mut acc = 0.0f32;
        for k in 0..self.coefficients {
            let dre = summary_a[2 * k] - summary_b[2 * k];
            let dim = summary_a[2 * k + 1] - summary_b[2 * k + 1];
            let contrib = dre * dre + dim * dim;
            let is_dc = k == 0;
            let is_nyquist = self.series_len % 2 == 0 && k == self.series_len / 2;
            if is_dc || is_nyquist {
                acc += contrib;
            } else {
                acc += 2.0 * contrib;
            }
        }
        acc.sqrt()
    }
}

/// Naive O(n²) DFT returning full real/imaginary spectra (used for
/// non-power-of-two lengths).
fn naive_dft(series: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = series.len();
    let mut re = vec![0.0f32; n];
    let mut im = vec![0.0f32; n];
    for (k, (rk, ik)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
        let mut sr = 0.0f32;
        let mut si = 0.0f32;
        for (t, &x) in series.iter().enumerate() {
            let angle = -2.0 * PI * (k as f32) * (t as f32) / n as f32;
            sr += x * angle.cos();
            si += x * angle.sin();
        }
        *rk = sr;
        *ik = si;
    }
    (re, im)
}

/// Iterative radix-2 Cooley–Tukey FFT over real input (imaginary part zero).
/// Returns full real/imaginary spectra.
fn fft_real(series: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = series.len();
    debug_assert!(n.is_power_of_two());
    let mut re: Vec<f32> = series.to_vec();
    let mut im = vec![0.0f32; n];

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let angle = -2.0 * PI / len as f32;
        let (wr, wi) = (angle.cos(), angle.sin());
        let mut start = 0;
        while start < n {
            let mut cur_r = 1.0f32;
            let mut cur_i = 0.0f32;
            for k in 0..len / 2 {
                let even_r = re[start + k];
                let even_i = im[start + k];
                let odd_r = re[start + k + len / 2];
                let odd_i = im[start + k + len / 2];
                let tr = odd_r * cur_r - odd_i * cur_i;
                let ti = odd_r * cur_i + odd_i * cur_r;
                re[start + k] = even_r + tr;
                im[start + k] = even_i + ti;
                re[start + k + len / 2] = even_r - tr;
                im[start + k + len / 2] = even_i - ti;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            start += len;
        }
        len <<= 1;
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::euclidean;

    fn pseudo_series(seed: u32, n: usize) -> Vec<f32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 16) as f32 / 65536.0 - 0.5
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let s = pseudo_series(5, 64);
        let (fr, fi) = fft_real(&s);
        let (nr, ni) = naive_dft(&s);
        for k in 0..64 {
            assert!((fr[k] - nr[k]).abs() < 1e-2, "re[{k}]");
            assert!((fi[k] - ni[k]).abs() < 1e-2, "im[{k}]");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_sum() {
        let s = vec![1.0f32, 2.0, 3.0, 4.0];
        let d = DftSummarizer::new(4, 1);
        let summary = d.transform(&s);
        // DC = sum / sqrt(n) = 10 / 2 = 5.
        assert!((summary[0] - 5.0).abs() < 1e-5);
        assert!(summary[1].abs() < 1e-5);
    }

    #[test]
    fn parseval_energy_preserved_with_all_coefficients() {
        let s = pseudo_series(7, 32);
        let d = DftSummarizer::new(32, 17); // n/2 + 1 coefficients
        let a = d.transform(&s);
        let zero = vec![0.0f32; 32];
        let b = d.transform(&zero);
        let lb = d.lower_bound(&a, &b);
        let true_norm = euclidean(&s, &zero);
        assert!((lb - true_norm).abs() < 1e-2, "{lb} vs {true_norm}");
    }

    #[test]
    fn lower_bound_never_exceeds_distance() {
        for n in [32usize, 100, 256] {
            for coeffs in [2usize, 4, 8] {
                let d = DftSummarizer::new(n, coeffs);
                let a = pseudo_series(1, n);
                let b = pseudo_series(2, n);
                let lb = d.lower_bound(&d.transform(&a), &d.transform(&b));
                let dist = euclidean(&a, &b);
                assert!(lb <= dist + 1e-3, "n={n} coeffs={coeffs}: {lb} > {dist}");
            }
        }
    }

    #[test]
    fn more_coefficients_tighten_the_bound() {
        let n = 128;
        let a = pseudo_series(11, n);
        let b = pseudo_series(12, n);
        let mut prev = 0.0f32;
        for coeffs in [1usize, 2, 4, 8, 16, 32] {
            let d = DftSummarizer::new(n, coeffs);
            let lb = d.lower_bound(&d.transform(&a), &d.transform(&b));
            assert!(lb + 1e-4 >= prev, "bound should tighten monotonically");
            prev = lb;
        }
    }

    #[test]
    fn coefficients_clamped_to_nyquist() {
        let d = DftSummarizer::new(16, 100);
        assert_eq!(d.num_coefficients(), 9);
        assert_eq!(d.summary_len(), 18);
        assert_eq!(d.series_len(), 16);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn transform_rejects_wrong_length() {
        let d = DftSummarizer::new(16, 4);
        let _ = d.transform(&[0.0; 8]);
    }
}
