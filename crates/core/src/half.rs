//! IEEE 754 binary16 ("half precision") bit conversions.
//!
//! The compressed page tier's `f16` codec stores series values as binary16
//! bit patterns; the fused kernel in [`crate::distance`] decodes them on
//! the fly. The conversions live here — not behind an external crate — so
//! the encoder (`hydra-storage`) and the decoder (the kernel) are
//! guaranteed to agree bit-for-bit on every value, which the refinement
//! contract depends on: the quantization error recorded at encode time is
//! only valid if the query-time decode reproduces the exact same f32s.
//!
//! Encoding rounds to nearest, ties to even (the IEEE default); values
//! beyond the binary16 range become signed infinities, NaNs become the
//! canonical quiet NaN. Decoding is exact (every binary16 value is exactly
//! representable in f32).

/// Converts an `f32` to the nearest IEEE 754 binary16 bit pattern
/// (round-to-nearest-even; overflow to infinity; NaN to canonical quiet
/// NaN).
#[inline]
pub fn f16_bits_from_f32(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Infinity or NaN.
        return if man == 0 { sign | 0x7c00 } else { sign | 0x7e00 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        // Overflow to infinity.
        return sign | 0x7c00;
    }
    if e <= 0 {
        // Subnormal (or zero) in binary16.
        if e < -10 {
            return sign; // Underflow to signed zero.
        }
        let man = man | 0x0080_0000; // Make the implicit bit explicit.
        let shift = (14 - e) as u32; // 14..=24
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && (half & 1) == 1);
        return sign | (half + round_up as u32) as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1);
    // Rounding may carry into the exponent, and from the largest finite
    // value into infinity — both are correct round-to-nearest-even.
    sign | (half + round_up as u32) as u16
}

/// Converts an IEEE 754 binary16 bit pattern to the `f32` it denotes
/// (exact).
#[inline]
pub fn f32_from_f16_bits(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = (bits >> 10) & 0x1f;
    let man = (bits & 0x3ff) as u32;
    match (exp, man) {
        (0, 0) => f32::from_bits(sign),
        (0, m) => {
            // Subnormal: magnitude is m × 2⁻²⁴, exact in f32.
            let v = m as f32 * (1.0 / 16_777_216.0);
            if sign != 0 {
                -v
            } else {
                v
            }
        }
        (0x1f, 0) => f32::from_bits(sign | 0x7f80_0000),
        (0x1f, m) => f32::from_bits(sign | 0x7f80_0000 | (m << 13)),
        (e, m) => f32::from_bits(sign | ((e as u32 + 112) << 23) | (m << 13)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_encode_exactly() {
        assert_eq!(f16_bits_from_f32(0.0), 0x0000);
        assert_eq!(f16_bits_from_f32(-0.0), 0x8000);
        assert_eq!(f16_bits_from_f32(1.0), 0x3c00);
        assert_eq!(f16_bits_from_f32(-2.0), 0xc000);
        assert_eq!(f16_bits_from_f32(0.5), 0x3800);
        assert_eq!(f16_bits_from_f32(65504.0), 0x7bff); // Largest finite.
        assert_eq!(f16_bits_from_f32(65536.0), 0x7c00); // Overflow -> inf.
        assert_eq!(f16_bits_from_f32(f32::INFINITY), 0x7c00);
        assert_eq!(f16_bits_from_f32(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f16_bits_from_f32(f32::NAN) & 0x7c00, 0x7c00);
        assert_ne!(f16_bits_from_f32(f32::NAN) & 0x03ff, 0);
        // Smallest positive subnormal: 2^-24.
        assert_eq!(f16_bits_from_f32(5.960_464_5e-8), 0x0001);
        // Below half the smallest subnormal: underflow to zero.
        assert_eq!(f16_bits_from_f32(1.0e-9), 0x0000);
    }

    #[test]
    fn decode_is_exact_for_known_values() {
        assert_eq!(f32_from_f16_bits(0x3c00), 1.0);
        assert_eq!(f32_from_f16_bits(0xc000), -2.0);
        assert_eq!(f32_from_f16_bits(0x7bff), 65504.0);
        assert_eq!(f32_from_f16_bits(0x7c00), f32::INFINITY);
        assert_eq!(f32_from_f16_bits(0xfc00), f32::NEG_INFINITY);
        assert!(f32_from_f16_bits(0x7e00).is_nan());
        assert_eq!(f32_from_f16_bits(0x0001), 5.960_464_5e-8);
        assert_eq!(f32_from_f16_bits(0x8001), -5.960_464_5e-8);
    }

    /// Every non-NaN binary16 value survives decode→encode unchanged —
    /// exhaustively, all 65 536 bit patterns.
    #[test]
    fn exhaustive_decode_encode_roundtrip() {
        for bits in 0..=u16::MAX {
            let v = f32_from_f16_bits(bits);
            if v.is_nan() {
                assert!(f32_from_f16_bits(f16_bits_from_f32(v)).is_nan());
                continue;
            }
            assert_eq!(
                f16_bits_from_f32(v),
                bits,
                "bit pattern {bits:#06x} (value {v}) did not round-trip"
            );
        }
    }

    /// Round-to-nearest-even at the halfway points.
    #[test]
    fn ties_round_to_even() {
        // 1.0 + 2^-11 is exactly halfway between 0x3c00 (even) and 0x3c01.
        let halfway = f32::from_bits(0x3f80_1000);
        assert_eq!(f16_bits_from_f32(halfway), 0x3c00);
        // The next halfway point, between 0x3c01 and 0x3c02, rounds up to
        // the even 0x3c02.
        let halfway_up = f32::from_bits(0x3f80_3000);
        assert_eq!(f16_bits_from_f32(halfway_up), 0x3c02);
        // Just above a halfway point rounds up.
        let above = f32::from_bits(0x3f80_1001);
        assert_eq!(f16_bits_from_f32(above), 0x3c01);
    }

    #[test]
    fn encode_error_is_within_half_ulp() {
        for &v in &[0.1f32, -3.7, 123.456, 0.0009765, 4096.5, -65000.0] {
            let decoded = f32_from_f16_bits(f16_bits_from_f32(v));
            // binary16 has an 11-bit significand: half an ULP is at most
            // 2^-11 relative for normal values (worst at binade edges).
            let rel = ((decoded - v) / v).abs();
            assert!(rel <= 1.0 / 2048.0, "value {v}: decoded {decoded}");
        }
    }
}
