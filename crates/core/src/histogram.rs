//! Distance distribution estimation for the δ stop condition.
//!
//! Algorithm 2 of the paper stops early once the best-so-far distance drops
//! below `(1 + ε) · r_δ(Q)`, where `r_δ(Q)` is the largest radius such that
//! the ball centered at the query with that radius is empty with probability
//! at least δ. Following Ciaccia & Patella (and the paper's own
//! implementation), `r_δ` is estimated from the *overall* distance
//! distribution `F(·)`, approximated by a histogram of pairwise distances on
//! a sample of the dataset.
//!
//! For a dataset of `n` points whose distances to the query are i.i.d. with
//! CDF `F`, the nearest-neighbor distance exceeds `r` with probability
//! `(1 - F(r))^n`. Requiring that probability to be at least δ gives
//! `F(r) ≤ 1 - δ^(1/n)`, so `r_δ = F⁻¹(1 - δ^(1/n))`.

use crate::distance::euclidean;
use crate::series::Dataset;

/// Histogram approximation of the overall pairwise distance distribution
/// `F(·)` of a dataset.
#[derive(Debug, Clone)]
pub struct DistanceHistogram {
    /// Upper edge of each bin (uniform width over `[0, max_distance]`).
    bin_edges: Vec<f32>,
    /// Cumulative counts per bin (last entry equals the total sample count).
    cumulative: Vec<u64>,
    /// Number of sampled distances.
    total: u64,
    /// Number of series in the dataset the histogram describes (the `n` in
    /// the `δ^(1/n)` correction).
    dataset_size: usize,
}

impl DistanceHistogram {
    /// Builds a histogram from explicit distance samples.
    ///
    /// `dataset_size` is the size of the full collection the samples
    /// describe; it controls the nearest-neighbor correction in
    /// [`DistanceHistogram::r_delta`].
    pub fn from_samples(samples: &[f32], num_bins: usize, dataset_size: usize) -> Self {
        let num_bins = num_bins.max(1);
        let max = samples
            .iter()
            .copied()
            .fold(0.0f32, f32::max)
            .max(f32::MIN_POSITIVE);
        let width = max / num_bins as f32;
        let mut counts = vec![0u64; num_bins];
        for &d in samples {
            let mut bin = (d / width) as usize;
            if bin >= num_bins {
                bin = num_bins - 1;
            }
            counts[bin] += 1;
        }
        let mut cumulative = Vec::with_capacity(num_bins);
        let mut acc = 0u64;
        let mut bin_edges = Vec::with_capacity(num_bins);
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            cumulative.push(acc);
            bin_edges.push(width * (i as f32 + 1.0));
        }
        Self {
            bin_edges,
            cumulative,
            total: acc,
            dataset_size: dataset_size.max(1),
        }
    }

    /// Builds a histogram by sampling pairwise distances between series of a
    /// dataset.
    ///
    /// `sample_pairs` pairwise distances are drawn with a cheap
    /// multiplicative-congruential scheme seeded by `seed`, matching the
    /// paper's protocol of estimating `F` on a sample (they used a 100K
    /// series sample).
    pub fn from_dataset(dataset: &Dataset, sample_pairs: usize, num_bins: usize, seed: u64) -> Self {
        Self::from_pairwise(dataset.len(), sample_pairs, num_bins, seed, |i, j| {
            euclidean(dataset.series(i), dataset.series(j))
        })
    }

    /// [`DistanceHistogram::from_dataset`] for collections that are not a
    /// [`Dataset`]: the caller supplies the pairwise distance as a closure
    /// over series positions `0..n`.
    ///
    /// The sampling sequence depends only on `(n, sample_pairs, seed)`, so a
    /// histogram rebuilt through this entry point over the same collection —
    /// e.g. by a streaming-ingest path reading a grown series store instead
    /// of the original dataset — is bit-identical to the one `from_dataset`
    /// built.
    pub fn from_pairwise(
        n: usize,
        sample_pairs: usize,
        num_bins: usize,
        seed: u64,
        mut dist: impl FnMut(usize, usize) -> f32,
    ) -> Self {
        if n < 2 {
            return Self::from_samples(&[1.0], num_bins, n);
        }
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = || {
            // xorshift64* — deterministic, dependency-free sampling.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            state
        };
        let mut samples = Vec::with_capacity(sample_pairs);
        for _ in 0..sample_pairs {
            let i = (next() % n as u64) as usize;
            let mut j = (next() % n as u64) as usize;
            if i == j {
                j = (j + 1) % n;
            }
            samples.push(dist(i, j));
        }
        Self::from_samples(&samples, num_bins, n)
    }

    /// Evaluates the empirical CDF `F(r)`.
    pub fn cdf(&self, r: f32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if r <= 0.0 {
            return 0.0;
        }
        match self
            .bin_edges
            .iter()
            .position(|&edge| r <= edge)
        {
            Some(bin) => self.cumulative[bin] as f64 / self.total as f64,
            None => 1.0,
        }
    }

    /// Evaluates the empirical quantile function `F⁻¹(p)`.
    pub fn quantile(&self, p: f64) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        for (edge, &cum) in self.bin_edges.iter().zip(self.cumulative.iter()) {
            if cum >= target {
                return *edge;
            }
        }
        *self.bin_edges.last().unwrap_or(&0.0)
    }

    /// Estimates `r_δ`: the radius such that a ball of that radius around a
    /// query is empty with probability at least `δ`, under the i.i.d.
    /// approximation described in the module documentation.
    ///
    /// `δ = 1` yields radius 0 (the stop condition never fires), recovering
    /// plain ε-approximate behaviour as in the paper.
    pub fn r_delta(&self, delta: f32) -> f32 {
        let delta = delta.clamp(0.0, 1.0) as f64;
        if delta >= 1.0 {
            return 0.0;
        }
        let n = self.dataset_size as f64;
        // P[NN dist > r] = (1 - F(r))^n >= delta  =>  F(r) <= 1 - delta^(1/n)
        let p = 1.0 - delta.powf(1.0 / n);
        self.quantile(p)
    }

    /// Number of sampled distances in the histogram.
    pub fn sample_count(&self) -> u64 {
        self.total
    }

    /// Upper edge of each bin (persistence accessor; pairs with
    /// [`DistanceHistogram::from_parts`]).
    pub fn bin_edges(&self) -> &[f32] {
        &self.bin_edges
    }

    /// Cumulative counts per bin (persistence accessor).
    pub fn cumulative_counts(&self) -> &[u64] {
        &self.cumulative
    }

    /// Size of the dataset the histogram describes (the `n` of the
    /// `δ^(1/n)` correction; persistence accessor).
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Reassembles a histogram from its stored parts (the inverse of the
    /// accessors above), used when restoring an index snapshot.
    ///
    /// # Panics
    /// Panics if `bin_edges` and `cumulative` differ in length.
    pub fn from_parts(
        bin_edges: Vec<f32>,
        cumulative: Vec<u64>,
        total: u64,
        dataset_size: usize,
    ) -> Self {
        assert_eq!(
            bin_edges.len(),
            cumulative.len(),
            "bin edges and cumulative counts must pair up"
        );
        Self {
            bin_edges,
            cumulative,
            total,
            dataset_size: dataset_size.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_samples() -> Vec<f32> {
        // 1000 distances uniform on (0, 10].
        (1..=1000).map(|i| i as f32 / 100.0).collect()
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let h = DistanceHistogram::from_samples(&uniform_samples(), 50, 1000);
        let mut prev = 0.0;
        for i in 0..=100 {
            let r = i as f32 / 10.0;
            let c = h.cdf(r);
            assert!(c >= prev - 1e-12, "cdf must be monotone");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(1e9), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf_approximately() {
        let h = DistanceHistogram::from_samples(&uniform_samples(), 100, 1000);
        let q = h.quantile(0.5);
        assert!((q - 5.0).abs() < 0.3, "median of U(0,10] should be ~5, got {q}");
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
    }

    #[test]
    fn r_delta_shrinks_with_dataset_size_and_delta() {
        let samples = uniform_samples();
        let small = DistanceHistogram::from_samples(&samples, 100, 100);
        let large = DistanceHistogram::from_samples(&samples, 100, 100_000);
        // A bigger dataset packs neighbors closer: r_delta must not grow.
        assert!(large.r_delta(0.9) <= small.r_delta(0.9) + 1e-6);
        // Larger delta demands a higher probability of emptiness => smaller radius.
        assert!(small.r_delta(0.99) <= small.r_delta(0.5) + 1e-6);
        // delta = 1 disables the stop condition entirely.
        assert_eq!(small.r_delta(1.0), 0.0);
    }

    #[test]
    fn from_dataset_is_deterministic_per_seed() {
        let mut d = Dataset::new(8).unwrap();
        for i in 0..64 {
            let s: Vec<f32> = (0..8).map(|j| ((i * 7 + j) % 13) as f32).collect();
            d.push(&s).unwrap();
        }
        let h1 = DistanceHistogram::from_dataset(&d, 500, 32, 42);
        let h2 = DistanceHistogram::from_dataset(&d, 500, 32, 42);
        let h3 = DistanceHistogram::from_dataset(&d, 500, 32, 7);
        assert_eq!(h1.quantile(0.5), h2.quantile(0.5));
        assert_eq!(h1.sample_count(), 500);
        // A different seed may (and generally will) give a slightly different
        // histogram, but must still be a valid distribution.
        assert!(h3.quantile(1.0) > 0.0);
    }

    #[test]
    fn from_pairwise_matches_from_dataset_bit_for_bit() {
        let mut d = Dataset::new(8).unwrap();
        for i in 0..64 {
            let s: Vec<f32> = (0..8).map(|j| ((i * 5 + j) % 17) as f32).collect();
            d.push(&s).unwrap();
        }
        let a = DistanceHistogram::from_dataset(&d, 300, 24, 11);
        let b = DistanceHistogram::from_pairwise(d.len(), 300, 24, 11, |i, j| {
            euclidean(d.series(i), d.series(j))
        });
        assert_eq!(a.bin_edges(), b.bin_edges());
        assert_eq!(a.cumulative_counts(), b.cumulative_counts());
        assert_eq!(a.sample_count(), b.sample_count());
        assert_eq!(a.dataset_size(), b.dataset_size());
    }

    #[test]
    fn degenerate_datasets_do_not_panic() {
        let d = Dataset::new(4).unwrap();
        let h = DistanceHistogram::from_dataset(&d, 10, 10, 1);
        assert!(h.r_delta(0.5) >= 0.0);
        let h = DistanceHistogram::from_samples(&[], 10, 10);
        assert_eq!(h.cdf(1.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
