//! Data series containers.
//!
//! A data series of length `n` is treated interchangeably as a point in an
//! `n`-dimensional Euclidean space (Section 2 of the paper). The [`Dataset`]
//! type stores all series of a collection contiguously in a single `Vec<f32>`
//! so that sequential scans, summarization passes and index bulk-loading are
//! cache friendly and allocation free.

use crate::error::{Error, Result};

/// A collection of fixed-length data series stored contiguously.
///
/// Series values use single precision, matching the paper's experimental
/// setup ("data series points are represented using single precision
/// values").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    series_len: usize,
    values: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset of series with length `series_len`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if `series_len` is zero.
    pub fn new(series_len: usize) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidParameter(
                "series length must be positive".into(),
            ));
        }
        Ok(Self {
            series_len,
            values: Vec::new(),
        })
    }

    /// Creates an empty dataset with capacity pre-allocated for `n` series.
    pub fn with_capacity(series_len: usize, n: usize) -> Result<Self> {
        let mut d = Self::new(series_len)?;
        d.values.reserve(n * series_len);
        Ok(d)
    }

    /// Builds a dataset from a flat buffer of `n * series_len` values.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if the buffer length is not a
    /// multiple of `series_len`.
    pub fn from_flat(series_len: usize, values: Vec<f32>) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidParameter(
                "series length must be positive".into(),
            ));
        }
        if values.len() % series_len != 0 {
            return Err(Error::DimensionMismatch {
                expected: series_len,
                found: values.len() % series_len,
            });
        }
        Ok(Self { series_len, values })
    }

    /// Builds a dataset from a slice of equally-sized series.
    pub fn from_series<S: AsRef<[f32]>>(series_len: usize, series: &[S]) -> Result<Self> {
        let mut d = Self::with_capacity(series_len, series.len())?;
        for s in series {
            d.push(s.as_ref())?;
        }
        Ok(d)
    }

    /// Appends one series to the collection.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if the series has the wrong
    /// length.
    pub fn push(&mut self, series: &[f32]) -> Result<()> {
        if series.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: series.len(),
            });
        }
        self.values.extend_from_slice(series);
        Ok(())
    }

    /// The length (dimensionality) of every series in the collection.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The number of series in the collection.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.series_len
    }

    /// Whether the collection holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the `i`-th series.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn series(&self, i: usize) -> &[f32] {
        let start = i * self.series_len;
        &self.values[start..start + self.series_len]
    }

    /// Returns the `i`-th series, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&[f32]> {
        if i < self.len() {
            Some(self.series(i))
        } else {
            None
        }
    }

    /// Iterates over all series in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.values.chunks_exact(self.series_len)
    }

    /// The raw flat value buffer (row-major, one series after another).
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.values
    }

    /// Size in bytes of the raw series payload.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }

    /// Returns a new dataset containing only the series whose indices are in
    /// `indices` (in the given order). Useful for sampling.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        let mut d = Self::with_capacity(self.series_len, indices.len())?;
        for &i in indices {
            let s = self
                .get(i)
                .ok_or_else(|| Error::InvalidParameter(format!("index {i} out of bounds")))?;
            d.push(s)?;
        }
        Ok(d)
    }

    /// Z-normalizes every series in place (zero mean, unit variance).
    pub fn znormalize_all(&mut self) {
        let len = self.series_len;
        for chunk in self.values.chunks_exact_mut(len) {
            znormalize(chunk);
        }
    }
}

/// Z-normalizes a series in place: subtracts the mean and divides by the
/// standard deviation. Constant series are mapped to all zeros.
pub fn znormalize(series: &mut [f32]) {
    let n = series.len() as f32;
    if series.is_empty() {
        return;
    }
    let mean: f32 = series.iter().sum::<f32>() / n;
    let var: f32 = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std <= f32::EPSILON {
        series.iter_mut().for_each(|v| *v = 0.0);
    } else {
        series.iter_mut().for_each(|v| *v = (*v - mean) / std);
    }
}

/// Returns a z-normalized copy of `series`.
pub fn znormalized(series: &[f32]) -> Vec<f32> {
    let mut out = series.to_vec();
    znormalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_length() {
        assert!(Dataset::new(0).is_err());
    }

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(3).unwrap();
        d.push(&[1.0, 2.0, 3.0]).unwrap();
        d.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.series(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.series(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.get(2), None);
        assert_eq!(d.series_len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn push_rejects_wrong_length() {
        let mut d = Dataset::new(3).unwrap();
        let err = d.push(&[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            Error::DimensionMismatch {
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn from_flat_checks_multiple() {
        assert!(Dataset::from_flat(4, vec![0.0; 12]).is_ok());
        assert!(Dataset::from_flat(4, vec![0.0; 10]).is_err());
        assert!(Dataset::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn from_series_roundtrip() {
        let d = Dataset::from_series(2, &[[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        let collected: Vec<&[f32]> = d.iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(d.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.payload_bytes(), 16);
    }

    #[test]
    fn subset_selects_in_order() {
        let d = Dataset::from_series(2, &[[0.0f32, 0.0], [1.0, 1.0], [2.0, 2.0]]).unwrap();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.series(0), &[2.0, 2.0]);
        assert_eq!(s.series(1), &[0.0, 0.0]);
        assert!(d.subset(&[7]).is_err());
    }

    #[test]
    fn znormalize_zero_mean_unit_var() {
        let mut s = vec![1.0, 2.0, 3.0, 4.0];
        znormalize(&mut s);
        let mean: f32 = s.iter().sum::<f32>() / 4.0;
        let var: f32 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn znormalize_constant_series_becomes_zero() {
        let mut s = vec![5.0; 8];
        znormalize(&mut s);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znormalize_all_applies_per_series() {
        let mut d = Dataset::from_series(4, &[[1.0f32, 2.0, 3.0, 4.0], [10.0, 10.0, 10.0, 10.0]])
            .unwrap();
        d.znormalize_all();
        assert!(d.series(1).iter().all(|&v| v == 0.0));
        let mean: f32 = d.series(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }
}
