//! Implementation-independent query cost counters.
//!
//! The paper complements wall-clock measurements with two
//! implementation-independent measures: the number of random disk accesses
//! and the percentage of data accessed. [`QueryStats`] captures those,
//! together with CPU-side counters that explain where time goes (distance
//! computations, lower-bound computations, visited leaves/nodes).

/// Cost counters accumulated while answering one query (or a workload, when
/// merged with [`QueryStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Number of full (or early-abandoned) raw-data distance computations.
    pub distance_computations: u64,
    /// Number of lower-bound distance computations on summarizations.
    pub lower_bound_computations: u64,
    /// Number of leaf nodes (or inverted lists / buckets) visited.
    pub leaves_visited: u64,
    /// Number of internal nodes popped from the search priority queue.
    pub nodes_visited: u64,
    /// Number of raw series fetched from storage and compared to the query.
    pub series_scanned: u64,
    /// Bytes of raw data read from the (simulated) storage layer.
    pub bytes_read: u64,
    /// Number of random I/O operations charged by the storage layer.
    pub random_ios: u64,
    /// Number of sequential I/O operations charged by the storage layer.
    pub sequential_ios: u64,
    /// Whether the probabilistic (δ) stop condition fired for this query.
    pub delta_stop_triggered: bool,
}

impl QueryStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `other` into `self` (used to aggregate a workload).
    pub fn merge(&mut self, other: &QueryStats) {
        self.distance_computations += other.distance_computations;
        self.lower_bound_computations += other.lower_bound_computations;
        self.leaves_visited += other.leaves_visited;
        self.nodes_visited += other.nodes_visited;
        self.series_scanned += other.series_scanned;
        self.bytes_read += other.bytes_read;
        self.random_ios += other.random_ios;
        self.sequential_ios += other.sequential_ios;
        self.delta_stop_triggered |= other.delta_stop_triggered;
    }

    /// The numeric counters as stable `(name, value)` pairs, in
    /// declaration order. This is the single source of truth used both
    /// by the serve tier (summing per-query stats into scrapeable
    /// `hydra_query_stats_total{counter=...}` metrics) and by the
    /// reconciliation test that asserts those scraped sums equal the
    /// client-side sums — sharing the enumeration means a new counter
    /// field cannot silently fall out of the contract.
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("distance_computations", self.distance_computations),
            ("lower_bound_computations", self.lower_bound_computations),
            ("leaves_visited", self.leaves_visited),
            ("nodes_visited", self.nodes_visited),
            ("series_scanned", self.series_scanned),
            ("bytes_read", self.bytes_read),
            ("random_ios", self.random_ios),
            ("sequential_ios", self.sequential_ios),
        ]
    }

    /// Fraction of the dataset touched, given the total raw payload size in
    /// bytes. Returns a value in `[0, +∞)`; values above 1 indicate repeated
    /// access to the same data.
    pub fn fraction_data_accessed(&self, total_bytes: u64) -> f64 {
        if total_bytes == 0 {
            0.0
        } else {
            self.bytes_read as f64 / total_bytes as f64
        }
    }
}

/// Cumulative, process-lifetime counters of a series store (buffer pool
/// plus backing file), as reported live by disk-capable indexes through
/// [`crate::AnnIndex::store_counters`].
///
/// Unlike [`QueryStats`], which is scoped to one query, these are
/// monotone totals since the store was created — the shape an operator
/// scrapes as gauges/counters rather than per-answer deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Random (seek-then-read) I/O operations charged so far.
    pub random_ios: u64,
    /// Sequential I/O operations charged so far.
    pub sequential_ios: u64,
    /// Raw bytes served out of the store so far.
    pub bytes_read: u64,
    /// Buffer-pool page hits.
    pub pool_hits: u64,
    /// Buffer-pool page misses (faults that went to the backing file).
    pub pool_misses: u64,
    /// Buffer-pool page evictions.
    pub pool_evictions: u64,
    /// Bytes served from *compressed* pages (u8/f16 codecs), a subset of
    /// [`Self::bytes_read`]. Zero on raw-f32 stores; on a coded store the
    /// remainder `bytes_read - compressed_bytes_read` is the exact-f32
    /// refinement traffic, so this pair shows the compression win live.
    pub compressed_bytes_read: u64,
}

impl StoreCounters {
    /// Component-wise sum, used by sharded indexes to aggregate their
    /// shards' stores into one logical store view.
    pub fn merge(&mut self, other: &StoreCounters) {
        self.random_ios += other.random_ios;
        self.sequential_ios += other.sequential_ios;
        self.bytes_read += other.bytes_read;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_evictions += other.pool_evictions;
        self.compressed_bytes_read += other.compressed_bytes_read;
    }

    /// The counters as stable `(name, value)` pairs, mirroring
    /// [`QueryStats::counters`] for the scrape path.
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("random_ios", self.random_ios),
            ("sequential_ios", self.sequential_ios),
            ("bytes_read", self.bytes_read),
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("pool_evictions", self.pool_evictions),
            ("compressed_bytes_read", self.compressed_bytes_read),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_enumeration_matches_fields() {
        let s = QueryStats {
            distance_computations: 1,
            lower_bound_computations: 2,
            leaves_visited: 3,
            nodes_visited: 4,
            series_scanned: 5,
            bytes_read: 6,
            random_ios: 7,
            sequential_ios: 8,
            delta_stop_triggered: true,
        };
        let pairs = s.counters();
        assert_eq!(pairs[0], ("distance_computations", 1));
        assert_eq!(pairs[7], ("sequential_ios", 8));
        let names: std::collections::BTreeSet<_> = pairs.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), pairs.len(), "counter names must be unique");
    }

    #[test]
    fn store_counters_merge_sums_component_wise() {
        let mut a = StoreCounters {
            random_ios: 1,
            sequential_ios: 2,
            bytes_read: 3,
            pool_hits: 4,
            pool_misses: 5,
            pool_evictions: 6,
            compressed_bytes_read: 7,
        };
        a.merge(&StoreCounters {
            random_ios: 10,
            sequential_ios: 20,
            bytes_read: 30,
            pool_hits: 40,
            pool_misses: 50,
            pool_evictions: 60,
            compressed_bytes_read: 70,
        });
        assert_eq!(a.bytes_read, 33);
        assert_eq!(a.pool_evictions, 66);
        assert_eq!(a.compressed_bytes_read, 77);
        assert_eq!(a.counters()[2], ("bytes_read", 33));
        assert_eq!(a.counters()[6], ("compressed_bytes_read", 77));
        let names: std::collections::BTreeSet<_> =
            a.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), a.counters().len());
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = QueryStats {
            distance_computations: 1,
            lower_bound_computations: 2,
            leaves_visited: 3,
            nodes_visited: 4,
            series_scanned: 5,
            bytes_read: 6,
            random_ios: 7,
            sequential_ios: 8,
            delta_stop_triggered: false,
        };
        let b = QueryStats {
            distance_computations: 10,
            lower_bound_computations: 20,
            leaves_visited: 30,
            nodes_visited: 40,
            series_scanned: 50,
            bytes_read: 60,
            random_ios: 70,
            sequential_ios: 80,
            delta_stop_triggered: true,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 11);
        assert_eq!(a.lower_bound_computations, 22);
        assert_eq!(a.leaves_visited, 33);
        assert_eq!(a.nodes_visited, 44);
        assert_eq!(a.series_scanned, 55);
        assert_eq!(a.bytes_read, 66);
        assert_eq!(a.random_ios, 77);
        assert_eq!(a.sequential_ios, 88);
        assert!(a.delta_stop_triggered);
    }

    #[test]
    fn fraction_data_accessed_handles_zero_total() {
        let s = QueryStats {
            bytes_read: 100,
            ..Default::default()
        };
        assert_eq!(s.fraction_data_accessed(0), 0.0);
        assert!((s.fraction_data_accessed(400) - 0.25).abs() < 1e-12);
    }
}
