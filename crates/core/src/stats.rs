//! Implementation-independent query cost counters.
//!
//! The paper complements wall-clock measurements with two
//! implementation-independent measures: the number of random disk accesses
//! and the percentage of data accessed. [`QueryStats`] captures those,
//! together with CPU-side counters that explain where time goes (distance
//! computations, lower-bound computations, visited leaves/nodes).

/// Cost counters accumulated while answering one query (or a workload, when
/// merged with [`QueryStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Number of full (or early-abandoned) raw-data distance computations.
    pub distance_computations: u64,
    /// Number of lower-bound distance computations on summarizations.
    pub lower_bound_computations: u64,
    /// Number of leaf nodes (or inverted lists / buckets) visited.
    pub leaves_visited: u64,
    /// Number of internal nodes popped from the search priority queue.
    pub nodes_visited: u64,
    /// Number of raw series fetched from storage and compared to the query.
    pub series_scanned: u64,
    /// Bytes of raw data read from the (simulated) storage layer.
    pub bytes_read: u64,
    /// Number of random I/O operations charged by the storage layer.
    pub random_ios: u64,
    /// Number of sequential I/O operations charged by the storage layer.
    pub sequential_ios: u64,
    /// Whether the probabilistic (δ) stop condition fired for this query.
    pub delta_stop_triggered: bool,
}

impl QueryStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `other` into `self` (used to aggregate a workload).
    pub fn merge(&mut self, other: &QueryStats) {
        self.distance_computations += other.distance_computations;
        self.lower_bound_computations += other.lower_bound_computations;
        self.leaves_visited += other.leaves_visited;
        self.nodes_visited += other.nodes_visited;
        self.series_scanned += other.series_scanned;
        self.bytes_read += other.bytes_read;
        self.random_ios += other.random_ios;
        self.sequential_ios += other.sequential_ios;
        self.delta_stop_triggered |= other.delta_stop_triggered;
    }

    /// Fraction of the dataset touched, given the total raw payload size in
    /// bytes. Returns a value in `[0, +∞)`; values above 1 indicate repeated
    /// access to the same data.
    pub fn fraction_data_accessed(&self, total_bytes: u64) -> f64 {
        if total_bytes == 0 {
            0.0
        } else {
            self.bytes_read as f64 / total_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = QueryStats {
            distance_computations: 1,
            lower_bound_computations: 2,
            leaves_visited: 3,
            nodes_visited: 4,
            series_scanned: 5,
            bytes_read: 6,
            random_ios: 7,
            sequential_ios: 8,
            delta_stop_triggered: false,
        };
        let b = QueryStats {
            distance_computations: 10,
            lower_bound_computations: 20,
            leaves_visited: 30,
            nodes_visited: 40,
            series_scanned: 50,
            bytes_read: 60,
            random_ios: 70,
            sequential_ios: 80,
            delta_stop_triggered: true,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 11);
        assert_eq!(a.lower_bound_computations, 22);
        assert_eq!(a.leaves_visited, 33);
        assert_eq!(a.nodes_visited, 44);
        assert_eq!(a.series_scanned, 55);
        assert_eq!(a.bytes_read, 66);
        assert_eq!(a.random_ios, 77);
        assert_eq!(a.sequential_ios, 88);
        assert!(a.delta_stop_triggered);
    }

    #[test]
    fn fraction_data_accessed_handles_zero_total() {
        let s = QueryStats {
            bytes_read: 100,
            ..Default::default()
        };
        assert_eq!(s.fraction_data_accessed(0), 0.0);
        assert!((s.fraction_data_accessed(400) - 0.25).abs() < 1e-12);
    }
}
