//! # hydra-core
//!
//! Core types and algorithms for data series similarity search, reproducing
//! the framework of *"Return of the Lernaean Hydra: Experimental Evaluation
//! of Data Series Approximate Similarity Search"* (Echihabi et al.,
//! PVLDB 2019).
//!
//! This crate provides:
//!
//! * [`series::Dataset`] — a flat, cache-friendly container of fixed-length
//!   data series (equivalently, high-dimensional vectors).
//! * [`distance`] — Euclidean distance kernels, including an
//!   early-abandoning variant used by every index during leaf refinement.
//! * [`query`] — query, answer, and search-parameter types, together with
//!   the taxonomy of guarantees from the paper (ng-approximate,
//!   ε-approximate, δ-ε-approximate, exact).
//! * [`search`] — an index-invariant implementation of the paper's
//!   Algorithm 1 (exact k-NN over any hierarchical index built by
//!   conservative recursive partitioning) and Algorithm 2 (its
//!   δ-ε-approximate extension), generic over the
//!   [`index::HierarchicalIndex`] trait.
//! * [`histogram`] — the overall distance distribution `F(·)` and the
//!   `r_δ` radius estimation used by Algorithm 2's probabilistic stop
//!   condition.
//! * [`stats`] — implementation-independent query cost counters
//!   (distance computations, leaves visited, bytes accessed, random I/Os).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
pub mod error;
pub mod half;
pub mod histogram;
pub mod index;
pub mod query;
#[cfg(test)]
mod proptests;
pub mod search;
pub mod series;
pub mod stats;

pub use distance::{
    euclidean, euclidean_early_abandon, euclidean_early_abandon_f16, euclidean_early_abandon_u8,
    squared_euclidean,
};
pub use half::{f16_bits_from_f32, f32_from_f16_bits};
pub use error::{Error, Result};
pub use histogram::DistanceHistogram;
pub use index::{AnnIndex, Capabilities, HierarchicalIndex, Representation};
pub use query::{
    merge_top_k, Answer, Neighbor, SearchKey, SearchMode, SearchParams, SearchResult, TopK,
};
pub use search::{knn_search, predict_first_leaf, KnnSearcher};
pub use series::{znormalize, znormalized, Dataset};
pub use stats::{QueryStats, StoreCounters};
