//! Property-based tests of the core invariants: distance metric properties,
//! TopK correctness against sorting, and histogram/quantile consistency.

#![cfg(test)]

use proptest::prelude::*;

use crate::distance::{
    euclidean, euclidean_early_abandon, euclidean_early_abandon_f16, euclidean_early_abandon_u8,
    squared_euclidean,
};
use crate::half::{f16_bits_from_f32, f32_from_f16_bits};
use crate::histogram::DistanceHistogram;
use crate::query::{merge_top_k, Neighbor, TopK};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1000.0f32..1000.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn euclidean_is_a_metric(a in vec_strategy(24), b in vec_strategy(24), c in vec_strategy(24)) {
        let dab = euclidean(&a, &b);
        let dba = euclidean(&b, &a);
        let dac = euclidean(&a, &c);
        let dcb = euclidean(&c, &b);
        // Symmetry, identity and the triangle inequality (with float slack).
        prop_assert!((dab - dba).abs() <= 1e-3 * dab.max(1.0));
        prop_assert!(euclidean(&a, &a) == 0.0);
        prop_assert!(dab <= dac + dcb + 1e-2 * (dab.max(1.0)));
        prop_assert!((dab * dab - squared_euclidean(&a, &b)).abs() <= 1e-2 * (dab * dab).max(1.0));
    }

    #[test]
    fn early_abandon_is_consistent_with_exact(
        a in vec_strategy(64),
        b in vec_strategy(64),
        threshold in 0.0f32..5000.0,
    ) {
        let exact = euclidean(&a, &b);
        match euclidean_early_abandon(&a, &b, threshold) {
            // Kernel-consistency contract: a kept candidate's distance is
            // the exact distance, bit for bit — not merely close.
            Some(d) => prop_assert_eq!(d.to_bits(), exact.to_bits()),
            None => prop_assert!(exact >= threshold * 0.999),
        }
    }

    /// The accumulation-order contract (see `distance` module docs):
    /// `euclidean(a, b)` and `euclidean_early_abandon(a, b, ∞)` are the
    /// same bit pattern on every input — lengths chosen to exercise the
    /// 4-lane body, the 8-position check cadence and the scalar tail.
    #[test]
    fn entry_points_share_one_accumulation_order(
        len in 1usize..96,
        seed in proptest::collection::vec(-1000.0f32..1000.0, 96 * 2),
    ) {
        let a = &seed[..len];
        let b = &seed[96..96 + len];
        let exact = euclidean(a, b);
        let ea = euclidean_early_abandon(a, b, f32::INFINITY)
            .expect("an infinite bound never abandons");
        prop_assert_eq!(exact.to_bits(), ea.to_bits());
        let sq = squared_euclidean(a, b);
        prop_assert_eq!(sq.sqrt().to_bits(), exact.to_bits());
    }

    /// The fused quantized kernels are bit-identical to decode-then-kernel:
    /// pruning decisions and surviving distances cannot depend on whether
    /// a page was decoded to a scratch buffer first.
    #[test]
    fn fused_quantized_kernels_match_decode_then_kernel(
        len in 1usize..80,
        query in vec_strategy(80),
        codes in proptest::collection::vec(0usize..256, 80),
        min in -100.0f32..100.0,
        scale in 0.0f32..2.0,
        threshold in 0.0f32..5000.0,
    ) {
        let query = &query[..len];
        let u8_codes: Vec<u8> = codes[..len].iter().map(|&c| c as u8).collect();
        let u8_codes = &u8_codes[..];
        let decoded: Vec<f32> = u8_codes.iter().map(|&c| min + c as f32 * scale).collect();
        let fused = euclidean_early_abandon_u8(query, u8_codes, min, scale, threshold);
        let two_step = euclidean_early_abandon(query, &decoded, threshold);
        prop_assert_eq!(fused.map(f32::to_bits), two_step.map(f32::to_bits));

        let f16_codes: Vec<u16> = decoded.iter().map(|&v| f16_bits_from_f32(v)).collect();
        let f16_decoded: Vec<f32> = f16_codes.iter().map(|&c| f32_from_f16_bits(c)).collect();
        let fused16 = euclidean_early_abandon_f16(query, &f16_codes, threshold);
        let two_step16 = euclidean_early_abandon(query, &f16_decoded, threshold);
        prop_assert_eq!(fused16.map(f32::to_bits), two_step16.map(f32::to_bits));
    }

    /// f16 round-trips preserve value within half an ULP and decode→encode
    /// is the identity on in-range values.
    #[test]
    fn f16_roundtrip_is_tight(v in -60000.0f32..60000.0) {
        let bits = f16_bits_from_f32(v);
        let decoded = f32_from_f16_bits(bits);
        prop_assert!(decoded.is_finite());
        // An 11-bit significand -> half-ULP relative error at most 2^-11
        // for normal values; subnormals get an absolute bound of 2^-25.
        let tol = (v.abs() / 2048.0).max(1.0 / 33_554_432.0);
        prop_assert!((decoded - v).abs() <= tol, "{} -> {}", v, decoded);
        prop_assert_eq!(f16_bits_from_f32(decoded), bits);
    }

    #[test]
    fn topk_matches_full_sort(
        distances in proptest::collection::vec(0.0f32..100.0, 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &d) in distances.iter().enumerate() {
            top.push(Neighbor::new(i, d));
        }
        let got: Vec<f32> = top.into_sorted().iter().map(|n| n.distance).collect();
        let mut all: Vec<f32> = distances.clone();
        all.sort_by(f32::total_cmp);
        all.truncate(k);
        prop_assert_eq!(got.len(), all.len());
        for (g, e) in got.iter().zip(all.iter()) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn merged_shard_top_k_equals_top_k_of_concatenation(
        // Distances drawn from a tiny grid so duplicate-distance ties at
        // the k boundary are the common case, not a rarity; each candidate
        // gets a unique global id (shards partition one dataset).
        grid in proptest::collection::vec(0usize..6, 0..60),
        shards in 1usize..6,
        k in 1usize..12,
    ) {
        let candidates: Vec<Neighbor> = grid
            .iter()
            .enumerate()
            .map(|(id, &d)| Neighbor::new(id, d as f32 * 0.5))
            .collect();
        // Deal candidates round-robin into shard answer lists.
        let mut per_shard: Vec<Vec<Neighbor>> = vec![Vec::new(); shards];
        for (i, &n) in candidates.iter().enumerate() {
            per_shard[i % shards].push(n);
        }
        let merged = merge_top_k(k, &per_shard);
        let mut expected = candidates.clone();
        expected.sort();
        expected.truncate(k);
        prop_assert_eq!(&merged, &expected);
        // Shard order must not matter: the merge is deterministic.
        per_shard.reverse();
        prop_assert_eq!(merge_top_k(k, &per_shard), expected);
    }

    #[test]
    fn histogram_quantile_and_cdf_are_inverse_monotone(
        samples in proptest::collection::vec(0.01f32..500.0, 10..500),
        p in 0.0f64..1.0,
    ) {
        let h = DistanceHistogram::from_samples(&samples, 64, samples.len());
        let q = h.quantile(p);
        // CDF at the quantile must reach at least p (up to bin granularity).
        prop_assert!(h.cdf(q) + 1e-9 >= p - 1.0 / 64.0);
        // r_delta is monotone non-increasing in delta.
        let r_low = h.r_delta(0.1);
        let r_high = h.r_delta(0.9);
        prop_assert!(r_high <= r_low + 1e-6);
    }
}
