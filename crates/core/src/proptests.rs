//! Property-based tests of the core invariants: distance metric properties,
//! TopK correctness against sorting, and histogram/quantile consistency.

#![cfg(test)]

use proptest::prelude::*;

use crate::distance::{euclidean, euclidean_early_abandon, squared_euclidean};
use crate::histogram::DistanceHistogram;
use crate::query::{merge_top_k, Neighbor, TopK};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1000.0f32..1000.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn euclidean_is_a_metric(a in vec_strategy(24), b in vec_strategy(24), c in vec_strategy(24)) {
        let dab = euclidean(&a, &b);
        let dba = euclidean(&b, &a);
        let dac = euclidean(&a, &c);
        let dcb = euclidean(&c, &b);
        // Symmetry, identity and the triangle inequality (with float slack).
        prop_assert!((dab - dba).abs() <= 1e-3 * dab.max(1.0));
        prop_assert!(euclidean(&a, &a) == 0.0);
        prop_assert!(dab <= dac + dcb + 1e-2 * (dab.max(1.0)));
        prop_assert!((dab * dab - squared_euclidean(&a, &b)).abs() <= 1e-2 * (dab * dab).max(1.0));
    }

    #[test]
    fn early_abandon_is_consistent_with_exact(
        a in vec_strategy(64),
        b in vec_strategy(64),
        threshold in 0.0f32..5000.0,
    ) {
        let exact = euclidean(&a, &b);
        match euclidean_early_abandon(&a, &b, threshold) {
            Some(d) => prop_assert!((d - exact).abs() <= 1e-3 * exact.max(1.0)),
            None => prop_assert!(exact >= threshold * 0.999),
        }
    }

    #[test]
    fn topk_matches_full_sort(
        distances in proptest::collection::vec(0.0f32..100.0, 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &d) in distances.iter().enumerate() {
            top.push(Neighbor::new(i, d));
        }
        let got: Vec<f32> = top.into_sorted().iter().map(|n| n.distance).collect();
        let mut all: Vec<f32> = distances.clone();
        all.sort_by(f32::total_cmp);
        all.truncate(k);
        prop_assert_eq!(got.len(), all.len());
        for (g, e) in got.iter().zip(all.iter()) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn merged_shard_top_k_equals_top_k_of_concatenation(
        // Distances drawn from a tiny grid so duplicate-distance ties at
        // the k boundary are the common case, not a rarity; each candidate
        // gets a unique global id (shards partition one dataset).
        grid in proptest::collection::vec(0usize..6, 0..60),
        shards in 1usize..6,
        k in 1usize..12,
    ) {
        let candidates: Vec<Neighbor> = grid
            .iter()
            .enumerate()
            .map(|(id, &d)| Neighbor::new(id, d as f32 * 0.5))
            .collect();
        // Deal candidates round-robin into shard answer lists.
        let mut per_shard: Vec<Vec<Neighbor>> = vec![Vec::new(); shards];
        for (i, &n) in candidates.iter().enumerate() {
            per_shard[i % shards].push(n);
        }
        let merged = merge_top_k(k, &per_shard);
        let mut expected = candidates.clone();
        expected.sort();
        expected.truncate(k);
        prop_assert_eq!(&merged, &expected);
        // Shard order must not matter: the merge is deterministic.
        per_shard.reverse();
        prop_assert_eq!(merge_top_k(k, &per_shard), expected);
    }

    #[test]
    fn histogram_quantile_and_cdf_are_inverse_monotone(
        samples in proptest::collection::vec(0.01f32..500.0, 10..500),
        p in 0.0f64..1.0,
    ) {
        let h = DistanceHistogram::from_samples(&samples, 64, samples.len());
        let q = h.quantile(p);
        // CDF at the quantile must reach at least p (up to bin granularity).
        prop_assert!(h.cdf(q) + 1e-9 >= p - 1.0 / 64.0);
        // r_delta is monotone non-increasing in delta.
        let r_low = h.r_delta(0.1);
        let r_high = h.r_delta(0.9);
        prop_assert!(r_high <= r_low + 1e-6);
    }
}
