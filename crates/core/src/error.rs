//! Error types shared by every Hydra crate.

use std::fmt;

/// Convenience result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or querying similarity search indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The dataset is empty or otherwise unusable for the requested
    /// operation (e.g., building an index over zero series).
    EmptyDataset,
    /// A series with an unexpected length was supplied (expected, found).
    DimensionMismatch {
        /// The series length the structure was configured for.
        expected: usize,
        /// The length of the offending series.
        found: usize,
    },
    /// A configuration parameter is invalid for the given data
    /// (e.g., more PAA segments than points, zero-sized leaf capacity).
    InvalidParameter(String),
    /// The requested search mode is not supported by this index
    /// (e.g., δ-ε-approximate search on a method with no guarantees).
    UnsupportedMode(String),
    /// An I/O-layer failure from the simulated storage engine.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataset => write!(f, "dataset is empty"),
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::UnsupportedMode(msg) => write!(f, "unsupported search mode: {msg}"),
            Error::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(Error::EmptyDataset.to_string(), "dataset is empty");
        assert_eq!(
            Error::DimensionMismatch {
                expected: 256,
                found: 128
            }
            .to_string(),
            "dimension mismatch: expected 256, found 128"
        );
        assert!(Error::InvalidParameter("bad".into())
            .to_string()
            .contains("bad"));
        assert!(Error::UnsupportedMode("ng".into()).to_string().contains("ng"));
        assert!(Error::Storage("disk".into()).to_string().contains("disk"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
