//! Query, answer, and search-mode types.
//!
//! The paper's taxonomy (Figure 1) classifies similarity search methods by
//! the guarantees they provide: exact, ε-approximate, δ-ε-approximate and
//! ng-approximate (no guarantees). [`SearchMode`] encodes the guarantee that
//! a caller requests for one query; each index maps the mode onto its own
//! search algorithm or rejects it through
//! [`crate::index::Capabilities`].

use crate::stats::QueryStats;

/// One answer of a k-NN query: the position of the series in the dataset and
/// its Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the series in the collection it was built from.
    pub index: usize,
    /// Euclidean distance between the query and the series.
    pub distance: f32,
}

impl Neighbor {
    /// Creates a neighbor entry.
    pub fn new(index: usize, distance: f32) -> Self {
        Self { index, distance }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance (total order; NaN sorts last), breaking ties by
    /// index so that results are deterministic.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// An ordered list of `k` (or fewer) nearest neighbors.
pub type Answer = Vec<Neighbor>;

/// The guarantee level requested for a query, mirroring the paper's
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchMode {
    /// Exact search: the correct and complete k-NN answer.
    Exact,
    /// ng-approximate ("no guarantees") search.
    ///
    /// For tree indexes `nprobe` is the number of leaves visited, for
    /// VA+file the number of raw series refined, for IMI the number of
    /// inverted lists scanned, and for graph methods the size of the
    /// candidate beam (`efSearch`).
    Ng {
        /// Method-specific search effort knob (see above).
        nprobe: usize,
    },
    /// ε-approximate search: every returned distance is at most `(1 + ε)`
    /// times the true k-th nearest neighbor distance.
    Epsilon {
        /// Relative distance error bound (`ε ≥ 0`); `ε = 0` degenerates to
        /// exact search.
        epsilon: f32,
    },
    /// δ-ε-approximate search: the ε guarantee holds with probability at
    /// least δ. `δ = 1` degenerates to ε-approximate search.
    DeltaEpsilon {
        /// Relative distance error bound (`ε ≥ 0`).
        epsilon: f32,
        /// Probability (`0 ≤ δ ≤ 1`) with which the ε guarantee holds.
        delta: f32,
    },
}

impl SearchMode {
    /// The ε used for pruning (0 for exact and ng modes).
    pub fn epsilon(&self) -> f32 {
        match self {
            SearchMode::Epsilon { epsilon } | SearchMode::DeltaEpsilon { epsilon, .. } => *epsilon,
            _ => 0.0,
        }
    }

    /// The δ probability (1 when not probabilistic).
    pub fn delta(&self) -> f32 {
        match self {
            SearchMode::DeltaEpsilon { delta, .. } => *delta,
            _ => 1.0,
        }
    }

    /// Whether this mode carries any guarantee (everything except ng).
    pub fn has_guarantees(&self) -> bool {
        !matches!(self, SearchMode::Ng { .. })
    }

    /// A short label used in reports ("exact", "ng", "eps", "delta-eps").
    pub fn label(&self) -> &'static str {
        match self {
            SearchMode::Exact => "exact",
            SearchMode::Ng { .. } => "ng",
            SearchMode::Epsilon { .. } => "eps",
            SearchMode::DeltaEpsilon { .. } => "delta-eps",
        }
    }
}

/// Parameters of one k-NN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Number of nearest neighbors requested.
    pub k: usize,
    /// Guarantee level and associated knobs.
    pub mode: SearchMode,
}

/// A canonical, hashable, totally ordered key identifying one
/// [`SearchParams`] value.
///
/// `SearchParams` itself carries `f32` knobs, so it cannot implement `Eq`
/// or `Hash` directly; serving-side batchers need exactly that to group
/// compatible requests (only queries sharing one parameter setting may be
/// answered by a single [`crate::AnnIndex::search_batch`] call). The key
/// folds the floats in by bit pattern, so two parameter values map to the
/// same key **iff** they request bit-identical searches — `0.0` and `-0.0`
/// ε are deliberately distinct, exactly as `-0.0f32.to_bits()` is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SearchKey {
    k: usize,
    mode_tag: u8,
    nprobe: usize,
    epsilon_bits: u32,
    delta_bits: u32,
}

impl SearchParams {
    /// The canonical grouping key of this parameter value (see
    /// [`SearchKey`]).
    pub fn key(&self) -> SearchKey {
        let (mode_tag, nprobe, epsilon_bits, delta_bits) = match self.mode {
            SearchMode::Exact => (0u8, 0usize, 0u32, 0u32),
            SearchMode::Ng { nprobe } => (1, nprobe, 0, 0),
            SearchMode::Epsilon { epsilon } => (2, 0, epsilon.to_bits(), 0),
            SearchMode::DeltaEpsilon { epsilon, delta } => {
                (3, 0, epsilon.to_bits(), delta.to_bits())
            }
        };
        SearchKey {
            k: self.k,
            mode_tag,
            nprobe,
            epsilon_bits,
            delta_bits,
        }
    }

    /// Exact k-NN search.
    pub fn exact(k: usize) -> Self {
        Self {
            k,
            mode: SearchMode::Exact,
        }
    }

    /// ng-approximate k-NN search with the given effort knob.
    pub fn ng(k: usize, nprobe: usize) -> Self {
        Self {
            k,
            mode: SearchMode::Ng { nprobe },
        }
    }

    /// ε-approximate k-NN search.
    pub fn epsilon(k: usize, epsilon: f32) -> Self {
        Self {
            k,
            mode: SearchMode::Epsilon { epsilon },
        }
    }

    /// δ-ε-approximate k-NN search.
    pub fn delta_epsilon(k: usize, delta: f32, epsilon: f32) -> Self {
        Self {
            k,
            mode: SearchMode::DeltaEpsilon { epsilon, delta },
        }
    }
}

/// The outcome of answering one query: the neighbors found plus the cost
/// counters accumulated while finding them.
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// Neighbors in increasing distance order (at most `k`).
    pub neighbors: Answer,
    /// Cost counters for this query.
    pub stats: QueryStats,
}

impl SearchResult {
    /// Creates a result from neighbors and stats.
    pub fn new(neighbors: Answer, stats: QueryStats) -> Self {
        Self { neighbors, stats }
    }

    /// Distance of the worst (furthest) returned neighbor, or `+∞` if empty.
    pub fn kth_distance(&self) -> f32 {
        self.neighbors
            .last()
            .map(|n| n.distance)
            .unwrap_or(f32::INFINITY)
    }
}

/// A bounded max-heap that maintains the `k` best (smallest-distance)
/// neighbors seen so far. All indexes use this to build their answer sets.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a container for the best `k` neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it is among the best `k` so far.
    /// Returns `true` if the candidate was kept.
    pub fn push(&mut self, candidate: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(candidate);
            true
        } else if candidate < *self.heap.peek().expect("non-empty") {
            self.heap.pop();
            self.heap.push(candidate);
            true
        } else {
            false
        }
    }

    /// The current k-th best distance (`+∞` until `k` candidates are held).
    ///
    /// This is the best-so-far pruning threshold of Algorithms 1 and 2.
    pub fn kth_distance(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map(|n| n.distance).unwrap_or(f32::INFINITY)
        }
    }

    /// Number of neighbors currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbor has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `k` neighbors are held (the heap is full).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Consumes the container and returns neighbors sorted by increasing
    /// distance.
    pub fn into_sorted(self) -> Answer {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

/// Merges per-shard top-k answer lists into the global top-k — the merge
/// kernel of sharded (partition-and-aggregate) search.
///
/// Each input list holds the best neighbors one shard found, with indices
/// already mapped to **global** ids (shards partition one dataset, so
/// global ids are unique across lists). The output is exactly the `k`
/// smallest neighbors of the concatenation under the total [`Neighbor`]
/// order — distance first, ties broken by global id — so the result is
/// deterministic regardless of shard count, shard order, or the order
/// answers arrived in. Lists need not be sorted; fewer than `k` total
/// candidates yield them all, and `k == 0` yields an empty answer.
///
/// The equivalence contract built on this: an exact search fanned out over
/// any partition of a dataset and merged here returns bit-identical
/// neighbors and distances to the unsharded exact search (property-tested
/// in this crate, asserted zoo-wide in `tests/integration_shard.rs`).
pub fn merge_top_k(k: usize, shard_answers: &[Answer]) -> Answer {
    if k == 0 {
        return Vec::new();
    }
    let mut top = TopK::new(k);
    for answer in shard_answers {
        for &neighbor in answer {
            top.push(neighbor);
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering_is_total_and_tie_broken_by_index() {
        let a = Neighbor::new(3, 1.0);
        let b = Neighbor::new(1, 1.0);
        let c = Neighbor::new(0, 2.0);
        assert!(b < a);
        assert!(a < c);
        let mut v = vec![c, a, b];
        v.sort();
        assert_eq!(v, vec![b, a, c]);
    }

    #[test]
    fn search_mode_accessors() {
        assert_eq!(SearchMode::Exact.epsilon(), 0.0);
        assert_eq!(SearchMode::Exact.delta(), 1.0);
        assert_eq!(SearchMode::Ng { nprobe: 5 }.label(), "ng");
        assert!(!SearchMode::Ng { nprobe: 5 }.has_guarantees());
        let m = SearchMode::DeltaEpsilon {
            epsilon: 2.0,
            delta: 0.9,
        };
        assert_eq!(m.epsilon(), 2.0);
        assert_eq!(m.delta(), 0.9);
        assert!(m.has_guarantees());
        assert_eq!(SearchParams::epsilon(10, 1.0).mode.label(), "eps");
        assert_eq!(SearchParams::exact(1).k, 1);
        assert_eq!(SearchParams::ng(5, 2).k, 5);
        assert_eq!(SearchParams::delta_epsilon(5, 0.5, 1.0).mode.delta(), 0.5);
    }

    #[test]
    fn search_keys_group_identical_params_and_separate_different_ones() {
        use std::collections::HashSet;
        let same = [
            SearchParams::ng(10, 16).key(),
            SearchParams::ng(10, 16).key(),
        ];
        assert_eq!(same[0], same[1]);
        let distinct: HashSet<SearchKey> = [
            SearchParams::exact(10),
            SearchParams::exact(11),
            SearchParams::ng(10, 16),
            SearchParams::ng(10, 17),
            SearchParams::epsilon(10, 1.0),
            SearchParams::epsilon(10, 2.0),
            SearchParams::delta_epsilon(10, 0.9, 1.0),
            SearchParams::delta_epsilon(10, 0.99, 1.0),
            SearchParams::delta_epsilon(10, 0.9, 2.0),
        ]
        .iter()
        .map(|p| p.key())
        .collect();
        assert_eq!(distinct.len(), 9, "every distinct setting gets its own key");
        // Bit-pattern semantics: 0.0 and -0.0 are different requests.
        assert_ne!(
            SearchParams::epsilon(5, 0.0).key(),
            SearchParams::epsilon(5, -0.0).key()
        );
        // Keys are ordered, so they can key a BTreeMap deterministically.
        let mut keys = vec![
            SearchParams::ng(10, 2).key(),
            SearchParams::exact(10).key(),
        ];
        keys.sort();
        assert_eq!(keys[0], SearchParams::exact(10).key());
    }

    #[test]
    fn topk_keeps_best_k() {
        let mut t = TopK::new(3);
        assert!(t.is_empty());
        assert_eq!(t.kth_distance(), f32::INFINITY);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.push(Neighbor::new(i, *d));
        }
        assert!(t.is_full());
        assert_eq!(t.len(), 3);
        assert_eq!(t.kth_distance(), 3.0);
        let sorted = t.into_sorted();
        let dists: Vec<f32> = sorted.iter().map(|n| n.distance).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn topk_rejects_worse_candidates_when_full() {
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, 1.0));
        t.push(Neighbor::new(1, 2.0));
        assert!(!t.push(Neighbor::new(2, 3.0)));
        assert!(t.push(Neighbor::new(3, 0.5)));
        let sorted = t.into_sorted();
        assert_eq!(sorted[0].index, 3);
        assert_eq!(sorted[1].index, 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn topk_rejects_zero_k() {
        let _ = TopK::new(0);
    }

    #[test]
    fn merge_top_k_equals_top_k_of_concatenation() {
        let a = vec![Neighbor::new(0, 1.0), Neighbor::new(2, 3.0)];
        let b = vec![Neighbor::new(5, 0.5), Neighbor::new(7, 2.0)];
        let c = vec![Neighbor::new(9, 4.0)];
        let merged = merge_top_k(3, &[a.clone(), b.clone(), c.clone()]);
        let mut concat: Vec<Neighbor> = [a, b, c].concat();
        concat.sort();
        concat.truncate(3);
        assert_eq!(merged, concat);
        // Fewer candidates than k yields everything, still sorted.
        let short = merge_top_k(10, &[vec![Neighbor::new(1, 2.0)], vec![Neighbor::new(0, 1.0)]]);
        assert_eq!(short, vec![Neighbor::new(0, 1.0), Neighbor::new(1, 2.0)]);
        // k == 0 and empty inputs are legal.
        assert!(merge_top_k(0, &[vec![Neighbor::new(1, 1.0)]]).is_empty());
        assert!(merge_top_k(3, &[]).is_empty());
        assert!(merge_top_k(3, &[Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn merge_top_k_breaks_duplicate_distance_ties_by_global_id() {
        // Three shards all report distance 1.0 at the k boundary; the
        // winners must be the smallest global ids, independent of shard
        // order.
        let shards = vec![
            vec![Neighbor::new(30, 1.0), Neighbor::new(31, 1.0)],
            vec![Neighbor::new(10, 1.0), Neighbor::new(40, 2.0)],
            vec![Neighbor::new(20, 1.0)],
        ];
        let merged = merge_top_k(3, &shards);
        assert_eq!(
            merged,
            vec![
                Neighbor::new(10, 1.0),
                Neighbor::new(20, 1.0),
                Neighbor::new(30, 1.0)
            ]
        );
        // Reversing the shard order changes nothing: the merge is
        // deterministic by construction.
        let reversed: Vec<Answer> = shards.into_iter().rev().collect();
        assert_eq!(merge_top_k(3, &reversed), merged);
    }

    #[test]
    fn search_result_kth_distance() {
        let r = SearchResult::default();
        assert_eq!(r.kth_distance(), f32::INFINITY);
        let r = SearchResult::new(
            vec![Neighbor::new(0, 1.0), Neighbor::new(1, 2.0)],
            QueryStats::default(),
        );
        assert_eq!(r.kth_distance(), 2.0);
    }
}
