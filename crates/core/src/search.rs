//! Index-invariant exact and approximate k-NN search.
//!
//! This module implements the paper's Algorithm 1 (exact 1-NN generalized to
//! k-NN) and Algorithm 2 (its δ-ε-approximate extension) once, generically,
//! over any index exposing the [`HierarchicalIndex`] trait. DSTree and
//! iSAX2+ reuse this driver directly, which mirrors the paper's point that
//! the modification applies to *any* index built by conservative recursive
//! partitioning.
//!
//! The driver unifies all four guarantee levels of the taxonomy:
//!
//! * **exact** — ε = 0, δ = 1, no leaf budget;
//! * **ε-approximate** — prune with `bsf / (1 + ε)` instead of `bsf`;
//! * **δ-ε-approximate** — additionally stop once
//!   `bsf ≤ (1 + ε) · r_δ` (the ball around the query of radius `r_δ` is
//!   empty with probability δ, so the current answer already satisfies the
//!   guarantee with that probability);
//! * **ng-approximate** — stop after visiting `nprobe` leaves, no guarantee.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::histogram::DistanceHistogram;
use crate::index::{HierarchicalIndex, NodeId};
use crate::query::{Neighbor, SearchMode, SearchParams, SearchResult, TopK};
use crate::stats::QueryStats;

/// Fully-resolved search controls derived from a [`SearchParams`] and, for
/// probabilistic modes, a [`DistanceHistogram`].
#[derive(Debug, Clone, Copy)]
pub struct SearchSpec {
    /// Number of neighbors to return.
    pub k: usize,
    /// Relative error bound ε (0 ⇒ exact pruning).
    pub epsilon: f32,
    /// The δ-radius; 0 disables the probabilistic stop condition.
    pub r_delta: f32,
    /// Maximum number of leaves to visit (ng-approximate); `None` means
    /// unbounded.
    pub max_leaves: Option<usize>,
}

impl SearchSpec {
    /// Exact k-NN.
    pub fn exact(k: usize) -> Self {
        Self {
            k,
            epsilon: 0.0,
            r_delta: 0.0,
            max_leaves: None,
        }
    }

    /// Translates user-facing [`SearchParams`] into a search spec.
    ///
    /// `histogram` provides the distance distribution needed to estimate
    /// `r_δ`; it is only consulted for [`SearchMode::DeltaEpsilon`] with
    /// δ < 1.
    pub fn from_params(params: &SearchParams, histogram: Option<&DistanceHistogram>) -> Self {
        match params.mode {
            SearchMode::Exact => Self::exact(params.k),
            SearchMode::Ng { nprobe } => Self {
                k: params.k,
                epsilon: 0.0,
                r_delta: 0.0,
                max_leaves: Some(nprobe.max(1)),
            },
            SearchMode::Epsilon { epsilon } => Self {
                k: params.k,
                epsilon: epsilon.max(0.0),
                r_delta: 0.0,
                max_leaves: None,
            },
            SearchMode::DeltaEpsilon { epsilon, delta } => {
                let r_delta = if delta < 1.0 {
                    histogram.map(|h| h.r_delta(delta)).unwrap_or(0.0)
                } else {
                    0.0
                };
                Self {
                    k: params.k,
                    epsilon: epsilon.max(0.0),
                    r_delta,
                    max_leaves: None,
                }
            }
        }
    }
}

/// A queue entry ordered by lower-bound distance (min-heap via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    lb: f32,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lb
            .total_cmp(&other.lb)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Reusable k-NN searcher over a [`HierarchicalIndex`].
///
/// Holding the searcher lets callers amortize the priority-queue allocation
/// across queries of a workload.
pub struct KnnSearcher<'a, I: HierarchicalIndex + ?Sized> {
    index: &'a I,
    queue: BinaryHeap<Reverse<QueueEntry>>,
}

impl<'a, I: HierarchicalIndex + ?Sized> KnnSearcher<'a, I> {
    /// Creates a searcher over `index`.
    pub fn new(index: &'a I) -> Self {
        Self {
            index,
            queue: BinaryHeap::new(),
        }
    }

    /// Runs Algorithm 2 (which subsumes Algorithm 1) and returns the
    /// neighbors found together with cost counters.
    pub fn search(&mut self, query: &[f32], spec: &SearchSpec) -> SearchResult {
        let mut stats = QueryStats::new();
        let mut top = TopK::new(spec.k.max(1));
        self.queue.clear();

        // Lines 2-5 / 4-7: seed the queue with the root node(s).
        for root in self.index.roots() {
            let lb = self.index.min_dist(query, root);
            stats.lower_bound_computations += 1;
            self.queue.push(Reverse(QueueEntry { lb, node: root }));
        }

        let one_plus_eps = 1.0 + spec.epsilon;
        let delta_threshold = one_plus_eps * spec.r_delta;
        let mut leaves_visited = 0usize;

        // Lines 8-21: best-first traversal with ε-relaxed pruning.
        while let Some(Reverse(entry)) = self.queue.pop() {
            let bsf = top.kth_distance();
            if entry.lb > bsf / one_plus_eps {
                // All remaining entries have even larger lower bounds.
                break;
            }
            stats.nodes_visited += 1;
            if self.index.is_leaf(entry.node) {
                leaves_visited += 1;
                stats.leaves_visited += 1;
                let scanned = self.index.refine_leaf(
                    entry.node,
                    query,
                    top.kth_distance(),
                    &mut stats,
                    &mut |id, d| {
                        top.push(Neighbor::new(id, d));
                        top.kth_distance()
                    },
                );
                stats.series_scanned += scanned;
                stats.distance_computations += scanned;
                // Line 16 of Algorithm 2: probabilistic stop condition.
                if spec.r_delta > 0.0 && top.is_full() && top.kth_distance() <= delta_threshold {
                    stats.delta_stop_triggered = true;
                    break;
                }
                // ng-approximate leaf budget.
                if let Some(max_leaves) = spec.max_leaves {
                    if leaves_visited >= max_leaves {
                        break;
                    }
                }
            } else {
                let bsf = top.kth_distance();
                for child in self.index.children(entry.node) {
                    let lb = self.index.min_dist(query, child);
                    stats.lower_bound_computations += 1;
                    if lb < bsf / one_plus_eps || !top.is_full() {
                        self.queue.push(Reverse(QueueEntry { lb, node: child }));
                    }
                }
            }
        }

        SearchResult::new(top.into_sorted(), stats)
    }
}

/// Predicts the leaf a best-first search would refine first: a greedy
/// descent from the closest root, following the child with the smallest
/// lower bound at every level. Entirely I/O-free — only `min_dist` is
/// consulted — so batch schedulers can declare a storage working set
/// before any query runs. `None` on an empty hierarchy (no roots, or an
/// internal node without children).
pub fn predict_first_leaf<I: HierarchicalIndex + ?Sized>(
    index: &I,
    query: &[f32],
) -> Option<usize> {
    let closest = |nodes: Vec<usize>| {
        nodes
            .into_iter()
            .min_by(|&a, &b| index.min_dist(query, a).total_cmp(&index.min_dist(query, b)))
    };
    let mut node = closest(index.roots())?;
    while !index.is_leaf(node) {
        node = closest(index.children(node))?;
    }
    Some(node)
}

/// Convenience wrapper: builds a throw-away [`KnnSearcher`] and runs one
/// query.
pub fn knn_search<I: HierarchicalIndex + ?Sized>(
    index: &I,
    query: &[f32],
    spec: &SearchSpec,
) -> SearchResult {
    KnnSearcher::new(index).search(query, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;
    use crate::series::Dataset;

    /// A toy balanced binary tree over 1-D points, used to validate the
    /// generic driver without depending on any concrete index crate.
    struct ToyTree {
        dataset: Dataset,
        // Nodes: (lo, hi) ranges over the sorted order; leaves hold <= cap.
        nodes: Vec<ToyNode>,
        order: Vec<usize>,
    }

    struct ToyNode {
        lo: usize,
        hi: usize,
        min: f32,
        max: f32,
        children: Vec<NodeId>,
    }

    impl ToyTree {
        fn build(values: &[f32], leaf_cap: usize) -> Self {
            let mut order: Vec<usize> = (0..values.len()).collect();
            order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
            let mut dataset = Dataset::new(1).unwrap();
            for &v in values {
                dataset.push(&[v]).unwrap();
            }
            let mut tree = ToyTree {
                dataset,
                nodes: Vec::new(),
                order,
            };
            tree.split(0, values.len(), leaf_cap, values);
            tree
        }

        fn split(&mut self, lo: usize, hi: usize, cap: usize, values: &[f32]) -> NodeId {
            let id = self.nodes.len();
            let slice = &self.order[lo..hi];
            let min = slice.iter().map(|&i| values[i]).fold(f32::INFINITY, f32::min);
            let max = slice
                .iter()
                .map(|&i| values[i])
                .fold(f32::NEG_INFINITY, f32::max);
            self.nodes.push(ToyNode {
                lo,
                hi,
                min,
                max,
                children: Vec::new(),
            });
            if hi - lo > cap {
                let mid = (lo + hi) / 2;
                let l = self.split(lo, mid, cap, values);
                let r = self.split(mid, hi, cap, values);
                self.nodes[id].children = vec![l, r];
            }
            id
        }
    }

    impl HierarchicalIndex for ToyTree {
        fn roots(&self) -> Vec<NodeId> {
            vec![0]
        }
        fn is_leaf(&self, node: NodeId) -> bool {
            self.nodes[node].children.is_empty()
        }
        fn children(&self, node: NodeId) -> Vec<NodeId> {
            self.nodes[node].children.clone()
        }
        fn min_dist(&self, query: &[f32], node: NodeId) -> f32 {
            let q = query[0];
            let n = &self.nodes[node];
            if q < n.min {
                n.min - q
            } else if q > n.max {
                q - n.max
            } else {
                0.0
            }
        }
        fn visit_leaf(
            &self,
            node: NodeId,
            _stats: &mut QueryStats,
            visit: &mut dyn FnMut(usize, &[f32]),
        ) {
            let n = &self.nodes[node];
            for &idx in &self.order[n.lo..n.hi] {
                visit(idx, self.dataset.series(idx));
            }
        }
        fn leaf_size(&self, node: NodeId) -> usize {
            let n = &self.nodes[node];
            if self.is_leaf(node) {
                n.hi - n.lo
            } else {
                0
            }
        }
    }

    fn brute_force(values: &[f32], q: f32, k: usize) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = values
            .iter()
            .enumerate()
            .map(|(i, &x)| Neighbor::new(i, euclidean(&[x], &[q])))
            .collect();
        v.sort();
        v.truncate(k);
        v
    }

    fn sample_values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37) % 101) as f32 / 3.0).collect()
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let values = sample_values(200);
        let tree = ToyTree::build(&values, 8);
        for q in [0.0f32, 5.5, 17.2, 40.0] {
            for k in [1usize, 5, 20] {
                let res = knn_search(&tree, &[q], &SearchSpec::exact(k));
                let expected = brute_force(&values, q, k);
                let got: Vec<f32> = res.neighbors.iter().map(|n| n.distance).collect();
                let want: Vec<f32> = expected.iter().map(|n| n.distance).collect();
                assert_eq!(got.len(), k);
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g - w).abs() < 1e-5, "q={q} k={k}: {got:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn ng_search_visits_at_most_nprobe_leaves() {
        let values = sample_values(200);
        let tree = ToyTree::build(&values, 8);
        let spec = SearchSpec {
            k: 3,
            epsilon: 0.0,
            r_delta: 0.0,
            max_leaves: Some(1),
        };
        let res = knn_search(&tree, &[12.0], &spec);
        assert_eq!(res.stats.leaves_visited, 1);
        assert_eq!(res.neighbors.len(), 3);
        let spec2 = SearchSpec {
            max_leaves: Some(3),
            ..spec
        };
        let res2 = knn_search(&tree, &[12.0], &spec2);
        assert!(res2.stats.leaves_visited <= 3);
        // More leaves can only improve (or keep) the answer.
        assert!(res2.kth_distance() <= res.kth_distance() + 1e-6);
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let values = sample_values(500);
        let tree = ToyTree::build(&values, 4);
        for &eps in &[0.0f32, 0.5, 1.0, 3.0] {
            for q in [3.3f32, 11.0, 29.9] {
                let spec = SearchSpec {
                    k: 5,
                    epsilon: eps,
                    r_delta: 0.0,
                    max_leaves: None,
                };
                let res = knn_search(&tree, &[q], &spec);
                let exact = brute_force(&values, q, 5);
                // Definition 5: every returned distance is within (1+eps) of the
                // exact k-th NN distance.
                let bound = (1.0 + eps) * exact[4].distance + 1e-5;
                for n in &res.neighbors {
                    assert!(n.distance <= bound, "eps={eps} q={q}");
                }
            }
        }
    }

    #[test]
    fn epsilon_reduces_work() {
        let values = sample_values(2000);
        let tree = ToyTree::build(&values, 4);
        let exact = knn_search(&tree, &[15.0], &SearchSpec::exact(10));
        let relaxed = knn_search(
            &tree,
            &[15.0],
            &SearchSpec {
                k: 10,
                epsilon: 2.0,
                r_delta: 0.0,
                max_leaves: None,
            },
        );
        assert!(relaxed.stats.leaves_visited <= exact.stats.leaves_visited);
        assert!(relaxed.stats.distance_computations <= exact.stats.distance_computations);
    }

    #[test]
    fn delta_stop_triggers_with_large_radius() {
        let values = sample_values(500);
        let tree = ToyTree::build(&values, 4);
        let spec = SearchSpec {
            k: 1,
            epsilon: 0.0,
            r_delta: 1e6, // absurdly large radius: first leaf should satisfy it
            max_leaves: None,
        };
        let res = knn_search(&tree, &[10.0], &spec);
        assert!(res.stats.delta_stop_triggered);
        assert_eq!(res.stats.leaves_visited, 1);
    }

    #[test]
    fn from_params_translation() {
        let p = SearchParams::exact(7);
        let s = SearchSpec::from_params(&p, None);
        assert_eq!(s.k, 7);
        assert_eq!(s.epsilon, 0.0);
        assert_eq!(s.max_leaves, None);

        let p = SearchParams::ng(5, 3);
        let s = SearchSpec::from_params(&p, None);
        assert_eq!(s.max_leaves, Some(3));

        let p = SearchParams::epsilon(5, 2.0);
        let s = SearchSpec::from_params(&p, None);
        assert_eq!(s.epsilon, 2.0);
        assert_eq!(s.r_delta, 0.0);

        // delta < 1 without a histogram falls back to r_delta = 0.
        let p = SearchParams::delta_epsilon(5, 0.5, 1.0);
        let s = SearchSpec::from_params(&p, None);
        assert_eq!(s.r_delta, 0.0);

        // delta = 1 never consults the histogram.
        let h = DistanceHistogram::from_samples(&[1.0, 2.0, 3.0], 4, 100);
        let p = SearchParams::delta_epsilon(5, 1.0, 1.0);
        let s = SearchSpec::from_params(&p, Some(&h));
        assert_eq!(s.r_delta, 0.0);

        let p = SearchParams::delta_epsilon(5, 0.5, 1.0);
        let s = SearchSpec::from_params(&p, Some(&h));
        assert!(s.r_delta > 0.0);
    }
}
