//! Index traits and capability descriptors.
//!
//! Two traits structure the workspace:
//!
//! * [`AnnIndex`] is the uniform, object-safe query interface implemented by
//!   every method in the study (DSTree, iSAX2+, VA+file, HNSW, IMI, SRS,
//!   QALSH, FLANN). The evaluation harness only talks to `dyn AnnIndex`.
//! * [`HierarchicalIndex`] exposes the tree structure of indexes built by
//!   conservative recursive partitioning (DSTree, iSAX2+). The paper's
//!   Algorithm 1 (exact search) and Algorithm 2 (δ-ε-approximate search) are
//!   implemented once, generically, over this trait in [`crate::search`].

use crate::error::Result;
use crate::query::{SearchParams, SearchResult};
use crate::stats::QueryStats;

/// How a method summarizes (represents) the data, mirroring the
/// "Representation" column of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// Raw series, no reduced representation.
    Raw,
    /// Extended Adaptive Piecewise Constant Approximation (DSTree).
    Eapca,
    /// indexable Symbolic Aggregate approXimation (iSAX family).
    Isax,
    /// Discrete Fourier Transform coefficients (modified VA+file).
    Dft,
    /// (Optimized) product quantization codes (IMI).
    Opq,
    /// LSH / random projection signatures (SRS, QALSH).
    Signatures,
    /// Hierarchical k-means / kd-tree partitions (FLANN).
    Partitions,
    /// Proximity graph over raw vectors (HNSW, NSG).
    Graph,
}

impl Representation {
    /// Human-readable name used in the Table 1 reproduction.
    pub fn name(&self) -> &'static str {
        match self {
            Representation::Raw => "Raw",
            Representation::Eapca => "EAPCA",
            Representation::Isax => "iSAX",
            Representation::Dft => "DFT",
            Representation::Opq => "OPQ",
            Representation::Signatures => "Signatures",
            Representation::Partitions => "Partitions",
            Representation::Graph => "Graph",
        }
    }
}

/// What a method can do — the paper's Table 1 as a queryable structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Supports exact k-NN queries.
    pub exact: bool,
    /// Supports ng-approximate (no guarantee) queries.
    pub ng_approximate: bool,
    /// Supports ε-approximate queries.
    pub epsilon_approximate: bool,
    /// Supports δ-ε-approximate queries.
    pub delta_epsilon_approximate: bool,
    /// Can operate on disk-resident data (through the simulated storage
    /// layer); methods without this flag are in-memory only.
    pub disk_resident: bool,
    /// The reduced representation the method indexes.
    pub representation: Representation,
}

impl Capabilities {
    /// Whether the given search mode is supported.
    pub fn supports(&self, mode: &crate::query::SearchMode) -> bool {
        use crate::query::SearchMode::*;
        match mode {
            Exact => self.exact,
            Ng { .. } => self.ng_approximate,
            Epsilon { .. } => self.epsilon_approximate,
            DeltaEpsilon { .. } => self.delta_epsilon_approximate,
        }
    }
}

/// Uniform query interface implemented by every similarity search method in
/// the study.
pub trait AnnIndex: Send + Sync {
    /// Short method name ("DSTree", "iSAX2+", "VA+file", "HNSW", ...).
    fn name(&self) -> &'static str;

    /// The guarantees and representation of this method (Table 1).
    fn capabilities(&self) -> Capabilities;

    /// Number of series indexed.
    fn num_series(&self) -> usize;

    /// Length (dimensionality) of the indexed series.
    fn series_len(&self) -> usize;

    /// Approximate main-memory footprint of the index structure in bytes
    /// (excluding any raw data kept on simulated disk).
    fn memory_footprint(&self) -> usize;

    /// Answers a k-NN query under the requested guarantee level.
    ///
    /// # Errors
    /// Returns [`crate::Error::UnsupportedMode`] if the index cannot honour
    /// the requested [`crate::SearchMode`].
    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult>;
}

/// A node handle inside a [`HierarchicalIndex`]. Implementations typically
/// use an arena index.
pub type NodeId = usize;

/// Structural view of a hierarchical index built by conservative recursive
/// partitioning, as required by the optimal exact NN algorithm the paper
/// builds on (Hjaltason & Samet / Berchtold et al.).
///
/// "Conservative" means that the lower-bound distance of a node never
/// exceeds the true distance of any series stored beneath it; this is what
/// makes Algorithm 1 exact and Algorithm 2's ε bound valid.
pub trait HierarchicalIndex {
    /// Root node(s) of the index. Most trees have one root; iSAX-style
    /// indexes have one root child per initial SAX word.
    fn roots(&self) -> Vec<NodeId>;

    /// Whether `node` is a leaf.
    fn is_leaf(&self, node: NodeId) -> bool;

    /// Children of an internal node (empty for leaves).
    fn children(&self, node: NodeId) -> Vec<NodeId>;

    /// Lower bound on the distance between `query` and any series stored in
    /// the subtree rooted at `node`.
    fn min_dist(&self, query: &[f32], node: NodeId) -> f32;

    /// Visits every series stored in leaf `node`, invoking `visit` with the
    /// series' dataset position and raw values. The implementation must
    /// account for storage-layer costs in `stats`.
    fn visit_leaf(
        &self,
        node: NodeId,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    );

    /// Number of series stored in leaf `node` (0 for internal nodes).
    fn leaf_size(&self, node: NodeId) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SearchMode;

    #[test]
    fn capabilities_supports_matches_flags() {
        let caps = Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: true,
            representation: Representation::Eapca,
        };
        assert!(caps.supports(&SearchMode::Exact));
        assert!(caps.supports(&SearchMode::Ng { nprobe: 1 }));
        assert!(!caps.supports(&SearchMode::Epsilon { epsilon: 1.0 }));
        assert!(!caps.supports(&SearchMode::DeltaEpsilon {
            epsilon: 1.0,
            delta: 0.5
        }));
    }

    #[test]
    fn representation_names_are_stable() {
        assert_eq!(Representation::Eapca.name(), "EAPCA");
        assert_eq!(Representation::Isax.name(), "iSAX");
        assert_eq!(Representation::Dft.name(), "DFT");
        assert_eq!(Representation::Opq.name(), "OPQ");
        assert_eq!(Representation::Raw.name(), "Raw");
        assert_eq!(Representation::Graph.name(), "Graph");
        assert_eq!(Representation::Signatures.name(), "Signatures");
        assert_eq!(Representation::Partitions.name(), "Partitions");
    }
}
